//! Concrete generators (`StdRng`).

use crate::{RngCore, SeedableRng};

/// Deterministic seeded generator; xoshiro256++ in this shim (the real
/// `rand` crate uses ChaCha12, so byte sequences differ from upstream).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro requires a nonzero state; expand a fallback via SplitMix64.
        if s == [0; 4] {
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for slot in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}
