//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! subset of the `rand` 0.8 API that Concealer uses: [`RngCore`],
//! [`SeedableRng`], [`Rng`], [`rngs::StdRng`], [`seq::SliceRandom`], and the
//! [`distributions`] module with [`distributions::Open01`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically sound for the
//! simulation / test workloads in this repo. It is **not** the ChaCha12
//! stream used by the real `rand` crate, so seeded output differs from
//! upstream; nothing in the workspace depends on upstream byte sequences.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        use distributions::Distribution;
        let u: f64 = distributions::Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that support uniform sampling from a sub-range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high]` (both ends inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain of the wide type.
                    return rng.next_u64() as $t;
                }
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of the plain approach is irrelevant here, but this is
                // just as cheap.
                let x = rng.next_u64() as u128;
                let r = ((x * span as u128) >> 64) as $wide;
                low.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                     i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + u * (high - low)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + OneStep> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait OneStep {
    /// The predecessor of `self`.
    fn step_down(self) -> Self;
}

macro_rules! impl_one_step_int {
    ($($t:ty),*) => {$(
        impl OneStep for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}
impl_one_step_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl OneStep for f64 {
    fn step_down(self) -> Self {
        self
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seeded() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=50);
            assert!((1..=50).contains(&w));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
        // Hits both endpoints of a small inclusive range.
        let hits: std::collections::BTreeSet<u8> =
            (0..1000).map(|_| rng.gen_range(0u8..=3)).collect();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn open01_is_open() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u: f64 = crate::distributions::Open01.sample(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
