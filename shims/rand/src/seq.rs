//! Sequence helpers (`SliceRandom`).

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick a reference to one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}
