//! Sampling distributions (`Standard`, `Open01`).

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over its whole domain for
/// integers, uniform over `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Uniform distribution over the open interval `(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Open01;

impl Distribution<f64> for Open01 {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 52 mantissa bits plus a half-ulp offset keeps both endpoints out.
        ((rng.next_u64() >> 12) as f64 + 0.5) / (1u64 << 52) as f64
    }
}

impl Distribution<f32> for Open01 {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u32() >> 9) as f32 + 0.5) / (1u32 << 23) as f32
    }
}
