//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

fn sample_len(range: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(range.start < range.end, "empty size range");
    range.start + rng.below((range.end - range.start) as u64) as usize
}

/// Strategy producing `Vec`s of values from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy producing `BTreeMap`s from key/value strategies.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // As upstream: draw `len` pairs; duplicate keys collapse, so the
        // final size may be smaller than drawn.
        let len = sample_len(&self.size, rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// `BTreeMap` strategy with entry counts drawn from `size`.
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size }
}

/// Strategy producing `BTreeSet`s from an element strategy.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` strategy with element counts drawn from `size`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::deterministic("vec");
        let strat = vec(any::<u8>(), 2..9);
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn nested_collections() {
        let mut rng = TestRng::deterministic("nested");
        let strat = btree_map(vec(any::<u8>(), 0..4), any::<u64>(), 0..20);
        let m = strat.generate(&mut rng);
        assert!(m.len() < 20);
        let s = btree_set(any::<u32>(), 1..50).generate(&mut rng);
        assert!(!s.is_empty() && s.len() < 50);
    }
}
