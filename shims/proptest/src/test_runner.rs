//! Test-runner configuration and the deterministic case generator.

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; that is also cheap for the shim since
        // there is no shrinking machinery.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xoshiro256++ generator driving case generation.
///
/// Seeded from the test name only, so every run of a given test explores the
/// same input sequence (reproducibility without persisted seed files).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Build the generator for the named test.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("bound");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
