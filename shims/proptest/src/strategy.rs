//! The [`Strategy`] trait and range-based strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic sampler over the test rng.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant value, like `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = TestRng::deterministic("range");
        for _ in 0..5_000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1usize..50).generate(&mut rng);
            assert!((1..50).contains(&w));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn tuple_and_just() {
        let mut rng = TestRng::deterministic("tuple");
        let (a, b) = (0u8..10, Just(42u64)).generate(&mut rng);
        assert!(a < 10);
        assert_eq!(b, 42);
    }
}
