//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one value covering the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII, occasionally emit arbitrary scalar values.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any::<_>()")
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic("any");
        let vals: std::collections::BTreeSet<u64> =
            (0..64).map(|_| any::<u64>().generate(&mut rng)).collect();
        assert!(vals.len() > 60, "poor dispersion: {}", vals.len());
    }
}
