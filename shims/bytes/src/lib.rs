//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides the [`Buf`] / [`BufMut`] traits for the two concrete types
//! Concealer actually encodes with — `&[u8]` readers and `Vec<u8>` writers —
//! with the same big-endian accessor names as the real crate. All reads
//! panic on underflow, matching upstream semantics.

/// Sequential big-endian reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Sequential big-endian writer into a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16(0x0102);
        out.put_u32(0x0304_0506);
        out.put_u64(0x0708_090A_0B0C_0D0E);
        assert_eq!(out.len(), 15);

        let mut r: &[u8] = &out;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x0304_0506);
        assert_eq!(r.get_u64(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }
}
