//! Offline shim for `serde_derive`.
//!
//! The workspace cannot reach crates.io, and nothing in the repository
//! serializes through a serde `Serializer` yet — the derives exist so type
//! definitions keep the upstream-compatible `#[derive(Serialize,
//! Deserialize)]` annotations. These no-op derives accept the input and emit
//! nothing, which type-checks because the shim `serde` crate's traits have
//! no required items. Swap in the real serde once a wire format lands.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
