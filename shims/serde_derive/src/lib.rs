//! Offline shim for `serde_derive`.
//!
//! The workspace cannot reach crates.io, so this crate re-implements the
//! `Serialize` / `Deserialize` derives against the shim `serde` crate's
//! positional data model (see `shims/serde`): fields are written in
//! declaration order, enum variants carry their declaration index as a
//! varint tag. The macro hand-parses the item's token stream (no `syn` /
//! `quote` available offline) and supports exactly the shapes the
//! workspace serializes:
//!
//! * non-generic structs — named fields, tuple structs, unit structs;
//! * non-generic enums — unit, tuple and struct variants.
//!
//! Generic items are rejected with a compile-time panic. Attributes
//! (including doc comments) on items, fields and variants are skipped;
//! `#[serde(...)]` customization attributes are accepted syntactically but
//! have no effect. Swap in the real serde + serde_derive for full fidelity
//! (see `shims/README.md`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derive `serde::Serialize` (shim data model: positional field order).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.serialize_impl()
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim data model: positional field order).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.deserialize_impl()
        .parse()
        .expect("generated Deserialize impl parses")
}

/// The fields of a struct or enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// A parsed `struct` or `enum` item.
struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Cursor over a flat token-tree list with the few lookahead helpers the
/// item grammar needs.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skip any number of outer attributes (`#[...]`), including the
    /// `#[doc = "..."]` forms doc comments lower to.
    fn skip_attributes(&mut self) {
        while self.is_punct('#') {
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                other => panic!("serde shim derive: expected [...] after '#', got {other:?}"),
            }
        }
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, `pub(in ...)`).
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    fn expect_ident(&mut self, context: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected identifier ({context}), got {other:?}"),
        }
    }

    /// Skip tokens until a top-level `,` (angle-bracket depth 0) or the end
    /// of the stream; consumes the comma.
    fn skip_past_comma(&mut self) {
        let mut angle_depth = 0i64;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let mut cur = Cursor::new(input);
        cur.skip_attributes();
        cur.skip_visibility();

        let keyword = cur.expect_ident("struct/enum keyword");
        let name = cur.expect_ident("item name");
        if cur.is_punct('<') {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }

        match keyword.as_str() {
            "struct" => {
                let fields = match cur.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                    other => panic!("serde shim derive: unexpected struct body {other:?}"),
                };
                Item {
                    name,
                    shape: Shape::Struct(fields),
                }
            }
            "enum" => {
                let body = match cur.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!("serde shim derive: unexpected enum body {other:?}"),
                };
                Item {
                    name,
                    shape: Shape::Enum(parse_variants(body)),
                }
            }
            other => panic!("serde shim derive: cannot derive for `{other}` items"),
        }
    }

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let mut body = String::new();
        match &self.shape {
            Shape::Struct(fields) => {
                write_fields_serialize(&mut body, fields);
            }
            Shape::Enum(variants) => {
                body.push_str("match self {\n");
                for (tag, (variant, fields)) in variants.iter().enumerate() {
                    let (pattern, bindings) = variant_pattern(name, variant, fields);
                    let _ = writeln!(
                        body,
                        "{pattern} => {{ ::serde::Serializer::write_variant_tag(serializer, {tag}u32)?;"
                    );
                    for binding in &bindings {
                        let _ = writeln!(
                            body,
                            "::serde::Serialize::serialize({binding}, serializer)?;"
                        );
                    }
                    body.push_str("}\n");
                }
                body.push_str("}\n");
            }
        }
        format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: &mut S)\n\
             -> ::core::result::Result<(), S::Error> {{\n\
             let _ = &serializer;\n\
             {body}\n\
             ::core::result::Result::Ok(())\n\
             }}\n}}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.shape {
            Shape::Struct(fields) => format!(
                "::core::result::Result::Ok({})",
                fields_construct(name, fields)
            ),
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for (tag, (variant, fields)) in variants.iter().enumerate() {
                    let construct = fields_construct(&format!("{name}::{variant}"), fields);
                    let _ = writeln!(arms, "{tag}u32 => ::core::result::Result::Ok({construct}),");
                }
                format!(
                    "match ::serde::Deserializer::read_variant_tag(deserializer)? {{\n\
                     {arms}\n\
                     _ => ::core::result::Result::Err(\
                     ::serde::Deserializer::invalid_value(deserializer, \"variant tag\")),\n}}"
                )
            }
        };
        format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: &mut D)\n\
             -> ::core::result::Result<Self, D::Error> {{\n\
             let _ = &deserializer;\n\
             {body}\n\
             }}\n}}"
        )
    }
}

/// Serialize statements for a struct's own fields (`&self.x` receivers).
fn write_fields_serialize(out: &mut String, fields: &Fields) {
    match fields {
        Fields::Unit => {}
        Fields::Tuple(n) => {
            for idx in 0..*n {
                let _ = writeln!(
                    out,
                    "::serde::Serialize::serialize(&self.{idx}, serializer)?;"
                );
            }
        }
        Fields::Named(names) => {
            for field in names {
                let _ = writeln!(
                    out,
                    "::serde::Serialize::serialize(&self.{field}, serializer)?;"
                );
            }
        }
    }
}

/// A match pattern for one enum variant plus the binding names it creates.
fn variant_pattern(enum_name: &str, variant: &str, fields: &Fields) -> (String, Vec<String>) {
    match fields {
        Fields::Unit => (format!("{enum_name}::{variant}"), Vec::new()),
        Fields::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            (
                format!("{enum_name}::{variant}({})", bindings.join(", ")),
                bindings,
            )
        }
        Fields::Named(names) => (
            format!("{enum_name}::{variant} {{ {} }}", names.join(", ")),
            names.clone(),
        ),
    }
}

/// A constructor expression reading every field from `deserializer`.
fn fields_construct(path: &str, fields: &Fields) -> String {
    const READ: &str = "::serde::Deserialize::deserialize(deserializer)?";
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Tuple(n) => {
            let reads: Vec<&str> = (0..*n).map(|_| READ).collect();
            format!("{path}({})", reads.join(", "))
        }
        Fields::Named(names) => {
            let reads: Vec<String> = names.iter().map(|f| format!("{f}: {READ}")).collect();
            format!("{path} {{ {} }}", reads.join(", "))
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_visibility();
        fields.push(cur.expect_ident("field name"));
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after field, got {other:?}"),
        }
        cur.skip_past_comma();
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            break;
        }
        count += 1;
        cur.skip_past_comma();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                cur.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                cur.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional explicit discriminant and the separating comma.
        cur.skip_past_comma();
        variants.push((name, fields));
    }
    variants
}
