//! Offline shim for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Re-exports no-op `Serialize` / `Deserialize` derive macros so Concealer's
//! types keep their upstream-compatible annotations while the build runs
//! without crates.io access. No serializer exists yet, so the derives emit
//! nothing; the marker traits below are what generic code may bound on.
//! Replace this shim with the real serde when a wire format is introduced.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no required items).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no required items, lifetime
/// kept for signature compatibility).
pub trait Deserialize<'de> {}
