//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind `parking_lot`'s non-poisoning
//! API: `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock is recovered transparently (`parking_lot`
//! has no poisoning concept, so this matches its observable behaviour for
//! code that never relies on poison propagation).

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// Reader-writer lock (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
