//! Offline shim for the [`mio`](https://crates.io/crates/mio) crate.
//!
//! Implements exactly the readiness subset the workspace's event-driven
//! server uses: [`Poll`] / [`Events`] / [`Token`] / [`Interest`] plus a
//! [`Waker`] for cross-thread wake-ups. Two backends:
//!
//! * **epoll** (Linux): thin FFI over `epoll_create1` / `epoll_ctl` /
//!   `epoll_wait` — the production path, O(ready) per poll call.
//! * **poll** (portable fallback, any Unix): thin FFI over POSIX
//!   `poll(2)` — O(registered) per call, used automatically off Linux and
//!   forceable everywhere with `MIO_SHIM_FORCE_FALLBACK=1` (which is how
//!   the test suite exercises both backends on one machine).
//!
//! Divergences from upstream mio, all deliberate for shim minimalism:
//!
//! * Sources are plain `std::net` / `std::os::unix::net` values — anything
//!   implementing [`Source`] (provided for the std socket types via
//!   `AsRawFd`) — not mio's own wrapper types. Callers must put sockets in
//!   non-blocking mode themselves.
//! * Registration is **level-triggered** on both backends (upstream mio is
//!   edge-triggered): an event keeps firing while the condition holds, so
//!   handlers may leave data unread without losing wake-ups.
//! * [`Waker`] requires an explicit [`Waker::ack`] from the polling thread
//!   when its token surfaces (upstream wakers self-reset). `ack` before
//!   draining whatever queue the wake-up advertises and no wake-up is ever
//!   lost.
//!
//! This is the one shim that contains `unsafe` code: the FFI declarations
//! and calls for the two syscalls above, each a direct, argument-checked
//! wrapper. Everything above the `sys` modules is safe Rust.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};

/// Associates a registered source with the events it produces.
///
/// The value is caller-chosen and comes back verbatim in
/// [`Event::token`]; the shim never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// The readiness classes a registration subscribes to.
///
/// Combine with `|`: `Interest::READABLE | Interest::WRITABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (and, per level-triggered semantics,
    /// peer hang-ups, which surface as readable EOF).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether read readiness is subscribed.
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether write readiness is subscribed.
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    /// Union of two interests (upstream-compatible alias for `|`).
    // The name mirrors upstream mio's `Interest::add`, not `std::ops::Add`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        self | other
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification: which registration fired and how.
///
/// Errors and hang-ups are folded into readability *and* writability (the
/// caller's next read/write surfaces the actual `io::Error` or EOF), which
/// matches how level-triggered epoll consumers treat `EPOLLERR`/`EPOLLHUP`.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
}

impl Event {
    /// The token the source was registered with.
    #[must_use]
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the source is ready for reading (or has an error/hang-up
    /// pending, which a read will surface).
    #[must_use]
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Whether the source is ready for writing (or has an error pending,
    /// which a write will surface).
    #[must_use]
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// A reusable buffer of [`Event`]s filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll call.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterate the events of the last poll call.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll call returned no events (i.e. timed out).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events from the last poll call.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Anything that can be registered with a [`Poll`]: an OS-level I/O
/// handle identified by its raw file descriptor.
///
/// Provided for the std non-blocking socket types; callers registering
/// their own types implement it in one line.
#[cfg(unix)]
pub trait Source {
    /// The file descriptor to register.
    fn raw_fd(&self) -> RawFd;
}

#[cfg(unix)]
impl Source for std::net::TcpListener {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
impl Source for std::net::TcpStream {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
impl Source for std::net::UdpSocket {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
impl Source for std::os::unix::net::UnixStream {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
impl Source for std::os::unix::net::UnixListener {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// Which readiness backend a [`Poll`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — the default on Linux.
    Epoll,
    /// POSIX `poll(2)` — the portable fallback; default off Linux, forced
    /// anywhere by `MIO_SHIM_FORCE_FALLBACK=1`.
    Fallback,
}

impl Backend {
    /// The platform's preferred backend, honoring the
    /// `MIO_SHIM_FORCE_FALLBACK` override.
    #[must_use]
    pub fn preferred() -> Backend {
        let forced = std::env::var("MIO_SHIM_FORCE_FALLBACK").is_ok_and(|v| v == "1");
        if cfg!(target_os = "linux") && !forced {
            Backend::Epoll
        } else {
            Backend::Fallback
        }
    }

    /// Stable lowercase name (for logs and bench summaries).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Epoll => "epoll",
            Backend::Fallback => "poll",
        }
    }
}

#[cfg(unix)]
mod imp {
    use super::*;

    /// The readiness selector: register sources, then [`Poll::poll`] for
    /// events.
    #[derive(Debug)]
    pub struct Poll {
        pub(crate) backend: PollBackend,
    }

    #[derive(Debug)]
    pub(crate) enum PollBackend {
        #[cfg(target_os = "linux")]
        Epoll(sys_epoll::Epoll),
        Fallback(sys_poll::PollSet),
    }

    impl Poll {
        /// A poller on the platform's preferred backend (see
        /// [`Backend::preferred`]).
        pub fn new() -> io::Result<Poll> {
            Poll::with_backend(Backend::preferred())
        }

        /// A poller on an explicit backend. [`Backend::Epoll`] off Linux
        /// reports `Unsupported`.
        pub fn with_backend(backend: Backend) -> io::Result<Poll> {
            match backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll => Ok(Poll {
                    backend: PollBackend::Epoll(sys_epoll::Epoll::new()?),
                }),
                #[cfg(not(target_os = "linux"))]
                Backend::Epoll => Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll backend is Linux-only; use Backend::Fallback",
                )),
                Backend::Fallback => Ok(Poll {
                    backend: PollBackend::Fallback(sys_poll::PollSet::new()),
                }),
            }
        }

        /// Which backend this poller runs on.
        #[must_use]
        pub fn backend(&self) -> Backend {
            match &self.backend {
                #[cfg(target_os = "linux")]
                PollBackend::Epoll(_) => Backend::Epoll,
                PollBackend::Fallback(_) => Backend::Fallback,
            }
        }

        /// Subscribe `source` to `interest`, tagging its events with
        /// `token`. Registering an already-registered descriptor is an
        /// error; use [`Poll::reregister`].
        pub fn register(
            &self,
            source: &impl Source,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.register_fd(source.raw_fd(), token, interest)
        }

        pub(crate) fn register_fd(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                PollBackend::Epoll(e) => e.ctl_add(fd, token, interest),
                PollBackend::Fallback(p) => p.add(fd, token, interest),
            }
        }

        /// Replace an existing registration's token and interest.
        pub fn reregister(
            &self,
            source: &impl Source,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let fd = source.raw_fd();
            match &self.backend {
                #[cfg(target_os = "linux")]
                PollBackend::Epoll(e) => e.ctl_mod(fd, token, interest),
                PollBackend::Fallback(p) => p.modify(fd, token, interest),
            }
        }

        /// Remove a registration. Must be called before the descriptor is
        /// closed on the fallback backend (epoll drops closed descriptors
        /// itself, but relying on that is a Linux-ism).
        pub fn deregister(&self, source: &impl Source) -> io::Result<()> {
            let fd = source.raw_fd();
            match &self.backend {
                #[cfg(target_os = "linux")]
                PollBackend::Epoll(e) => e.ctl_del(fd),
                PollBackend::Fallback(p) => p.remove(fd),
            }
        }

        /// Block until at least one registered source is ready, the
        /// timeout elapses (`None` blocks indefinitely), or a signal
        /// interrupts the wait (which returns with `events` empty — a
        /// spurious-wakeup the caller's loop absorbs).
        pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            match &self.backend {
                #[cfg(target_os = "linux")]
                PollBackend::Epoll(e) => e.wait(events, timeout),
                PollBackend::Fallback(p) => p.wait(events, timeout),
            }
        }
    }

    /// Wakes a [`Poll::poll`] blocked on another thread.
    ///
    /// Built on a non-blocking `UnixStream` pair whose read half is
    /// registered with the poller under the caller's token. The polling
    /// thread must call [`Waker::ack`] when that token surfaces; calling
    /// `ack` *before* draining the work queue the wake-up advertises makes
    /// the pair lossless (a `wake` racing the `ack` simply fires the next
    /// poll call too).
    #[derive(Debug)]
    pub struct Waker {
        reader: std::os::unix::net::UnixStream,
        writer: std::os::unix::net::UnixStream,
        pending: std::sync::atomic::AtomicBool,
    }

    impl Waker {
        /// Create a waker registered with `poll` under `token`.
        pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
            let (reader, writer) = std::os::unix::net::UnixStream::pair()?;
            reader.set_nonblocking(true)?;
            writer.set_nonblocking(true)?;
            poll.register_fd(reader.as_raw_fd(), token, Interest::READABLE)?;
            Ok(Waker {
                reader,
                writer,
                pending: std::sync::atomic::AtomicBool::new(false),
            })
        }

        /// Make the poller's next (or current) poll call return with this
        /// waker's token. Callable from any thread; coalesces — many wakes
        /// before the `ack` produce one event.
        pub fn wake(&self) -> io::Result<()> {
            use std::sync::atomic::Ordering;
            if self.pending.swap(true, Ordering::AcqRel) {
                return Ok(()); // A wake-up is already in flight.
            }
            use std::io::Write as _;
            match (&self.writer).write(&[1u8]) {
                Ok(_) => Ok(()),
                // Pipe full means wake-ups are pending unread; that is a
                // wake-up by definition.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }

        /// Consume pending wake-ups (shim extension; see type docs). Call
        /// from the polling thread when this waker's token surfaces.
        pub fn ack(&self) {
            use std::sync::atomic::Ordering;
            self.pending.store(false, Ordering::Release);
            use std::io::Read as _;
            let mut sink = [0u8; 64];
            while matches!((&self.reader).read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// Thin FFI over Linux epoll. The only `unsafe` in the workspace lives
    /// here and in `sys_poll`; each call site passes checked, owned
    /// arguments to a single syscall.
    #[cfg(target_os = "linux")]
    mod sys_epoll {
        use super::{Event, Events, Interest, Token};
        use std::io;
        use std::os::fd::RawFd;
        use std::time::Duration;

        const EPOLL_CLOEXEC: i32 = 0o2000000;
        const EPOLL_CTL_ADD: i32 = 1;
        const EPOLL_CTL_DEL: i32 = 2;
        const EPOLL_CTL_MOD: i32 = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;

        /// Mirrors the kernel's `struct epoll_event`; packed on x86 ABIs.
        #[repr(C)]
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
        #[derive(Clone, Copy)]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        #[derive(Debug)]
        pub(crate) struct Epoll {
            epfd: RawFd,
        }

        impl Epoll {
            pub(crate) fn new() -> io::Result<Epoll> {
                // SAFETY: plain syscall, no pointers.
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(Epoll { epfd })
            }

            fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
                let mut event = event;
                let ptr = event
                    .as_mut()
                    .map_or(std::ptr::null_mut(), std::ptr::from_mut);
                // SAFETY: `ptr` is null (DEL) or points at a live local
                // that outlives the call; the kernel copies it.
                let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }

            pub(crate) fn ctl_add(
                &self,
                fd: RawFd,
                token: Token,
                interest: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, Some(epoll_event(token, interest)))
            }

            pub(crate) fn ctl_mod(
                &self,
                fd: RawFd,
                token: Token,
                interest: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, Some(epoll_event(token, interest)))
            }

            pub(crate) fn ctl_del(&self, fd: RawFd) -> io::Result<()> {
                self.ctl(EPOLL_CTL_DEL, fd, None)
            }

            pub(crate) fn wait(
                &self,
                events: &mut Events,
                timeout: Option<Duration>,
            ) -> io::Result<()> {
                let timeout_ms = super::timeout_ms(timeout);
                let capacity = events.capacity;
                let mut raw = vec![EpollEvent { events: 0, data: 0 }; capacity];
                // SAFETY: `raw` is a live, writable buffer of exactly
                // `capacity` entries for the duration of the call.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        raw.as_mut_ptr(),
                        i32::try_from(capacity).unwrap_or(i32::MAX),
                        timeout_ms,
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(()); // Spurious wake-up; events stays empty.
                    }
                    return Err(err);
                }
                for entry in raw.iter().take(n.unsigned_abs() as usize) {
                    // Copy out of the (possibly packed) struct before use.
                    let bits = entry.events;
                    let data = entry.data;
                    let closed = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                    events.inner.push(Event {
                        token: Token(data as usize),
                        readable: bits & EPOLLIN != 0 || closed,
                        writable: bits & EPOLLOUT != 0 || closed,
                    });
                }
                Ok(())
            }
        }

        impl Drop for Epoll {
            fn drop(&mut self) {
                // SAFETY: closing the fd we own exactly once.
                unsafe { close(self.epfd) };
            }
        }

        fn epoll_event(token: Token, interest: Interest) -> EpollEvent {
            let mut bits = EPOLLRDHUP;
            if interest.is_readable() {
                bits |= EPOLLIN;
            }
            if interest.is_writable() {
                bits |= EPOLLOUT;
            }
            EpollEvent {
                events: bits,
                data: token.0 as u64,
            }
        }
    }

    /// Thin FFI over POSIX `poll(2)`: the portable fallback backend. Keeps
    /// the registration table in userspace and rebuilds the pollfd array
    /// per call — O(registered), fine for moderate fan-in and for
    /// correctness testing of the epoll path.
    mod sys_poll {
        use super::{Event, Events, Interest, Token};
        use std::collections::BTreeMap;
        use std::io;
        use std::os::fd::RawFd;
        use std::sync::Mutex;
        use std::time::Duration;

        const POLLIN: i16 = 0x001;
        const POLLOUT: i16 = 0x004;
        const POLLERR: i16 = 0x008;
        const POLLHUP: i16 = 0x010;

        /// Mirrors POSIX `struct pollfd` (identical layout on all Unixes).
        #[repr(C)]
        #[derive(Clone, Copy)]
        struct PollFd {
            fd: i32,
            events: i16,
            revents: i16,
        }

        #[cfg(target_os = "linux")]
        type NFds = u64; // nfds_t = unsigned long on Linux.
        #[cfg(not(target_os = "linux"))]
        type NFds = u32; // nfds_t = unsigned int on the BSDs/macOS.

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
        }

        #[derive(Debug)]
        pub(crate) struct PollSet {
            registered: Mutex<BTreeMap<RawFd, (Token, Interest)>>,
        }

        impl PollSet {
            pub(crate) fn new() -> PollSet {
                PollSet {
                    registered: Mutex::new(BTreeMap::new()),
                }
            }

            fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<RawFd, (Token, Interest)>> {
                self.registered
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }

            pub(crate) fn add(
                &self,
                fd: RawFd,
                token: Token,
                interest: Interest,
            ) -> io::Result<()> {
                let mut registered = self.lock();
                if registered.contains_key(&fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered; use reregister",
                    ));
                }
                registered.insert(fd, (token, interest));
                Ok(())
            }

            pub(crate) fn modify(
                &self,
                fd: RawFd,
                token: Token,
                interest: Interest,
            ) -> io::Result<()> {
                match self.lock().get_mut(&fd) {
                    Some(entry) => {
                        *entry = (token, interest);
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }

            pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
                match self.lock().remove(&fd) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }

            pub(crate) fn wait(
                &self,
                events: &mut Events,
                timeout: Option<Duration>,
            ) -> io::Result<()> {
                let entries: Vec<(RawFd, Token, Interest)> = self
                    .lock()
                    .iter()
                    .map(|(&fd, &(token, interest))| (fd, token, interest))
                    .collect();
                let mut fds: Vec<PollFd> = entries
                    .iter()
                    .map(|&(fd, _, interest)| {
                        let mut bits = 0i16;
                        if interest.is_readable() {
                            bits |= POLLIN;
                        }
                        if interest.is_writable() {
                            bits |= POLLOUT;
                        }
                        PollFd {
                            fd,
                            events: bits,
                            revents: 0,
                        }
                    })
                    .collect();
                let timeout_ms = super::timeout_ms(timeout);
                // SAFETY: `fds` is a live, writable array of `len` entries
                // for the duration of the call.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for (pollfd, &(_, token, _)) in fds.iter().zip(&entries) {
                    if events.inner.len() >= events.capacity {
                        break;
                    }
                    let bits = pollfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    let closed = bits & (POLLERR | POLLHUP) != 0;
                    events.inner.push(Event {
                        token,
                        readable: bits & POLLIN != 0 || closed,
                        writable: bits & POLLOUT != 0 || closed,
                    });
                }
                Ok(())
            }
        }
    }

    /// Clamp a poll timeout to the millisecond `int` the syscalls take,
    /// rounding sub-millisecond waits *up* so `Some(tiny)` never busy-spins.
    fn timeout_ms(timeout: Option<Duration>) -> i32 {
        match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && d.as_nanos() > 0 {
                    1
                } else {
                    i32::try_from(ms).unwrap_or(i32::MAX)
                }
            }
        }
    }
}

#[cfg(unix)]
pub use imp::{Poll, Waker};

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKER: Token = Token(9);

    fn backends() -> Vec<Backend> {
        let mut backends = vec![Backend::Fallback];
        if cfg!(target_os = "linux") {
            backends.push(Backend::Epoll);
        }
        backends
    }

    fn poll_until(poll: &mut Poll, events: &mut Events, pred: impl Fn(&Event) -> bool) -> bool {
        for _ in 0..200 {
            poll.poll(events, Some(Duration::from_millis(25))).unwrap();
            if events.iter().any(&pred) {
                return true;
            }
        }
        false
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            assert_eq!(poll.backend(), backend);
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poll.register(&listener, LISTENER, Interest::READABLE)
                .unwrap();

            let mut events = Events::with_capacity(8);
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: no client yet");

            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            assert!(
                poll_until(&mut poll, &mut events, |e| e.token() == LISTENER
                    && e.is_readable()),
                "{backend:?}: accept readiness"
            );
            poll.deregister(&listener).unwrap();
        }
    }

    #[test]
    fn connected_stream_is_writable_and_reads_fire_on_data() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            let (mut peer, _) = listener.accept().unwrap();

            poll.register(&client, CLIENT, Interest::READABLE | Interest::WRITABLE)
                .unwrap();
            let mut events = Events::with_capacity(8);
            assert!(
                poll_until(&mut poll, &mut events, |e| e.token() == CLIENT
                    && e.is_writable()),
                "{backend:?}: connected stream is writable"
            );

            // Narrow to read interest; now only peer data wakes us.
            poll.reregister(&client, CLIENT, Interest::READABLE)
                .unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.iter().all(|e| !e.is_writable() || e.is_readable()),
                "{backend:?}: writable-only events after narrowing"
            );
            peer.write_all(b"ping").unwrap();
            assert!(
                poll_until(&mut poll, &mut events, |e| e.token() == CLIENT
                    && e.is_readable()),
                "{backend:?}: data readiness"
            );
            let mut buf = [0u8; 8];
            let n = (&client).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");
            poll.deregister(&client).unwrap();
        }
    }

    #[test]
    fn peer_close_surfaces_as_readable_eof() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            let (peer, _) = listener.accept().unwrap();
            poll.register(&client, CLIENT, Interest::READABLE).unwrap();
            drop(peer);
            let mut events = Events::with_capacity(8);
            assert!(
                poll_until(&mut poll, &mut events, |e| e.token() == CLIENT
                    && e.is_readable()),
                "{backend:?}: hang-up readiness"
            );
            let mut buf = [0u8; 8];
            assert_eq!((&client).read(&mut buf).unwrap(), 0, "{backend:?}: EOF");
            poll.deregister(&client).unwrap();
        }
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let waker = std::sync::Arc::new(Waker::new(&poll, WAKER).unwrap());
            let remote = std::sync::Arc::clone(&waker);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                remote.wake().unwrap();
            });
            let mut events = Events::with_capacity(8);
            let started = std::time::Instant::now();
            assert!(
                poll_until(&mut poll, &mut events, |e| e.token() == WAKER),
                "{backend:?}: waker event"
            );
            assert!(
                started.elapsed() < Duration::from_secs(3),
                "{backend:?}: wake-up was prompt"
            );
            waker.ack();
            // Acked: the next poll times out quietly.
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token() != WAKER),
                "{backend:?}: no event after ack"
            );
            // Coalescing: many wakes, one event, and ack clears them all.
            for _ in 0..100 {
                waker.wake().unwrap();
            }
            assert!(
                poll_until(&mut poll, &mut events, |e| e.token() == WAKER),
                "{backend:?}: coalesced waker event"
            );
            waker.ack();
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| e.token() != WAKER));
            handle.join().unwrap();
        }
    }

    #[test]
    fn double_register_errors_and_deregister_frees_the_slot() {
        for backend in backends() {
            let poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poll.register(&listener, LISTENER, Interest::READABLE)
                .unwrap();
            assert!(
                poll.register(&listener, LISTENER, Interest::READABLE)
                    .is_err(),
                "{backend:?}: double register must error"
            );
            poll.deregister(&listener).unwrap();
            poll.register(&listener, LISTENER, Interest::READABLE)
                .unwrap();
            poll.deregister(&listener).unwrap();
        }
    }

    #[test]
    fn preferred_backend_matches_platform() {
        // This test must not set the env var (tests run concurrently);
        // just pin the platform default when the override is absent.
        if std::env::var("MIO_SHIM_FORCE_FALLBACK").is_err() {
            let expected = if cfg!(target_os = "linux") {
                Backend::Epoll
            } else {
                Backend::Fallback
            };
            assert_eq!(Backend::preferred(), expected);
        }
        assert_eq!(Backend::Epoll.name(), "epoll");
        assert_eq!(Backend::Fallback.name(), "poll");
    }
}
