//! Offline shim for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements exactly the scoped-thread-pool subset the workspace uses:
//! [`ThreadPoolBuilder`] → [`ThreadPool`] → [`ThreadPool::scope`] with
//! [`Scope::spawn`]. Call sites are source-compatible with upstream rayon
//! (`pool.scope(|s| s.spawn(|_| ...))`), so swapping the real crate in is a
//! one-line `Cargo.toml` change.
//!
//! Unlike upstream this pool is deliberately **work-stealing-free**: one
//! shared FIFO injector queue, worker threads created per `scope` call via
//! [`std::thread::scope`] (which is also what lets spawned closures borrow
//! the enclosing stack frame without any `unsafe`). The calling thread
//! participates in draining the queue, so a pool built with `num_threads(n)`
//! executes tasks on up to `n + 1` threads — task *results* must therefore
//! never depend on which thread ran them, which rayon does not guarantee
//! either.
//!
//! Panic propagation matches rayon's observable behaviour: a panicking task
//! does not wedge the pool (remaining tasks still run; sibling workers still
//! terminate) and the panic resurfaces from `scope` once all tasks finished.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A queued unit of work; receives a scope handle so tasks can spawn more
/// tasks, exactly like rayon.
type Task<'env> = Box<dyn FnOnce(&Scope<'_, 'env>) + Send + 'env>;

/// Builder for a [`ThreadPool`] (subset of rayon's builder).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads. As in rayon, `0` (the default)
    /// means "pick automatically" — this shim uses
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool. Infallible in this shim (workers are created lazily,
    /// per `scope` call), but kept fallible for upstream signature parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// Error building a [`ThreadPool`]. Never produced by this shim; exists so
/// `build()?` / `.expect(...)` call sites match upstream.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread pool.
///
/// The pool value itself is just a thread-count; OS threads live only for
/// the duration of each [`ThreadPool::scope`] call, so constructing one is
/// free and a pool can be created per batch without amortization concerns.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The number of worker threads `scope` will spawn.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with a [`Scope`] on which tasks can be spawned; returns once
    /// `op` *and every spawned task* (including tasks spawned by tasks)
    /// completed. `op` runs on the calling thread, which then helps drain
    /// the queue.
    pub fn scope<'env, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'_, 'env>) -> R + Send,
        R: Send,
    {
        let shared = Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: 0,
                body_done: false,
            }),
            work_available: Condvar::new(),
        };
        std::thread::scope(|threads| {
            for _ in 0..self.num_threads {
                threads.spawn(|| run_worker(&shared));
            }
            let result = {
                // Mark the scope body finished even if `op` panics, so the
                // workers terminate and `std::thread::scope` can join them
                // (propagating the panic) instead of deadlocking.
                let _completion = BodyGuard(&shared);
                op(&Scope { shared: &shared })
            };
            // Help drain whatever `op` spawned.
            run_worker(&shared);
            result
        })
    }
}

/// A scope in which tasks can be spawned (subset of rayon's `Scope`).
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
}

impl<'env> Scope<'_, 'env> {
    /// Queue `body` for execution on the pool. The closure receives the
    /// scope, so tasks can spawn further tasks; all of them are awaited
    /// before the enclosing [`ThreadPool::scope`] returns.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'_, 'env>) + Send + 'env,
    {
        let mut state = self.shared.lock_state();
        state.pending += 1;
        state.queue.push_back(Box::new(body));
        drop(state);
        self.shared.work_available.notify_one();
    }

    /// Stage barrier (a shim extension, not in upstream rayon): block until
    /// every task spawned on this scope so far — including tasks those
    /// tasks spawned — has finished, then return, with the scope still open
    /// for further `spawn` calls.
    ///
    /// The calling thread participates: it drains queued tasks instead of
    /// sleeping while work remains, so a single-threaded pool quiesces
    /// without any worker. This lets a scope body run *staged* fan-outs
    /// (spawn stage 1, `quiesce`, inspect the results, spawn stage 2) in
    /// one `scope` call — one round of worker threads instead of one per
    /// stage.
    pub fn quiesce(&self) {
        loop {
            let task = {
                let mut state = self.shared.lock_state();
                loop {
                    if let Some(task) = state.queue.pop_front() {
                        break Some(task);
                    }
                    if state.pending == 0 {
                        break None;
                    }
                    // Tasks are still running on workers; wait for the
                    // last TaskGuard's wake-up (or for work they spawn).
                    state = self
                        .shared
                        .work_available
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(task) = task else {
                return;
            };
            let _completion = TaskGuard(self.shared);
            task(self);
        }
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

struct State<'env> {
    queue: VecDeque<Task<'env>>,
    /// Tasks queued or currently running. `queue.len() <= pending` always.
    pending: usize,
    /// Whether the `scope` body returned (no new root tasks can appear).
    body_done: bool,
}

struct Shared<'env> {
    state: Mutex<State<'env>>,
    work_available: Condvar,
}

impl<'env> Shared<'env> {
    /// Lock the state, shrugging off poisoning: a task panic can only occur
    /// *outside* the lock (tasks run unlocked), and the pool must keep
    /// functioning so the panic can propagate after all siblings finish.
    fn lock_state(&self) -> MutexGuard<'_, State<'env>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Marks the scope body finished on drop (i.e. also when `op` panicked).
struct BodyGuard<'pool, 'env>(&'pool Shared<'env>);

impl Drop for BodyGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.lock_state().body_done = true;
        self.0.work_available.notify_all();
    }
}

/// Decrements `pending` on drop, so a panicking task still counts as
/// finished and sibling workers terminate instead of waiting forever.
struct TaskGuard<'pool, 'env>(&'pool Shared<'env>);

impl Drop for TaskGuard<'_, '_> {
    fn drop(&mut self) {
        let mut state = self.0.lock_state();
        state.pending -= 1;
        // Wake everyone whenever the pool drains, not only once the body
        // finished: a thread blocked in `Scope::quiesce` waits for exactly
        // this `pending == 0` transition while the body is still running.
        let all_done = state.pending == 0;
        drop(state);
        if all_done {
            self.0.work_available.notify_all();
        }
    }
}

/// Worker loop: pop and run tasks until the scope body finished and no task
/// is queued or running. Run by each pool thread and by the caller.
fn run_worker<'env>(shared: &Shared<'env>) {
    let scope = Scope { shared };
    loop {
        let task = {
            let mut state = shared.lock_state();
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break Some(task);
                }
                if state.body_done && state.pending == 0 {
                    break None;
                }
                state = shared
                    .work_available
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(task) = task else {
            // Chain the termination wake-up in case a notify was consumed
            // by a worker that found the queue empty.
            shared.work_available.notify_all();
            return;
        };
        let _completion = TaskGuard(shared);
        task(&scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn runs_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        pool(4).scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_can_borrow_and_mutate_disjoint_slots() {
        let mut slots = vec![0usize; 64];
        pool(3).scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * i);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        pool(2).scope(|s| {
            for _ in 0..8 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_returns_the_body_value() {
        let out = pool(2).scope(|s| {
            s.spawn(|_| {});
            21 * 2
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn zero_threads_still_drains_on_the_caller() {
        // num_threads(0) means "auto" per rayon; force the degenerate case
        // through a directly-constructed builder default of 1 worker by
        // spawning from a pool of one and relying on caller participation.
        let counter = AtomicUsize::new(0);
        pool(1).scope(|s| {
            for _ in 0..10 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn quiesce_is_a_stage_barrier() {
        let stage1 = AtomicUsize::new(0);
        let stage2 = AtomicUsize::new(0);
        pool(3).scope(|s| {
            for _ in 0..50 {
                s.spawn(|_| {
                    stage1.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.quiesce();
            // Every stage-1 task has fully finished before quiesce returns.
            assert_eq!(stage1.load(Ordering::SeqCst), 50);
            for _ in 0..50 {
                s.spawn(|_| {
                    // Stage-1 work can never observe stage-2 increments, so
                    // the converse also holds: stage 2 started from 50.
                    assert_eq!(stage1.load(Ordering::SeqCst), 50);
                    stage2.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(stage2.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn quiesce_waits_for_nested_spawns_and_single_thread_pools() {
        for threads in [1, 4] {
            let counter = AtomicUsize::new(0);
            pool(threads).scope(|s| {
                for _ in 0..8 {
                    s.spawn(|inner| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        inner.spawn(|_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    });
                }
                s.quiesce();
                assert_eq!(counter.load(Ordering::SeqCst), 16, "threads={threads}");
            });
        }
    }

    #[test]
    fn quiesce_on_an_idle_scope_returns_immediately() {
        pool(2).scope(|s| {
            s.quiesce();
            s.quiesce();
            s.spawn(|_| {});
            s.quiesce();
        });
    }

    #[test]
    fn auto_thread_count_is_nonzero() {
        let p = ThreadPoolBuilder::new().build().unwrap();
        assert!(p.current_num_threads() >= 1);
    }

    #[test]
    fn panicking_task_propagates_without_wedging() {
        let counter = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool(2).scope(|s| {
                s.spawn(|_| panic!("boom"));
                for _ in 0..20 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate from scope");
        assert_eq!(
            counter.load(Ordering::Relaxed),
            20,
            "sibling tasks still ran"
        );
    }
}
