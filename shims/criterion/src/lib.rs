//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the `concealer-bench`
//! suite uses — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a deliberately
//! simple measurement loop: warm up once, then time batches until a fixed
//! measurement budget is spent, and report the mean ns/iter on stdout.
//! There is no statistical analysis, HTML report, or baseline comparison;
//! swap in the real criterion for publication-grade numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's measurement budget is
    /// fixed, so the requested sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly, accumulating iterations and wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let budget = Duration::from_millis(40);
        let mut batch = 1u64;
        while self.elapsed < budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    let ns_per_iter = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("{label:<60} {ns_per_iter:>14.1} ns/iter  {per_sec:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("{label:<60} {ns_per_iter:>14.1} ns/iter  {per_sec:>14.0} B/s");
        }
        _ => println!("{label:<60} {ns_per_iter:>14.1} ns/iter"),
    }
}

/// Bundle benchmark functions into a group runner, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs each group produced by `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("point", 42).id, "point/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
