//! Quickstart: stand up a full Concealer deployment, ingest one epoch of
//! spatial time-series readings, and run the basic query classes through a
//! [`concealer_core::Session`].
//!
//! ```text
//! cargo run --release -p concealer-examples --example quickstart
//! ```

use concealer_core::{ExecOptions, Query, RangeMethod, Record};
use concealer_examples::demo_config;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. The data provider sets up the deployment: shared secret, enclave
    //    provisioning, and the storage engine at the service provider.
    let mut system = concealer_core::ConcealerSystem::new(demo_config(2), &mut rng);

    // 2. Users register with the data provider and receive credentials.
    let alice = system.register_user(1, vec![1001], true);

    // 3. The data provider encrypts and ships an epoch of readings:
    //    (location, time, device-id) triples from its sensors.
    let records: Vec<Record> = (0..2_000u64)
        .map(|i| Record::spatial(i % 12, (i * 3) % 7200, 1000 + i % 40))
        .collect();
    let stats = system.ingest_epoch(0, &records, &mut rng).expect("ingest");
    println!(
        "ingested epoch 0: {} real rows + {} fake rows ({} cell-ids used, max load {})",
        stats.real_rows, stats.fake_rows, stats.cell_ids_used, stats.max_cell_id_load
    );

    // 4. Alice opens a session: her handle plus default execution options.
    let session = system.session(&alice);

    // 5. A point query: "how many devices were seen at location 3 at 10:00?"
    let point = Query::count().at_dims([3]).at(600);
    let answer = session.execute(&point).expect("point query");
    println!(
        "point query  -> {:?} (fetched {} rows, verified: {})",
        answer.value, answer.rows_fetched, answer.verified
    );

    // 6. A range query: occupancy of location 5 over the first half hour,
    //    executed with the volume-hiding eBPB method.
    let range = Query::count().at_dims([5]).between(0, 1_799);
    let answer = session
        .execute_with(&range, ExecOptions::with_method(RangeMethod::Ebpb))
        .expect("range query");
    println!(
        "range query  -> {:?} (fetched {} rows, decrypted {})",
        answer.value, answer.rows_fetched, answer.rows_decrypted
    );

    // 7. An individualized query: where was Alice's device (1001) seen?
    let my_device = Query::collect_rows().observing(1001).between(0, 7_199);
    let answer = session
        .execute_with(&my_device, ExecOptions::with_method(RangeMethod::Bpb))
        .expect("individualized query");
    println!("individualized query -> {:?}", answer.value);

    // 8. A batch: per-location occupancy for every location, in one call.
    //    Queries that share bins cause a single fetch instead of one each.
    let batch: Vec<Query> = (0..12)
        .map(|loc| Query::count().at_dims([loc]).between(0, 3_599))
        .collect();
    let batch_session = session
        .clone()
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));
    let answers = batch_session.execute_batch(&batch);
    println!(
        "batch of {} occupancy queries -> {} answered",
        batch.len(),
        answers.iter().filter(|a| a.is_ok()).count()
    );

    // 9. What did the untrusted service provider observe? Only fixed-size
    //    fetches — no output sizes, no predicates.
    let summary = system.observer().summary();
    println!(
        "adversary view: {} trapdoors issued, {} rows fetched ({} distinct), {} bytes moved",
        summary.trapdoors,
        summary.rows_fetched,
        summary.distinct_rows_touched,
        summary.bytes_fetched
    );
}
