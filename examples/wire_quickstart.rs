//! Wire quickstart: serve a Concealer deployment over TCP in-process,
//! connect a client, and run the query classes over the wire — the
//! served variant of `examples/quickstart.rs`.
//!
//! ```text
//! cargo run --release --example wire_quickstart
//! ```
//!
//! For a real two-process setup, run `cargo run --release -p
//! concealer-server` in one terminal and point `concealer-load` (or your
//! own `concealer_client::ClientBuilder`) at the printed address.

use std::sync::Arc;

use concealer_client::ClientBuilder;
use concealer_core::{ExecOptions, Query, RangeMethod};
use concealer_examples::{demo_epoch_records, demo_system};
use concealer_server::{Server, ServerConfig};

fn main() {
    // 1. The service provider stands up the deployment (two hours of demo
    //    WiFi data, deterministic in the seed) and serves it on loopback.
    let (system, user, _records) = demo_system(2, 42);
    let handle = Server::new(Arc::new(system), ServerConfig::default())
        .spawn()
        .expect("bind a loopback port");
    let addr = handle.local_addr();
    println!("serving on {addr}");

    // 2. An analyst connects with the credential the data provider issued
    //    (here: taken from the in-process handle; in a real deployment it
    //    arrives out of band). The builder attests the enclave *before*
    //    the credential crosses the wire — the default trust policy
    //    refuses any server that cannot produce a verifiable quote.
    let mut conn = ClientBuilder::new(addr)
        .user(&user)
        .client_name("wire-quickstart")
        .connect()
        .expect("attest + handshake");
    println!(
        "attested: {} enclave quote(s), measurement {:02x?}…",
        conn.quotes().len(),
        &conn.quotes()[0].measurement[..4]
    );
    let info = conn.server_info();
    println!(
        "connected to {} (protocol {}, backend {}, max batch {})",
        info.server_name, info.protocol_version, info.backend, info.max_batch
    );

    // 3. A point query over the wire. The answer carries the enclave's
    //    verification metadata — the client trusts that, not the wire.
    let point = Query::count().at_dims([3]).at(600);
    let answer = conn.execute(&point).expect("point query");
    println!(
        "point count at location 3, t=600  -> {:?} (verified: {})",
        answer.value, answer.verified
    );

    // 4. A batch under BPB: the server dedupes shared bin fetches across
    //    the batch and runs it on its thread pool.
    let queries: Vec<Query> = vec![
        Query::count().at_dims([3]).between(0, 1_799),
        Query::count().at_dims([5]).between(0, 3_599),
        Query::top_k_locations(5).between(0, 7_199),
    ];
    let options = ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(2);
    let results = conn.execute_batch_with(&queries, options).expect("batch");
    for (query, result) in queries.iter().zip(&results) {
        match result {
            Ok(answer) => println!("batch {:?} -> {:?}", query.predicate, answer.value),
            Err(e) => println!("batch {:?} -> error {e}", query.predicate),
        }
    }
    // 5. Ingest a follow-up epoch over the wire while the connection
    //    stays live, then query across both epochs.
    let epoch2 = demo_epoch_records(2, 42, 2 * 3600);
    let rows = conn.ingest_epoch(2 * 3600, &epoch2).expect("wire ingest");
    println!("ingested epoch at t=7200 over the wire ({rows} rows stored)");
    let spanning = Query::count().at_dims([3]).between(0, 4 * 3600 - 1);
    let answer = conn.execute(&spanning).expect("spanning query");
    println!(
        "spanning count -> {:?} ({} epochs touched)",
        answer.value, answer.epochs_touched
    );

    // 6. Clean close, then a graceful server shutdown.
    conn.close().expect("goodbye");
    let report = handle.shutdown_and_join();
    println!(
        "server drained: {} connections, {} requests",
        report.connections_served, report.requests_served
    );
}
