//! Non-spatial workload (Exp 8 of the paper): OLAP aggregations over an
//! encrypted TPC-H LineItem table using Concealer's 2-D composite index
//! ⟨Orderkey, Linenumber⟩, compared against an Opaque-style full scan.
//! Both backends are driven through the [`concealer_core::SecureIndex`]
//! trait — the same interface the equivalence tests and benchmarks use.
//!
//! ```text
//! cargo run --release -p concealer-examples --example tpch_analytics
//! ```

use concealer_baselines::OpaqueBaseline;
use concealer_core::{
    ConcealerSystem, FakeTupleStrategy, GridShape, Query, QueryBuilder, SecureIndex, SystemConfig,
};
use concealer_workloads::{TpchConfig, TpchGenerator, TpchIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let rows = 20_000u64;
    let generator = TpchGenerator::new(TpchConfig {
        rows,
        orders: rows / 4,
        parts: 2_000,
        suppliers: 100,
        index: TpchIndex::TwoD,
    });
    let records = generator.generate_records(&mut rng);
    let epoch_duration = generator.epoch_duration();

    let config = SystemConfig {
        grid: GridShape {
            dim_buckets: vec![rows / 40, 7],
            time_subintervals: 1,
            num_cell_ids: (rows / 100) as u32,
        },
        epoch_duration,
        time_granularity: 1,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: false,
        oblivious: false,
        winsec_rows_per_interval: 1,
    };
    let mut system = ConcealerSystem::new(config, &mut rng);
    let _analyst = system.register_user(1, vec![], true);
    SecureIndex::ingest_epoch(&mut system, 0, &records, &mut rng).expect("ingest LineItem");
    println!(
        "ingested {} LineItem rows under the 2-D index",
        records.len()
    );

    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque
        .ingest_epoch(0, &records, &mut rng)
        .expect("opaque ingest");

    // Aggregate extended price for a specific (orderkey, linenumber), on
    // both backends through the shared SecureIndex interface.
    let target = &records[1234];
    let dims = target.dims.clone();
    let backends: [(&str, &dyn SecureIndex); 2] = [("Concealer", &system), ("Opaque", &opaque)];
    for (name, builder) in [
        ("count", Query::count()),
        ("sum(extendedprice)", Query::sum(1)),
        ("min(extendedprice)", Query::min(1)),
        ("max(extendedprice)", Query::max(1)),
    ] {
        let query = finish(builder, &dims, epoch_duration);
        let mut answers = Vec::new();
        let mut report = Vec::new();
        for (label, backend) in backends {
            let start = Instant::now();
            let answer = backend.execute(&query).expect("query");
            let elapsed = start.elapsed();
            report.push(format!(
                "{label} {elapsed:>9.3?} ({} rows fetched)",
                answer.rows_fetched
            ));
            answers.push(answer.value);
        }
        assert_eq!(answers[0], answers[1], "both systems agree");
        println!("{name:>20}: {}", report.join(" | "));
    }
}

fn finish(builder: QueryBuilder, dims: &[u64], epoch_duration: u64) -> Query {
    builder
        .at_dims(dims.to_vec())
        .between(0, epoch_duration - 1)
}
