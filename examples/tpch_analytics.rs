//! Non-spatial workload (Exp 8 of the paper): OLAP aggregations over an
//! encrypted TPC-H LineItem table using Concealer's 2-D composite index
//! ⟨Orderkey, Linenumber⟩, compared against an Opaque-style full scan.
//!
//! ```text
//! cargo run --release -p concealer-examples --example tpch_analytics
//! ```

use concealer_baselines::OpaqueBaseline;
use concealer_core::{
    Aggregate, ConcealerSystem, FakeTupleStrategy, GridShape, Predicate, Query, RangeOptions,
    SystemConfig,
};
use concealer_workloads::{TpchConfig, TpchGenerator, TpchIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let rows = 20_000u64;
    let generator = TpchGenerator::new(TpchConfig {
        rows,
        orders: rows / 4,
        parts: 2_000,
        suppliers: 100,
        index: TpchIndex::TwoD,
    });
    let records = generator.generate_records(&mut rng);
    let epoch_duration = generator.epoch_duration();

    let config = SystemConfig {
        grid: GridShape {
            dim_buckets: vec![rows / 40, 7],
            time_subintervals: 1,
            num_cell_ids: (rows / 100) as u32,
        },
        epoch_duration,
        time_granularity: 1,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: false,
        oblivious: false,
        winsec_rows_per_interval: 1,
    };
    let mut system = ConcealerSystem::new(config, &mut rng);
    let analyst = system.register_user(1, vec![], true);
    system
        .ingest_epoch(0, records.clone(), &mut rng)
        .expect("ingest LineItem");
    println!("ingested {} LineItem rows under the 2-D index", records.len());

    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque.ingest_epoch(0, &records, &mut rng).expect("opaque ingest");

    // Aggregate extended price for a specific (orderkey, linenumber).
    let target = &records[1234];
    let dims = target.dims.clone();
    for (name, aggregate) in [
        ("count", Aggregate::Count),
        ("sum(extendedprice)", Aggregate::Sum { attr: 1 }),
        ("min(extendedprice)", Aggregate::Min { attr: 1 }),
        ("max(extendedprice)", Aggregate::Max { attr: 1 }),
    ] {
        let query = Query {
            aggregate,
            predicate: Predicate::Range {
                dims: Some(dims.clone()),
                observation: None,
                time_start: 0,
                time_end: epoch_duration - 1,
            },
        };
        let start = Instant::now();
        let answer = system
            .range_query(&analyst, &query, RangeOptions::default())
            .expect("tpch query");
        let concealer_time = start.elapsed();

        let start = Instant::now();
        let (opaque_answer, scanned, _) = opaque.query(&query).expect("opaque query");
        let opaque_time = start.elapsed();

        assert_eq!(answer.value, opaque_answer, "both systems agree");
        println!(
            "{name:>20}: Concealer {:>9.3?} ({} rows fetched) | Opaque full scan {:>9.3?} ({} rows scanned)",
            concealer_time, answer.rows_fetched, opaque_time, scanned
        );
    }
}
