//! Individualized application (§1, class 2): exposure tracing over a user's
//! own device trajectory, in the spirit of the WiFiTrace use-case the paper
//! cites. The user asks where their device was seen and who co-occurred in
//! those locations — and the registry/authorization layer stops them from
//! mining anyone else's trajectory directly.
//!
//! ```text
//! cargo run --release -p concealer-examples --example contact_tracing
//! ```

use concealer_core::query::AnswerValue;
use concealer_core::{CoreError, ExecOptions, Query, RangeMethod};
use concealer_examples::demo_system;
use std::collections::BTreeSet;

fn main() {
    let (system, alice, records) = demo_system(3, 11);
    let my_device = 1001u64;
    println!("tracing device {my_device} over {} readings", records.len());

    let session = system
        .session(&alice)
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));

    // Step 1 (individualized, authorized): where was my device seen?
    let my_visits = Query::collect_rows()
        .observing(my_device)
        .between(0, 3 * 3600 - 1);
    let answer = session.execute(&my_visits).expect("own-trajectory query");
    let visited: BTreeSet<u64> = match &answer.value {
        AnswerValue::Rows(rows) => rows
            .iter()
            .filter_map(|r| r.dims.first().copied())
            .collect(),
        other => panic!("unexpected answer {other:?}"),
    };
    println!("device {my_device} was seen at locations: {visited:?}");

    // Step 2 (aggregate, allowed): how many readings happened at each of
    // those locations — the size of the potentially exposed population.
    // One batch; bins shared between the visited locations are fetched
    // once.
    let exposure: Vec<Query> = visited
        .iter()
        .map(|loc| Query::count().at_dims([*loc]).between(0, 3 * 3600 - 1))
        .collect();
    for (loc, answer) in visited.iter().zip(session.execute_batch(&exposure)) {
        let a = answer.expect("exposure count");
        println!("  location {loc}: {:?} co-located readings", a.value);
    }

    // Step 3: trying to pull another user's trajectory is rejected by the
    // enclave's authorization check — Alice does not own device 1000000.
    let someone_else = Query::collect_rows()
        .observing(1_000_000)
        .between(0, 3 * 3600 - 1);
    match session.execute(&someone_else) {
        Err(CoreError::Enclave(e)) => println!("foreign-device query rejected as expected: {e}"),
        other => println!("unexpected outcome for foreign-device query: {other:?}"),
    }
}
