//! Individualized application (§1, class 2): exposure tracing over a user's
//! own device trajectory, in the spirit of the WiFiTrace use-case the paper
//! cites. The user asks where their device was seen and who co-occurred in
//! those locations — and the registry/authorization layer stops them from
//! mining anyone else's trajectory directly.
//!
//! ```text
//! cargo run --release -p concealer-examples --example contact_tracing
//! ```

use concealer_core::query::AnswerValue;
use concealer_core::{Aggregate, CoreError, Predicate, Query, RangeMethod, RangeOptions};
use concealer_examples::demo_system;
use std::collections::BTreeSet;

fn main() {
    let (system, alice, records) = demo_system(3, 11);
    let my_device = 1001u64;
    println!("tracing device {my_device} over {} readings", records.len());

    // Step 1 (individualized, authorized): where was my device seen?
    let my_visits = Query {
        aggregate: Aggregate::CollectRows,
        predicate: Predicate::Range {
            dims: None,
            observation: Some(my_device),
            time_start: 0,
            time_end: 3 * 3600 - 1,
        },
    };
    let answer = system
        .range_query(&alice, &my_visits, RangeOptions { method: RangeMethod::Bpb, ..Default::default() })
        .expect("own-trajectory query");
    let visited: BTreeSet<u64> = match &answer.value {
        AnswerValue::Rows(rows) => rows.iter().filter_map(|r| r.dims.first().copied()).collect(),
        other => panic!("unexpected answer {other:?}"),
    };
    println!("device {my_device} was seen at locations: {visited:?}");

    // Step 2 (aggregate, allowed): how many readings happened at each of
    // those locations — the size of the potentially exposed population.
    for loc in &visited {
        let q = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![*loc]),
                observation: None,
                time_start: 0,
                time_end: 3 * 3600 - 1,
            },
        };
        let a = system
            .range_query(&alice, &q, RangeOptions::default())
            .expect("exposure count");
        println!("  location {loc}: {:?} co-located readings", a.value);
    }

    // Step 3: trying to pull another user's trajectory is rejected by the
    // enclave's authorization check — Alice does not own device 1000000.
    let someone_else = Query {
        aggregate: Aggregate::CollectRows,
        predicate: Predicate::Range {
            dims: None,
            observation: Some(1_000_000),
            time_start: 0,
            time_end: 3 * 3600 - 1,
        },
    };
    match system.range_query(&alice, &someone_else, RangeOptions::default()) {
        Err(CoreError::Enclave(e)) => println!("foreign-device query rejected as expected: {e}"),
        other => println!("unexpected outcome for foreign-device query: {other:?}"),
    }
}
