//! Aggregate application (§1, class 1): build an hourly occupancy heat map
//! of a smart building from encrypted WiFi connectivity data, without the
//! service provider ever learning per-location counts.
//!
//! The hour-by-hour queries go through `Session::par_execute_batch`, so
//! bins shared between hours are fetched once for the whole heat map and
//! the fetch/aggregate stages spread across all available cores — with
//! answers and the adversary-observable trace bit-identical to sequential
//! execution.
//!
//! ```text
//! cargo run --release -p concealer-examples --example occupancy_heatmap
//! ```

use concealer_core::{ExecOptions, Query, RangeMethod};
use concealer_examples::demo_system;

fn main() {
    let hours = 4;
    let (system, operator, records) = demo_system(hours, 7);
    println!(
        "deployment ready: {} readings across {} access points",
        records.len(),
        records.iter().map(|r| r.dims[0]).max().unwrap_or(0) + 1
    );

    let session = system
        .session(&operator)
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));

    // Hour-by-hour top-5 busiest locations (query Q2 of the paper), as one
    // batch: each bin the hours share is fetched and verified once.
    let hourly: Vec<Query> = (0..hours)
        .map(|hour| Query::top_k_locations(5).between(hour * 3600, (hour + 1) * 3600 - 1))
        .collect();
    for (hour, answer) in session.par_execute_batch(&hourly).into_iter().enumerate() {
        let answer = answer.expect("heat map query");
        println!("hour {hour:>2}: top locations {:?}", answer.value);
    }

    // Locations that ever exceed 50 readings in an hour (query Q3): the
    // "crowded rooms" alert of the intro's motivating application.
    let alert = Query::locations_with_at_least(50).between(0, hours * 3600 - 1);
    let answer = session.execute(&alert).expect("alert query");
    println!(
        "locations with >= 50 readings over the whole window: {:?}",
        answer.value
    );

    // Every one of those queries fetched fixed-size bins; show the flat
    // per-query volumes the adversary observed (the whole batch appears as
    // one interaction to the service provider).
    let volumes: Vec<usize> = system
        .observer()
        .per_query_summaries()
        .iter()
        .map(|s| s.rows_fetched)
        .collect();
    println!("per-interaction rows observed by the service provider: {volumes:?}");
}
