//! Aggregate application (§1, class 1): build an hourly occupancy heat map
//! of a smart building from encrypted WiFi connectivity data, without the
//! service provider ever learning per-location counts.
//!
//! ```text
//! cargo run --release -p concealer-examples --example occupancy_heatmap
//! ```

use concealer_core::{Aggregate, Predicate, Query, RangeMethod, RangeOptions};
use concealer_examples::demo_system;

fn main() {
    let hours = 4;
    let (system, operator, records) = demo_system(hours, 7);
    println!(
        "deployment ready: {} readings across {} access points",
        records.len(),
        records.iter().map(|r| r.dims[0]).max().unwrap_or(0) + 1
    );

    // Hour-by-hour top-5 busiest locations (query Q2 of the paper).
    for hour in 0..hours {
        let query = Query {
            aggregate: Aggregate::TopKLocations { k: 5 },
            predicate: Predicate::Range {
                dims: None,
                observation: None,
                time_start: hour * 3600,
                time_end: (hour + 1) * 3600 - 1,
            },
        };
        let answer = system
            .range_query(&operator, &query, RangeOptions { method: RangeMethod::Bpb, ..Default::default() })
            .expect("heat map query");
        println!("hour {hour:>2}: top locations {:?}", answer.value);
    }

    // Locations that ever exceed 50 readings in an hour (query Q3): the
    // "crowded rooms" alert of the intro's motivating application.
    let alert = Query {
        aggregate: Aggregate::LocationsWithAtLeast { threshold: 50 },
        predicate: Predicate::Range {
            dims: None,
            observation: None,
            time_start: 0,
            time_end: hours * 3600 - 1,
        },
    };
    let answer = system
        .range_query(&operator, &alert, RangeOptions { method: RangeMethod::Bpb, ..Default::default() })
        .expect("alert query");
    println!("locations with >= 50 readings over the whole window: {:?}", answer.value);

    // Every one of those queries fetched fixed-size bins; show the flat
    // per-query volumes the adversary observed.
    let volumes: Vec<usize> = system
        .observer()
        .per_query_summaries()
        .iter()
        .map(|s| s.rows_fetched)
        .collect();
    println!("per-query rows observed by the service provider: {volumes:?}");
}
