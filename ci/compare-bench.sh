#!/usr/bin/env sh
# Gate: the perf-smoke run must not regress sequential batch throughput by
# more than MAX_REGRESSION_PCT (default 35%) against the committed
# baseline, BENCH_baseline.json. This is the tracked bench trajectory's
# floor — BENCH_pr.json artifacts from the bench-smoke job are the points.
#
# The baseline is hardware-specific (queries/sec on whatever machine wrote
# it). When CI hardware changes, refresh it by copying a representative
# BENCH_pr.json artifact over BENCH_baseline.json in a dedicated commit;
# the wide 35% band absorbs ordinary runner-to-runner noise, not
# generational hardware shifts.
#
# Exit codes: 0 ok, 1 regression beyond the floor, 2 malformed input
# (missing file, missing sections, non-numeric qps). Exercised by
# ci/selftest-compare-bench.sh in the lint-ci job.
#
# Usage: compare-bench.sh [baseline.json] [current.json]
set -eu

BASELINE="${1:-BENCH_baseline.json}"
CURRENT="${2:-BENCH_pr.json}"
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-35}"

malformed() {
    echo "error: malformed bench summary: $1" >&2
    exit 2
}

for f in "$BASELINE" "$CURRENT"; do
    [ -f "$f" ] || malformed "$f not found"
done

# A well-formed bench-smoke summary carries the schema marker, a
# sequential qps, a non-empty "parallel" section and the dedup ratio; a
# summary missing any of them (e.g. a truncated artifact) must fail the
# gate loudly instead of being skipped.
check_summary() {
    grep -q '"schema": *"concealer-bench-smoke/v1"' "$1" \
        || malformed "$1 lacks the concealer-bench-smoke/v1 schema marker"
    grep -q '"parallel": *\[' "$1" \
        || malformed "$1 lacks the \"parallel\" section"
    grep -q '"threads":' "$1" \
        || malformed "$1 has an empty \"parallel\" section"
    grep -q '"dedup_ratio":' "$1" \
        || malformed "$1 lacks the \"dedup_ratio\" field"
}
check_summary "$BASELINE"
check_summary "$CURRENT"

# The summaries are single-purpose JSON written by bench_smoke; pull the
# sequential qps with sed so the gate needs no jq on the runner. The
# number pattern accepts exponent notation (2.1e3) so a formatter change
# toward scientific notation cannot silently blank the extraction.
NUM='[0-9][0-9.]*\([eE][+-]\{0,1\}[0-9]\{1,\}\)\{0,1\}'
extract_seq_qps() {
    sed -n "s/.*\"sequential\": *{ *\"qps\": *\($NUM\).*/\1/p" "$1" | head -n 1
}
extract_dedup() {
    sed -n "s/.*\"dedup_ratio\": *\($NUM\).*/\1/p" "$1" | head -n 1
}

base_qps=$(extract_seq_qps "$BASELINE")
cur_qps=$(extract_seq_qps "$CURRENT")
[ -n "$base_qps" ] || malformed "$BASELINE has no parseable sequential qps"
[ -n "$cur_qps" ] || malformed "$CURRENT has no parseable sequential qps"

# Belt and braces: both values must parse as strictly positive numbers
# (awk handles exponent notation natively).
for v in "$base_qps" "$cur_qps"; do
    awk -v v="$v" 'BEGIN { exit (v + 0 > 0) ? 0 : 1 }' \
        || malformed "qps value '$v' is not a positive number"
done

echo "sequential qps: baseline=$base_qps current=$cur_qps (allowed regression: ${MAX_REGRESSION_PCT}%)"
echo "batch dedup ratio: baseline=$(extract_dedup "$BASELINE") current=$(extract_dedup "$CURRENT")"

awk -v base="$base_qps" -v cur="$cur_qps" -v pct="$MAX_REGRESSION_PCT" 'BEGIN {
    floor = base * (1 - pct / 100);
    if (cur < floor) {
        printf "FAIL: %.2f q/s is below the regression floor %.2f q/s (baseline %.2f, -%s%%)\n", cur, floor, base, pct;
        exit 1;
    }
    printf "ok: %.2f q/s clears the regression floor %.2f q/s\n", cur, floor;
}'
