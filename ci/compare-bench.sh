#!/usr/bin/env sh
# Gate: the perf-smoke run must not regress sequential batch throughput by
# more than MAX_REGRESSION_PCT (default 35%) against the committed
# baseline, BENCH_baseline.json. This is the tracked bench trajectory's
# floor — BENCH_pr.json artifacts from the bench-smoke job are the points.
#
# The baseline is hardware-specific (queries/sec on whatever machine wrote
# it). When CI hardware changes, refresh it by copying a representative
# BENCH_pr.json artifact over BENCH_baseline.json in a dedicated commit;
# the wide 35% band absorbs ordinary runner-to-runner noise, not
# generational hardware shifts.
#
# Usage: compare-bench.sh [baseline.json] [current.json]
set -eu

BASELINE="${1:-BENCH_baseline.json}"
CURRENT="${2:-BENCH_pr.json}"
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-35}"

for f in "$BASELINE" "$CURRENT"; do
    if [ ! -f "$f" ]; then
        echo "error: $f not found" >&2
        exit 2
    fi
done

# The summaries are single-purpose JSON written by bench_smoke; pull the
# sequential qps with sed so the gate needs no jq on the runner.
extract_seq_qps() {
    sed -n 's/.*"sequential": *{ *"qps": *\([0-9][0-9.]*\).*/\1/p' "$1" | head -n 1
}
extract_dedup() {
    sed -n 's/.*"dedup_ratio": *\([0-9][0-9.]*\).*/\1/p' "$1" | head -n 1
}

base_qps=$(extract_seq_qps "$BASELINE")
cur_qps=$(extract_seq_qps "$CURRENT")
if [ -z "$base_qps" ] || [ -z "$cur_qps" ]; then
    echo "error: could not extract sequential qps (baseline='$base_qps', current='$cur_qps')" >&2
    exit 2
fi

echo "sequential qps: baseline=$base_qps current=$cur_qps (allowed regression: ${MAX_REGRESSION_PCT}%)"
echo "batch dedup ratio: baseline=$(extract_dedup "$BASELINE") current=$(extract_dedup "$CURRENT")"

awk -v base="$base_qps" -v cur="$cur_qps" -v pct="$MAX_REGRESSION_PCT" 'BEGIN {
    floor = base * (1 - pct / 100);
    if (cur < floor) {
        printf "FAIL: %.2f q/s is below the regression floor %.2f q/s (baseline %.2f, -%s%%)\n", cur, floor, base, pct;
        exit 1;
    }
    printf "ok: %.2f q/s clears the regression floor %.2f q/s\n", cur, floor;
}'
