#!/usr/bin/env sh
# Gate: the perf-smoke run must not regress against the committed
# baseline, BENCH_baseline.json. Two checks:
#
#   1. Sequential batch throughput may not drop by more than
#      MAX_REGRESSION_PCT (default 35%) below the baseline. This is the
#      tracked bench trajectory's floor — BENCH_pr.json artifacts from the
#      bench-smoke job are the points.
#   2. Parallel execution must pay. On a multi-threaded runner (the
#      current summary's "threads_available" >= 2) the 2-thread batch must
#      reach MIN_PARALLEL_SPEEDUP (default 1.0) over sequential — threads
#      that lose throughput are a regression, full stop. On a single-core
#      runner real speedups are physically impossible and the measured
#      ratio is mostly scheduler noise (observed spread ~0.6-1.1 on an
#      idle box), so the gate is a loose relative floor instead: the
#      2-thread speedup may not collapse below PARALLEL_RELATIVE_FLOOR
#      (default 0.5) of the baseline's (the baseline factor is clamped at
#      1.0 — a single-core "speedup" above 1.0 is itself noise and must
#      not tighten the floor). That catches an order-of-magnitude
#      regression (per-batch thread overhead reintroduced) without
#      flaking on noise; the absolute gate on multi-core runners is the
#      real signal.
#
# The baseline is hardware-specific (queries/sec on whatever machine wrote
# it). When CI hardware changes, refresh it by copying a representative
# BENCH_pr.json artifact over BENCH_baseline.json in a dedicated commit;
# the wide 35% band absorbs ordinary runner-to-runner noise, not
# generational hardware shifts.
#
# A second mode validates the server-soak artifact instead:
#
#   compare-bench.sh --server-summary BENCH_server.json
#
# checks the concealer-server-load/v2 schema (serving mode, connection
# counts, p50/p95/p99 latency, divergence count) and, when
# MIN_CONNECTIONS is set, gates the server-reported concurrent-connection
# high-water mark against that floor — this is how the event-mode soak
# leg proves its 10k-idle-connection claim.
#
# Exit codes: 0 ok, 1 regression beyond a floor, 2 malformed input
# (missing file, missing sections, non-numeric values). Exercised by
# ci/selftest-compare-bench.sh in the lint-ci job.
#
# Usage: compare-bench.sh [baseline.json] [current.json]
#        compare-bench.sh --server-summary [BENCH_server.json]
set -eu

MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-35}"
MIN_PARALLEL_SPEEDUP="${MIN_PARALLEL_SPEEDUP:-1.0}"
PARALLEL_RELATIVE_FLOOR="${PARALLEL_RELATIVE_FLOOR:-0.5}"
MIN_CONNECTIONS="${MIN_CONNECTIONS:-}"

malformed() {
    echo "error: malformed bench summary: $1" >&2
    exit 2
}

# The number pattern accepts exponent notation (2.1e3) so a formatter
# change toward scientific notation cannot silently blank the extraction.
NUM='[0-9][0-9.]*\([eE][+-]\{0,1\}[0-9]\{1,\}\)\{0,1\}'

# --- server-load summary validation -------------------------------------
check_server_summary() {
    f="$1"
    [ -f "$f" ] || malformed "$f not found"
    grep -q '"schema": *"concealer-server-load/v2"' "$f" \
        || malformed "$f lacks the concealer-server-load/v2 schema marker"
    # "unknown" means the load generator's ServeStats probe failed — the
    # artifact cannot substantiate any concurrency or mode claim.
    grep -q '"mode": *"\(threaded\|event\)"' "$f" \
        || malformed "$f has no serving mode (expected \"threaded\" or \"event\")"
    for key in connections max_concurrent_connections divergences; do
        grep -q "\"$key\": *[0-9][0-9]*" "$f" \
            || malformed "$f lacks a numeric \"$key\" field"
    done
    for pct in p50 p95 p99; do
        grep -q "\"$pct\": *$NUM" "$f" \
            || malformed "$f lacks a numeric latency \"$pct\" field"
    done

    # Routed runs carry a per-member "router_shards" array; when present,
    # every entry must name its replica-set position ("member") and carry
    # the writer flag — that is how the replicated soak leg proves its
    # counters are per-member, not per-set.
    if grep -q '"router_shards": *\[{' "$f"; then
        for key in shard_index member requests_forwarded errors reconnects; do
            grep -q "\"$key\": *[0-9][0-9]*" "$f" \
                || malformed "$f router_shards entries lack a numeric \"$key\" field"
        done
        grep -q '"writer": *\(true\|false\)' "$f" \
            || malformed "$f router_shards entries lack a boolean \"writer\" field"
    fi

    mode=$(sed -n 's/.*"mode": *"\([a-z]*\)".*/\1/p' "$f" | head -n 1)
    held=$(sed -n "s/.*\"connections\": *\([0-9][0-9]*\).*/\1/p" "$f" | head -n 1)
    peak=$(sed -n "s/.*\"max_concurrent_connections\": *\([0-9][0-9]*\).*/\1/p" "$f" | head -n 1)
    div=$(sed -n "s/.*\"divergences\": *\([0-9][0-9]*\).*/\1/p" "$f" | head -n 1)
    p50=$(sed -n "s/.*\"p50\": *\($NUM\).*/\1/p" "$f" | head -n 1)
    p95=$(sed -n "s/.*\"p95\": *\($NUM\).*/\1/p" "$f" | head -n 1)
    p99=$(sed -n "s/.*\"p99\": *\($NUM\).*/\1/p" "$f" | head -n 1)
    echo "server summary [$mode]: held=$held peak=$peak p50=${p50}ms p95=${p95}ms p99=${p99}ms divergences=$div"

    if [ "$div" -ne 0 ]; then
        echo "FAIL: $div answer divergence(s) against the oracle" >&2
        exit 1
    fi
    if [ -n "$MIN_CONNECTIONS" ]; then
        if [ "$peak" -lt "$MIN_CONNECTIONS" ]; then
            echo "FAIL: server peak $peak concurrent connections is below the MIN_CONNECTIONS=$MIN_CONNECTIONS floor" >&2
            exit 1
        fi
        echo "ok: server peak $peak clears the MIN_CONNECTIONS=$MIN_CONNECTIONS floor"
    fi
    exit 0
}

if [ "${1:-}" = "--server-summary" ]; then
    check_server_summary "${2:-BENCH_server.json}"
fi

BASELINE="${1:-BENCH_baseline.json}"
CURRENT="${2:-BENCH_pr.json}"

for f in "$BASELINE" "$CURRENT"; do
    [ -f "$f" ] || malformed "$f not found"
done

# A well-formed bench-smoke summary carries the v2 schema marker (v2 added
# median/min/max timing, the phase breakdown and the bin-cache counters),
# a sequential qps, a non-empty "parallel" section, the phase breakdown
# and the dedup ratio; a summary missing any of them (e.g. a truncated
# artifact) must fail the gate loudly instead of being skipped.
check_summary() {
    grep -q '"schema": *"concealer-bench-smoke/v2"' "$1" \
        || malformed "$1 lacks the concealer-bench-smoke/v2 schema marker"
    grep -q '"parallel": *\[' "$1" \
        || malformed "$1 lacks the \"parallel\" section"
    grep -q '"threads":' "$1" \
        || malformed "$1 has an empty \"parallel\" section"
    grep -q '"phases": *{' "$1" \
        || malformed "$1 lacks the \"phases\" breakdown"
    grep -q '"dedup_ratio":' "$1" \
        || malformed "$1 lacks the \"dedup_ratio\" field"
}
check_summary "$BASELINE"
check_summary "$CURRENT"

# The summaries are single-purpose JSON written by bench_smoke; pull the
# gated numbers with sed so the gate needs no jq on the runner.
extract_seq_qps() {
    sed -n "s/.*\"sequential\": *{ *\"qps\": *\($NUM\).*/\1/p" "$1" | head -n 1
}
extract_dedup() {
    sed -n "s/.*\"dedup_ratio\": *\($NUM\).*/\1/p" "$1" | head -n 1
}
# The speedup of the 2-thread parallel row (each row is one line).
extract_speedup2() {
    sed -n "s/.*\"threads\": *2,.*\"speedup\": *\($NUM\).*/\1/p" "$1" | head -n 1
}
extract_threads_available() {
    sed -n "s/.*\"threads_available\": *\([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

base_qps=$(extract_seq_qps "$BASELINE")
cur_qps=$(extract_seq_qps "$CURRENT")
[ -n "$base_qps" ] || malformed "$BASELINE has no parseable sequential qps"
[ -n "$cur_qps" ] || malformed "$CURRENT has no parseable sequential qps"

base_speedup2=$(extract_speedup2 "$BASELINE")
cur_speedup2=$(extract_speedup2 "$CURRENT")
[ -n "$base_speedup2" ] || malformed "$BASELINE has no parseable 2-thread speedup"
[ -n "$cur_speedup2" ] || malformed "$CURRENT has no parseable 2-thread speedup"

cur_threads=$(extract_threads_available "$CURRENT")
[ -n "$cur_threads" ] || malformed "$CURRENT has no parseable threads_available"

# Belt and braces: the gated values must parse as strictly positive
# numbers (awk handles exponent notation natively).
for v in "$base_qps" "$cur_qps" "$base_speedup2" "$cur_speedup2" "$cur_threads"; do
    awk -v v="$v" 'BEGIN { exit (v + 0 > 0) ? 0 : 1 }' \
        || malformed "gated value '$v' is not a positive number"
done

echo "sequential qps: baseline=$base_qps current=$cur_qps (allowed regression: ${MAX_REGRESSION_PCT}%)"
echo "batch dedup ratio: baseline=$(extract_dedup "$BASELINE") current=$(extract_dedup "$CURRENT")"
echo "2-thread speedup: baseline=$base_speedup2 current=$cur_speedup2 (runner threads: $cur_threads)"

awk -v base="$base_qps" -v cur="$cur_qps" -v pct="$MAX_REGRESSION_PCT" 'BEGIN {
    floor = base * (1 - pct / 100);
    if (cur < floor) {
        printf "FAIL: %.2f q/s is below the regression floor %.2f q/s (baseline %.2f, -%s%%)\n", cur, floor, base, pct;
        exit 1;
    }
    printf "ok: %.2f q/s clears the regression floor %.2f q/s\n", cur, floor;
}'

awk -v cur="$cur_speedup2" -v base="$base_speedup2" -v threads="$cur_threads" \
    -v min="$MIN_PARALLEL_SPEEDUP" -v rel="$PARALLEL_RELATIVE_FLOOR" 'BEGIN {
    if (threads + 0 >= 2) {
        if (cur + 0 < min + 0) {
            printf "FAIL: 2-thread speedup %.3f is below %.3f on a %d-thread runner — parallelism must pay\n", cur, min, threads;
            exit 1;
        }
        printf "ok: 2-thread speedup %.3f meets the %.3f floor (%d-thread runner)\n", cur, min, threads;
    } else {
        eff = (base + 0 > 1) ? 1 : base + 0;
        floor = eff * rel;
        if (cur + 0 < floor) {
            printf "FAIL: 2-thread speedup %.3f collapsed below %.3f (%.2f x baseline %.3f, clamped at 1.0) on a single-core runner\n", cur, floor, rel, base;
            exit 1;
        }
        printf "ok: 2-thread speedup %.3f clears the single-core relative floor %.3f\n", cur, floor;
    }
}'
