#!/usr/bin/env sh
# Offline documentation checker, run by the lint-ci job.
#
# Three gates over the repository's markdown:
#
#  1. Link check — every relative link target in every tracked *.md file
#     must exist, and every `#fragment` (same-file or cross-file into a
#     .md) must match a heading's GitHub-style anchor slug. External
#     (http/https/mailto) links are skipped: CI runs offline, and dead
#     external links are not this gate's job. Fenced code blocks are
#     ignored for both headings and links.
#
#  2. Protocol drift guard — the error-code registry table in PROTOCOL.md
#     must list exactly the `ErrorCode` variants from
#     crates/concealer-server/src/error.rs (the `name()` match arms, which
#     the compiler keeps exhaustive and in declaration order): same names,
#     same order, tags numbered 0..N-1 — so the spec cannot silently fall
#     behind the enum that defines the wire format.
#
#  3. Attestation drift guard — the constants the attestation docs quote
#     must match the source of truth: every PROTOCOL.md / OPERATIONS.md
#     mention of `DEFAULT_MAX_QUOTE_AGE_SECS` must carry the value from
#     crates/concealer-client/src/lib.rs, and PROTOCOL.md must quote the
#     measurement domain string from
#     crates/concealer-enclave/src/attest.rs verbatim.
#
# Exit codes: 0 all checks pass, 1 broken link / anchor / drift,
# 2 usage error (missing directory or no markdown files).
#
# Usage: check-docs.sh [DIR]   (default: the repository root)
set -eu

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
if [ ! -d "$root" ]; then
    echo "check-docs: no such directory: $root" >&2
    exit 2
fi

# Tracked markdown when DIR is a git checkout; every .md otherwise (the
# self-test runs against synthetic non-git trees).
if git -C "$root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    files=$(git -C "$root" ls-files '*.md')
else
    files=$(cd "$root" && find . -name '*.md' | sed 's|^\./||' | sort)
fi
if [ -z "$files" ]; then
    echo "check-docs: no markdown files under $root" >&2
    exit 2
fi

failures=0
fail() {
    echo "check-docs: $1" >&2
    failures=$((failures + 1))
}

# GitHub-style anchor slugs for every heading in a file: lowercase, drop
# everything but alphanumerics/spaces/hyphens/underscores, spaces to
# hyphens. Headings inside ``` fences are not headings.
slugs_of() {
    awk '
        /^(```|~~~)/ { fence = !fence; next }
        fence { next }
        /^#+ / {
            s = $0
            sub(/^#+ +/, "", s)
            s = tolower(s)
            gsub(/`/, "", s)
            gsub(/[^a-z0-9 _-]/, "", s)
            gsub(/ /, "-", s)
            print s
        }
    ' "$root/$1"
}

# Inline link targets `](...)` outside code fences, one per line.
links_of() {
    awk '
        /^(```|~~~)/ { fence = !fence; next }
        fence { next }
        {
            line = $0
            while (match(line, /\]\([^)]+\)/)) {
                print substr(line, RSTART + 2, RLENGTH - 3)
                line = substr(line, RSTART + RLENGTH)
            }
        }
    ' "$root/$1"
}

for file in $files; do
    dir=$(dirname "$file")
    for target in $(links_of "$file"); do
        case $target in
        http://* | https://* | mailto:*) continue ;;
        esac
        frag=""
        path=$target
        case $target in
        *#*)
            frag=${target#*#}
            path=${target%%#*}
            ;;
        esac
        if [ -n "$path" ]; then
            anchored="$dir/$path"
            if [ ! -e "$root/$anchored" ]; then
                fail "$file: broken link: $target"
                continue
            fi
        else
            anchored="$file"
        fi
        # Fragment checks only make sense into markdown (same file, or a
        # .md target); other targets with fragments are passed through.
        if [ -n "$frag" ]; then
            case $anchored in
            *.md)
                if ! slugs_of "$anchored" | grep -qx "$frag"; then
                    fail "$file: broken anchor: $target"
                fi
                ;;
            esac
        fi
    done
done

# --- drift guard -----------------------------------------------------------

spec="$root/PROTOCOL.md"
enum="$root/crates/concealer-server/src/error.rs"
if [ -f "$spec" ] && [ -f "$enum" ]; then
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT INT TERM
    # Registry rows: "| <tag> | `<name>` | ..." inside the error-code
    # registry section only (the message tables are numbered too).
    awk '
        /^## Error-code registry/ { insec = 1; next }
        insec && /^## / { insec = 0 }
        insec && /^\| *[0-9]+ *\| *`[a-z_]+`/ {
            split($0, parts, "|")
            tag = parts[2]; name = parts[3]
            gsub(/[ `]/, "", tag); gsub(/[ `]/, "", name)
            print tag, name
        }
    ' "$spec" >"$tmp/table"
    # The enum, via its name() arms (exhaustive, declaration order).
    sed -n 's/^ *ErrorCode::[A-Za-z]* => "\([a-z_]*\)".*/\1/p' "$enum" |
        awk '{ print NR - 1, $1 }' >"$tmp/code"
    if [ ! -s "$tmp/code" ]; then
        fail "drift guard: no ErrorCode::name() arms found in $enum"
    elif ! diff -u "$tmp/code" "$tmp/table" >"$tmp/diff" 2>&1; then
        fail "PROTOCOL.md error-code registry drifted from ErrorCode (expected vs table):"
        cat "$tmp/diff" >&2
    fi
fi

# --- attestation drift guard -----------------------------------------------

client="$root/crates/concealer-client/src/lib.rs"
attest_src="$root/crates/concealer-enclave/src/attest.rs"
if [ -f "$spec" ] && [ -f "$client" ]; then
    src_age=$(sed -n 's/^pub const DEFAULT_MAX_QUOTE_AGE_SECS: u64 = \([0-9][0-9]*\);.*/\1/p' "$client")
    if [ -z "$src_age" ]; then
        fail "drift guard: DEFAULT_MAX_QUOTE_AGE_SECS not found in $client"
    else
        for doc in PROTOCOL.md OPERATIONS.md; do
            [ -f "$root/$doc" ] || continue
            if ! grep -q 'DEFAULT_MAX_QUOTE_AGE_SECS' "$root/$doc"; then
                fail "$doc: never states the default quote-age bound (DEFAULT_MAX_QUOTE_AGE_SECS)"
            elif grep 'DEFAULT_MAX_QUOTE_AGE_SECS' "$root/$doc" |
                grep -Eqv "DEFAULT_MAX_QUOTE_AGE_SECS[^0-9]*${src_age}([^0-9]|\$)"; then
                fail "$doc: quote-age bound drifted from DEFAULT_MAX_QUOTE_AGE_SECS = $src_age"
            fi
        done
    fi
fi
if [ -f "$spec" ] && [ -f "$attest_src" ]; then
    domain=$(sed -n 's/^pub const MEASUREMENT_DOMAIN: &str = "\([^"]*\)";.*/\1/p' "$attest_src")
    if [ -z "$domain" ]; then
        fail "drift guard: MEASUREMENT_DOMAIN not found in $attest_src"
    elif ! grep -qF "$domain" "$spec"; then
        fail "PROTOCOL.md: never quotes the measurement domain string ($domain)"
    fi
fi

if [ "$failures" -gt 0 ]; then
    echo "check-docs: $failures failure(s)" >&2
    exit 1
fi
echo "check-docs ok: $(echo "$files" | wc -l | tr -d ' ') markdown file(s) checked"
exit 0
