#!/usr/bin/env sh
# Guard: no crates.io (or any remote) dependency may sneak past the shims/
# policy. Every external crate this workspace uses is served by a local
# path shim (see shims/README.md); a registry dependency would break the
# offline build and silently widen the supply chain.
#
# Cargo.lock records a `source = ...` line (and a `checksum = ...`) only
# for non-path dependencies, so an empty scan proves the whole graph is
# path-resolved. This replaces the previous implicit reliance on
# CARGO_NET_OFFLINE alone, which only failed at download time.
set -eu

LOCKFILE="${1:-Cargo.lock}"

if [ ! -f "$LOCKFILE" ]; then
    echo "error: $LOCKFILE not found (run from the workspace root)" >&2
    exit 2
fi

violations=$(grep -nE '^(source|checksum) *=' "$LOCKFILE" || true)
if [ -n "$violations" ]; then
    echo "error: non-path dependencies found in $LOCKFILE:" >&2
    echo "$violations" >&2
    echo "All dependencies must resolve to local paths (shims/ policy)." >&2
    exit 1
fi

count=$(grep -c '^name = ' "$LOCKFILE")
echo "ok: all $count packages in $LOCKFILE are path-resolved (no registry sources)"
