#!/usr/bin/env sh
# Guard: no crates.io (or any remote) dependency may sneak past the shims/
# policy. Every external crate this workspace uses is served by a local
# path shim (see shims/README.md); a registry dependency would break the
# offline build and silently widen the supply chain.
#
# Cargo.lock records a `source = ...` line (and a `checksum = ...`) only
# for non-path dependencies, so an empty scan proves the whole graph is
# path-resolved. This replaces the previous implicit reliance on
# CARGO_NET_OFFLINE alone, which only failed at download time.
#
# The lockfile scan alone has a gap: a registry dependency added to a crate
# manifest is invisible until someone regenerates Cargo.lock, so the guard
# additionally scans every workspace manifest's dependency sections for a
# `version = "..."` requirement with no `path` — the shape a crates.io
# dependency takes before lockfile regeneration.
set -eu

LOCKFILE="${1:-Cargo.lock}"

if [ ! -f "$LOCKFILE" ]; then
    echo "error: $LOCKFILE not found (run from the workspace root)" >&2
    exit 2
fi

violations=$(grep -nE '^(source|checksum) *=' "$LOCKFILE" || true)
if [ -n "$violations" ]; then
    echo "error: non-path dependencies found in $LOCKFILE:" >&2
    echo "$violations" >&2
    echo "All dependencies must resolve to local paths (shims/ policy)." >&2
    exit 1
fi

count=$(grep -c '^name = ' "$LOCKFILE")
echo "ok: all $count packages in $LOCKFILE are path-resolved (no registry sources)"

# --- Manifest scan: catch a registry dep before the lockfile records it ---
manifest_violations=""
for manifest in Cargo.toml crates/*/Cargo.toml shims/*/Cargo.toml; do
    [ -f "$manifest" ] || continue
    hits=$(awk '
        # A `[dependencies.foo]`-style table spreads version/path across
        # lines, so it is judged as a whole at the next section header
        # (or EOF), not line by line.
        function flush_table() {
            if (table_header != "" && table_version && !table_path) {
                printf "%s:%d: %s (version with no path)\n",
                    FILENAME, table_fnr, table_header;
            }
            table_header = ""; table_version = 0; table_path = 0;
        }
        /^\[/ {
            flush_table();
            in_deps = 0;
            if ($0 ~ /dependencies\][ \t]*$/) {
                in_deps = 1;
            } else if ($0 ~ /dependencies\.["'"'"']?[A-Za-z0-9_-]+["'"'"']?\][ \t]*$/) {
                table_header = $0; table_fnr = FNR;
            }
            next
        }
        table_header != "" {
            line = $0; sub(/#.*/, "", line);
            if (line ~ /^version[ \t]*=/) table_version = 1;
            if (line ~ /^path[ \t]*=/) table_path = 1;
            next
        }
        in_deps {
            line = $0; sub(/#.*/, "", line);
            # `foo = "1.2"`: the registry shorthand.
            if (line ~ /^[A-Za-z0-9_-]+[ \t]*=[ \t]*"[^"]*"[ \t]*$/) {
                printf "%s:%d: %s\n", FILENAME, FNR, $0;
            }
            # `foo = { version = "1.2", ... }` with no path = registry dep.
            else if (line ~ /version[ \t]*=/ && line !~ /path[ \t]*=/) {
                printf "%s:%d: %s\n", FILENAME, FNR, $0;
            }
        }
        END { flush_table() }
    ' "$manifest")
    if [ -n "$hits" ]; then
        manifest_violations="$manifest_violations$hits
"
    fi
done

if [ -n "$manifest_violations" ]; then
    echo "error: version-only (registry) dependency declarations found:" >&2
    printf '%s' "$manifest_violations" >&2
    echo "Every dependency must carry a path (shims/ policy); a bare" >&2
    echo "version requirement resolves to crates.io once the lockfile is" >&2
    echo "regenerated." >&2
    exit 1
fi

manifest_count=0
for manifest in Cargo.toml crates/*/Cargo.toml shims/*/Cargo.toml; do
    [ -f "$manifest" ] && manifest_count=$((manifest_count + 1))
done
echo "ok: no version-only dependency declarations across $manifest_count manifests"
