#!/usr/bin/env sh
# Self-test for ci/check-docs.sh: pins the doc gate's contract — exit 0 on
# a clean tree (valid relative links, valid same-file and cross-file
# anchors, registry table matching the enum), exit 1 on a broken link, a
# broken anchor, or an error-code registry that drifted from the
# `ErrorCode` enum (renamed, reordered, or missing rows), and exit 2 on a
# missing directory or a tree with no markdown. Run by the lint-ci job and
# runnable locally: sh ci/selftest-check-docs.sh
set -eu

script_dir=$(dirname "$0")
check="$script_dir/check-docs.sh"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

failures=0

# expect <name> <expected-rc> <dir>
expect() {
    rc=0
    sh "$check" "$3" >"$tmp/out" 2>&1 || rc=$?
    if [ "$rc" -ne "$2" ]; then
        echo "selftest FAIL: $1: expected exit $2, got $rc" >&2
        sed 's/^/  | /' "$tmp/out" >&2
        failures=$((failures + 1))
    else
        echo "selftest ok: $1 (exit $rc)"
    fi
}

# A minimal tree exercising every link shape the checker understands.
# write_tree <dir> <registry-name-for-tag-1>
write_tree() {
    mkdir -p "$1/docs" "$1/crates/concealer-server/src"
    cat >"$1/README.md" <<'EOF'
# Top

See [the guide](docs/guide.md), [its anchor](docs/guide.md#deep-dive),
[below](#local-section), and [the web](https://example.invalid/ok).

```sh
# not a heading, and ](not-a-link) stays ignored
```

## Local section

Done.
EOF
    cat >"$1/docs/guide.md" <<'EOF'
# Guide

Back to [the top](../README.md#top).

## Deep dive

Text.
EOF
    cat >"$1/PROTOCOL.md" <<EOF
# Spec

## Error-code registry

| tag | name | meaning |
|---|---|---|
| 0 | \`alpha\` | first |
| 1 | \`$2\` | second |
EOF
    cat >"$1/crates/concealer-server/src/error.rs" <<'EOF'
impl ErrorCode {
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Alpha => "alpha",
            ErrorCode::Beta => "beta",
        }
    }
}
EOF
}

# Exit 0: everything resolves, registry matches the enum.
write_tree "$tmp/clean" beta
expect "clean tree passes" 0 "$tmp/clean"

# Exit 1: a relative link to a file that does not exist.
write_tree "$tmp/badlink" beta
echo '[gone](missing/file.md)' >>"$tmp/badlink/README.md"
expect "broken link fails" 1 "$tmp/badlink"

# Exit 1: the file exists but the fragment names no heading.
write_tree "$tmp/badanchor" beta
echo '[gone](docs/guide.md#no-such-heading)' >>"$tmp/badanchor/README.md"
expect "broken cross-file anchor fails" 1 "$tmp/badanchor"

write_tree "$tmp/badlocal" beta
echo '[gone](#no-such-section)' >>"$tmp/badlocal/README.md"
expect "broken same-file anchor fails" 1 "$tmp/badlocal"

# Exit 1: the registry table says `gamma` where the enum says `beta`.
write_tree "$tmp/drift" gamma
expect "registry drift fails" 1 "$tmp/drift"

# Exit 1: the table dropped a row the enum still has.
write_tree "$tmp/short" beta
grep -v 'beta' "$tmp/short/PROTOCOL.md" >"$tmp/short/PROTOCOL.tmp"
mv "$tmp/short/PROTOCOL.tmp" "$tmp/short/PROTOCOL.md"
expect "missing registry row fails" 1 "$tmp/short"

# Exit 2: usage errors.
expect "missing directory is a usage error" 2 "$tmp/does-not-exist"
mkdir -p "$tmp/empty"
expect "tree without markdown is a usage error" 2 "$tmp/empty"

if [ "$failures" -gt 0 ]; then
    echo "selftest: $failures failure(s)" >&2
    exit 1
fi
echo "selftest: all check-docs contract cases pass"
