#!/usr/bin/env sh
# Serving-layer soak: launch the release concealer-server binary on an
# ephemeral loopback port, drive it with concealer-load (N concurrent
# clients of mixed point/range/batch workloads, every answer checked
# bit-for-bit against the in-process oracle, follow-up epochs ingested
# over the wire while queries are live), then require a graceful wire
# shutdown. The storage backend follows CONCEALER_TEST_BACKEND (memory /
# disk) in both processes, and SOAK_MODE selects the serving core
# (threaded / event) — the CI server-soak job runs the full matrix.
#
# Event-mode legs additionally open SOAK_IDLE_CONNECTIONS mostly-idle
# connections (default 10000 in event mode, 0 in threaded) and gate the
# server-reported concurrency high-water mark via
# `compare-bench.sh --server-summary` with MIN_CONNECTIONS. If the
# runner's fd limit cannot carry the default target, the script lowers it
# to fit (with a loud note) — the floor gates what was actually attempted,
# so a constrained runner still proves proportional concurrency instead
# of flaking. Set SOAK_IDLE_CONNECTIONS explicitly to pin the target.
#
# Exit codes: 0 soak clean, 1 divergence / client error / non-graceful
# shutdown / concurrency floor missed, 2 binaries missing.
#
# Usage: server-soak.sh [BENCH_server.json]
set -eu

OUT="${1:-BENCH_server.json}"
SERVER_BIN="${SERVER_BIN:-target/release/concealer-server}"
LOAD_BIN="${LOAD_BIN:-target/release/concealer-load}"
HOURS="${SOAK_HOURS:-2}"
SEED="${SOAK_SEED:-42}"
CLIENTS="${SOAK_CLIENTS:-8}"
REQUESTS="${SOAK_REQUESTS:-36}"
MODE="${SOAK_MODE:-threaded}"
script_dir=$(dirname "$0")

case "$MODE" in
    threaded|event) ;;
    *) echo "error: SOAK_MODE must be 'threaded' or 'event', got '$MODE'" >&2; exit 2 ;;
esac

# Idle-connection target: event mode defaults to the 10k claim; threaded
# mode (a thread per connection) defaults to none.
if [ "$MODE" = "event" ]; then
    IDLE="${SOAK_IDLE_CONNECTIONS:-10000}"
else
    IDLE="${SOAK_IDLE_CONNECTIONS:-0}"
fi

# Each held connection costs one fd in the load generator and one in the
# server; leave generous headroom for binaries, logs, and the query
# clients. Lower the target rather than flake when the limit is tight.
if [ "$IDLE" -gt 0 ]; then
    fd_limit=$(ulimit -n 2>/dev/null || echo 1024)
    case "$fd_limit" in
        unlimited) ;;
        *)
            max_idle=$((fd_limit - 256))
            if [ "$max_idle" -lt 0 ]; then max_idle=0; fi
            if [ "$IDLE" -gt "$max_idle" ]; then
                echo "soak: fd limit $fd_limit cannot hold $IDLE idle connections; lowering target to $max_idle" >&2
                IDLE="$max_idle"
            fi
            ;;
    esac
fi

for bin in "$SERVER_BIN" "$LOAD_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (run: cargo build --release -p concealer-server -p concealer-load)" >&2
        exit 2
    fi
done

server_out=$(mktemp)
server_err=$(mktemp)
server_pid=""

cleanup() {
    if [ -n "$server_pid" ]; then
        kill "$server_pid" 2>/dev/null || true
    fi
    rm -f "$server_out" "$server_err"
}
trap cleanup EXIT INT TERM

# The connection cap must clear the idle pool plus the query clients plus
# probe headroom; the threaded default (16) only applies with no pool.
max_connections=$((IDLE + CLIENTS + 64))
if [ "$IDLE" -eq 0 ]; then
    max_connections=16
fi

"$SERVER_BIN" --mode "$MODE" --hours "$HOURS" --seed "$SEED" \
    --max-connections "$max_connections" >"$server_out" 2>"$server_err" &
server_pid=$!

# Wait (up to ~60 s) for the READY line; the server builds and ingests the
# demo deployment first.
addr=""
tries=0
while [ "$tries" -lt 300 ]; do
    addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$server_out")
    if [ -n "$addr" ]; then
        break
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "error: server exited before READY" >&2
        cat "$server_err" >&2
        exit 1
    fi
    tries=$((tries + 1))
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "error: server did not become READY in time" >&2
    cat "$server_err" >&2
    exit 1
fi
backend=$(sed -n 's/^READY.*backend=\([^ ]*\).*/\1/p' "$server_out")
ready_mode=$(sed -n 's/^READY.*mode=\([^ ]*\).*/\1/p' "$server_out")
if [ "$ready_mode" != "$MODE" ]; then
    echo "error: asked for mode '$MODE' but the server reported '$ready_mode'" >&2
    exit 1
fi
echo "soak: server ready on $addr (backend: ${backend:-unknown}, mode: $MODE, idle target: $IDLE)"

load_rc=0
"$LOAD_BIN" --addr "$addr" --clients "$CLIENTS" --requests "$REQUESTS" \
    --hours "$HOURS" --seed "$SEED" --idle-connections "$IDLE" \
    --ingest-epochs 2 --shutdown --out "$OUT" || load_rc=$?
if [ "$load_rc" -ne 0 ]; then
    echo "error: load generator failed (rc=$load_rc): answer divergence, client error, or shutdown refusal" >&2
    exit 1
fi

# The wire shutdown must drain the server to a clean exit 0 plus the
# SHUTDOWN marker — anything else is a non-graceful shutdown and fails.
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
if [ "$server_rc" -ne 0 ]; then
    echo "error: server exited non-gracefully (rc=$server_rc)" >&2
    cat "$server_err" >&2
    exit 1
fi
if ! grep -q '^SHUTDOWN graceful' "$server_out"; then
    echo "error: server exited without reporting a graceful shutdown" >&2
    cat "$server_out" >&2
    exit 1
fi

# Validate the v2 summary schema; with an idle pool, also gate the
# server's concurrency high-water mark against what was attempted.
if [ "$IDLE" -gt 0 ]; then
    MIN_CONNECTIONS="$IDLE" sh "$script_dir/compare-bench.sh" --server-summary "$OUT"
else
    sh "$script_dir/compare-bench.sh" --server-summary "$OUT"
fi

grep '^SHUTDOWN' "$server_out"
qps=$(sed -n 's/.*"qps": *\([0-9.eE+-]*\).*/\1/p' "$OUT" | head -n 1)
echo "soak ok: backend=${backend:-unknown} mode=$MODE qps=${qps:-?} summary=$OUT"
