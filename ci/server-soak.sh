#!/usr/bin/env sh
# Serving-layer soak: launch the release concealer-server binary on an
# ephemeral loopback port, drive it with concealer-load (N concurrent
# clients of mixed point/range/batch workloads, every answer checked
# bit-for-bit against the in-process oracle, follow-up epochs ingested
# over the wire while queries are live), then require a graceful wire
# shutdown. The storage backend follows CONCEALER_TEST_BACKEND (memory /
# disk) in both processes, and SOAK_MODE selects the serving core
# (threaded / event) — the CI server-soak job runs the full matrix.
#
# Event-mode legs additionally open SOAK_IDLE_CONNECTIONS mostly-idle
# connections (default 10000 in event mode, 0 in threaded) and gate the
# server-reported concurrency high-water mark via
# `compare-bench.sh --server-summary` with MIN_CONNECTIONS. If the
# runner's fd limit cannot carry the default target, the script lowers it
# to fit (with a loud note) — the floor gates what was actually attempted,
# so a constrained runner still proves proportional concurrency instead
# of flaking. Set SOAK_IDLE_CONNECTIONS explicitly to pin the target.
#
# With SOAK_ROUTER_SHARDS=N (N >= 2) the soak instead exercises the
# routed deployment: N epoch-sharded servers behind a concealer-router,
# the load generator pointed at the router with --router, and — the
# point of the leg — one shard SIGKILLed mid-load. The gate: the load
# generator exits 0 having seen only structured shard_unavailable
# errors (at least one, proving the kill landed mid-load) and zero
# divergences, and the router plus every surviving shard still drain to
# a graceful SHUTDOWN.
#
# With SOAK_REPLICAS=N (N >= 2, exclusive with SOAK_ROUTER_SHARDS) the
# soak exercises one replicated shard instead: a writer plus N-1 read
# replicas sharing one durable store root behind the router
# (comma-joined member list), and the WRITER SIGKILLed mid-load. The
# gate is stricter than the sharded leg's: the load generator exits 0
# with zero divergences (reads fail over to replicas serving
# bit-identical answers, so the kill may be fully masked — no
# shard_unavailable floor), the summary carries per-member router
# counters (member index + writer flag), and the router plus every
# replica still drain to a graceful SHUTDOWN.
#
# With SOAK_ROTATE=1 the single-node soak additionally rotates the
# master-key generation online mid-load: the server runs on a durable
# store (rotation needs a key vault to re-wrap) with
# --rotate-after-ms ${SOAK_ROTATE_AFTER_MS:-500}, and the gate requires
# both the load generator's usual zero-divergence exit 0 AND a
# `ROTATION generation=G epochs=E` line with G >= 1 and E >= 1 on the
# server's stdout — proving the vault re-wrapped under live query load
# with bit-identical answers throughout (OPERATIONS.md § "Master-key
# rotation"). The default request count is raised so release binaries
# don't finish before the rotation fires; SOAK_REQUESTS still overrides.
#
# Exit codes: 0 soak clean, 1 divergence / client error / non-graceful
# shutdown / concurrency floor missed, 2 binaries missing.
#
# Usage: server-soak.sh [BENCH_server.json]
set -eu

OUT="${1:-BENCH_server.json}"
SERVER_BIN="${SERVER_BIN:-target/release/concealer-server}"
LOAD_BIN="${LOAD_BIN:-target/release/concealer-load}"
ROUTER_BIN="${ROUTER_BIN:-target/release/concealer-router}"
HOURS="${SOAK_HOURS:-2}"
SEED="${SOAK_SEED:-42}"
CLIENTS="${SOAK_CLIENTS:-8}"
REQUESTS="${SOAK_REQUESTS:-36}"
MODE="${SOAK_MODE:-threaded}"
ROUTER_SHARDS="${SOAK_ROUTER_SHARDS:-0}"
REPLICAS="${SOAK_REPLICAS:-0}"
ROTATE="${SOAK_ROTATE:-0}"
script_dir=$(dirname "$0")

if [ "$ROUTER_SHARDS" -gt 0 ] && [ "$REPLICAS" -gt 0 ]; then
    echo "error: SOAK_ROUTER_SHARDS and SOAK_REPLICAS are mutually exclusive" >&2
    exit 2
fi
if [ "$ROTATE" = "1" ] && { [ "$ROUTER_SHARDS" -gt 0 ] || [ "$REPLICAS" -gt 0 ]; }; then
    echo "error: SOAK_ROTATE applies to the single-node soak only" >&2
    exit 2
fi
if [ "$ROTATE" = "1" ]; then
    # A rotation under load needs enough load to still be running when the
    # rotation fires; release binaries burn the threaded default in well
    # under the fire delay.
    REQUESTS="${SOAK_REQUESTS:-200}"
fi

case "$MODE" in
    threaded|event) ;;
    *) echo "error: SOAK_MODE must be 'threaded' or 'event', got '$MODE'" >&2; exit 2 ;;
esac

# Idle-connection target: event mode defaults to the 10k claim; threaded
# mode (a thread per connection) defaults to none.
if [ "$MODE" = "event" ]; then
    IDLE="${SOAK_IDLE_CONNECTIONS:-10000}"
else
    IDLE="${SOAK_IDLE_CONNECTIONS:-0}"
fi

# Each held connection costs one fd in the load generator and one in the
# server; leave generous headroom for binaries, logs, and the query
# clients. Lower the target rather than flake when the limit is tight.
if [ "$IDLE" -gt 0 ]; then
    fd_limit=$(ulimit -n 2>/dev/null || echo 1024)
    case "$fd_limit" in
        unlimited) ;;
        *)
            max_idle=$((fd_limit - 256))
            if [ "$max_idle" -lt 0 ]; then max_idle=0; fi
            if [ "$IDLE" -gt "$max_idle" ]; then
                echo "soak: fd limit $fd_limit cannot hold $IDLE idle connections; lowering target to $max_idle" >&2
                IDLE="$max_idle"
            fi
            ;;
    esac
fi

for bin in "$SERVER_BIN" "$LOAD_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (run: cargo build --release -p concealer-server -p concealer-load)" >&2
        exit 2
    fi
done

# --- routed deployment leg ----------------------------------------------
# N shard servers behind a router, one shard killed mid-load. Runs
# instead of the single-node flow and exits.
if [ "$ROUTER_SHARDS" -gt 0 ]; then
    if [ "$ROUTER_SHARDS" -lt 2 ]; then
        echo "error: SOAK_ROUTER_SHARDS must be >= 2 (got $ROUTER_SHARDS)" >&2
        exit 2
    fi
    if [ ! -x "$ROUTER_BIN" ]; then
        echo "error: $ROUTER_BIN not built (run: cargo build --release -p concealer-router)" >&2
        exit 2
    fi

    workdir=$(mktemp -d)
    pids=""
    cleanup_routed() {
        for pid in $pids; do kill "$pid" 2>/dev/null || true; done
        rm -rf "$workdir"
    }
    trap cleanup_routed EXIT INT TERM

    # Launch the shard servers, in shard order (the router's --shard-addr
    # list position must match each server's --shard index).
    i=0
    while [ "$i" -lt "$ROUTER_SHARDS" ]; do
        "$SERVER_BIN" --mode "$MODE" --hours "$HOURS" --seed "$SEED" \
            --shard "$i/$ROUTER_SHARDS" \
            >"$workdir/shard$i.out" 2>"$workdir/shard$i.err" &
        eval "shard_pid_$i=$!"
        pids="$pids $!"
        i=$((i + 1))
    done
    shard_flags=""
    i=0
    while [ "$i" -lt "$ROUTER_SHARDS" ]; do
        addr=""
        tries=0
        while [ "$tries" -lt 300 ]; do
            addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$workdir/shard$i.out")
            if [ -n "$addr" ]; then
                break
            fi
            eval "pid=\$shard_pid_$i"
            if ! kill -0 "$pid" 2>/dev/null; then
                echo "error: shard $i exited before READY" >&2
                cat "$workdir/shard$i.err" >&2
                exit 1
            fi
            tries=$((tries + 1))
            sleep 0.2
        done
        if [ -z "$addr" ]; then
            echo "error: shard $i did not become READY in time" >&2
            exit 1
        fi
        shard_flags="$shard_flags --shard-addr $addr"
        echo "soak: shard $i/$ROUTER_SHARDS ready on $addr"
        i=$((i + 1))
    done

    # The router probes the shard map before binding; a READY line means
    # every shard agreed on its slice.
    # shellcheck disable=SC2086
    "$ROUTER_BIN" $shard_flags --mode "$MODE" \
        >"$workdir/router.out" 2>"$workdir/router.err" &
    router_pid=$!
    pids="$pids $router_pid"
    router_addr=""
    tries=0
    while [ "$tries" -lt 300 ]; do
        router_addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$workdir/router.out")
        if [ -n "$router_addr" ]; then
            break
        fi
        if ! kill -0 "$router_pid" 2>/dev/null; then
            echo "error: router exited before READY (startup probe?)" >&2
            cat "$workdir/router.err" >&2
            exit 1
        fi
        tries=$((tries + 1))
        sleep 0.2
    done
    if [ -z "$router_addr" ]; then
        echo "error: router did not become READY in time" >&2
        exit 1
    fi
    echo "soak: router ready on $router_addr fronting $ROUTER_SHARDS shard(s) (mode: $MODE)"

    # Drive the load through the router; once its query phase has started,
    # SIGKILL the last shard out from under the deployment. The routed
    # leg needs a longer run than the single-node default so release
    # binaries don't finish before the kill lands — SOAK_REQUESTS still
    # overrides.
    routed_requests="${SOAK_REQUESTS:-400}"
    "$LOAD_BIN" --addr "$router_addr" --router --clients "$CLIENTS" \
        --requests "$routed_requests" --hours "$HOURS" --seed "$SEED" \
        --ingest-epochs 2 --shutdown --out "$OUT" 2>"$workdir/load.err" &
    load_pid=$!
    pids="$pids $load_pid"

    victim=$((ROUTER_SHARDS - 1))
    eval "victim_pid=\$shard_pid_$victim"
    tries=0
    while [ "$tries" -lt 300 ]; do
        if grep -q 'client(s) x' "$workdir/load.err" 2>/dev/null; then
            break
        fi
        if ! kill -0 "$load_pid" 2>/dev/null; then
            break
        fi
        tries=$((tries + 1))
        sleep 0.1
    done
    sleep 0.1
    if kill -0 "$load_pid" 2>/dev/null; then
        echo "soak: killing shard $victim mid-load (pid $victim_pid)"
        kill -9 "$victim_pid" 2>/dev/null || true
    else
        echo "error: load finished before the shard kill could land; raise SOAK_REQUESTS" >&2
        exit 1
    fi

    load_rc=0
    wait "$load_pid" || load_rc=$?
    sed 's/^/soak: load: /' "$workdir/load.err"
    if [ "$load_rc" -ne 0 ]; then
        echo "error: routed load failed (rc=$load_rc): divergence or unstructured error during failover" >&2
        exit 1
    fi

    # The kill must have been *observed* — as structured errors, and only
    # as structured errors (anything else already failed the load above).
    unavailable=$(sed -n 's/.*"shard_unavailable": *\([0-9][0-9]*\).*/\1/p' "$OUT" | head -n 1)
    if [ -z "$unavailable" ] || [ "$unavailable" -lt 1 ]; then
        echo "error: shard $victim was killed mid-load but no structured shard_unavailable reply was observed" >&2
        exit 1
    fi
    if ! grep -q '"router_shards": \[{' "$OUT"; then
        echo "error: summary lacks the per-shard router counters" >&2
        exit 1
    fi

    # The router and every surviving shard must still drain gracefully.
    router_rc=0
    wait "$router_pid" || router_rc=$?
    if [ "$router_rc" -ne 0 ] || ! grep -q '^SHUTDOWN graceful' "$workdir/router.out"; then
        echo "error: router exited non-gracefully (rc=$router_rc)" >&2
        cat "$workdir/router.err" >&2
        exit 1
    fi
    i=0
    while [ "$i" -lt "$victim" ]; do
        shard_rc=0
        eval "pid=\$shard_pid_$i"
        wait "$pid" || shard_rc=$?
        if [ "$shard_rc" -ne 0 ] || ! grep -q '^SHUTDOWN graceful' "$workdir/shard$i.out"; then
            echo "error: shard $i exited non-gracefully (rc=$shard_rc)" >&2
            cat "$workdir/shard$i.err" >&2
            exit 1
        fi
        i=$((i + 1))
    done
    wait "$victim_pid" 2>/dev/null || true
    pids=""

    sh "$script_dir/compare-bench.sh" --server-summary "$OUT"
    qps=$(sed -n 's/.*"qps": *\([0-9.eE+-]*\).*/\1/p' "$OUT" | head -n 1)
    echo "soak ok (routed): shards=$ROUTER_SHARDS mode=$MODE killed=$victim tolerated=$unavailable qps=${qps:-?} summary=$OUT"
    exit 0
fi

# --- replicated deployment leg ------------------------------------------
# One shard as a replica set: a writer plus N-1 read replicas on a shared
# store root, fronted by the router, and the writer SIGKILLed mid-load.
# Runs instead of the single-node flow and exits.
if [ "$REPLICAS" -gt 0 ]; then
    if [ "$REPLICAS" -lt 2 ]; then
        echo "error: SOAK_REPLICAS must be >= 2 (got $REPLICAS)" >&2
        exit 2
    fi
    if [ ! -x "$ROUTER_BIN" ]; then
        echo "error: $ROUTER_BIN not built (run: cargo build --release -p concealer-router)" >&2
        exit 2
    fi

    workdir=$(mktemp -d)
    store="$workdir/shardstore"
    pids=""
    cleanup_replicated() {
        for pid in $pids; do kill "$pid" 2>/dev/null || true; done
        rm -rf "$workdir"
    }
    trap cleanup_replicated EXIT INT TERM

    # wait_member_ready <index> — block until member INDEX prints READY
    # (sets $addr), failing loudly if the process dies first.
    wait_member_ready() {
        idx="$1"
        addr=""
        tries=0
        while [ "$tries" -lt 300 ]; do
            addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$workdir/member$idx.out")
            if [ -n "$addr" ]; then
                return 0
            fi
            eval "pid=\$member_pid_$idx"
            if ! kill -0 "$pid" 2>/dev/null; then
                echo "error: replica-set member $idx exited before READY" >&2
                cat "$workdir/member$idx.err" >&2
                exit 1
            fi
            tries=$((tries + 1))
            sleep 0.2
        done
        echo "error: replica-set member $idx did not become READY in time" >&2
        exit 1
    }

    # The writer must be READY (base epoch committed to the store root)
    # before any replica opens the root, so each replica absorbs the base
    # epoch during its own startup rather than racing the refresh loop.
    "$SERVER_BIN" --mode "$MODE" --hours "$HOURS" --seed "$SEED" \
        --store "$store" \
        >"$workdir/member0.out" 2>"$workdir/member0.err" &
    member_pid_0=$!
    pids="$pids $member_pid_0"
    wait_member_ready 0
    if ! grep -q 'role=writer' "$workdir/member0.out"; then
        echo "error: member 0 did not report role=writer on its READY line" >&2
        exit 1
    fi
    members="$addr"
    echo "soak: writer ready on $addr (store: $store)"

    i=1
    while [ "$i" -lt "$REPLICAS" ]; do
        "$SERVER_BIN" --mode "$MODE" --hours "$HOURS" --seed "$SEED" \
            --store "$store" --replica --refresh-ms 100 \
            >"$workdir/member$i.out" 2>"$workdir/member$i.err" &
        eval "member_pid_$i=$!"
        pids="$pids $!"
        wait_member_ready "$i"
        if ! grep -q 'role=replica' "$workdir/member$i.out"; then
            echo "error: member $i did not report role=replica on its READY line" >&2
            exit 1
        fi
        members="$members,$addr"
        echo "soak: replica $i ready on $addr"
        i=$((i + 1))
    done

    # One shard entry, comma-joined member list; the probe discovers the
    # roles and requires exactly one writer.
    "$ROUTER_BIN" --shard-addr "$members" --mode "$MODE" \
        >"$workdir/router.out" 2>"$workdir/router.err" &
    router_pid=$!
    pids="$pids $router_pid"
    router_addr=""
    tries=0
    while [ "$tries" -lt 300 ]; do
        router_addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$workdir/router.out")
        if [ -n "$router_addr" ]; then
            break
        fi
        if ! kill -0 "$router_pid" 2>/dev/null; then
            echo "error: router exited before READY (startup probe?)" >&2
            cat "$workdir/router.err" >&2
            exit 1
        fi
        tries=$((tries + 1))
        sleep 0.2
    done
    if [ -z "$router_addr" ]; then
        echo "error: router did not become READY in time" >&2
        exit 1
    fi
    echo "soak: router ready on $router_addr fronting 1 shard x $REPLICAS member(s) (mode: $MODE)"

    # Drive the load through the router; once its query phase has started,
    # SIGKILL the writer out from under the set. Same long default run as
    # the routed leg so release binaries don't finish before the kill.
    replicated_requests="${SOAK_REQUESTS:-400}"
    "$LOAD_BIN" --addr "$router_addr" --router --clients "$CLIENTS" \
        --requests "$replicated_requests" --hours "$HOURS" --seed "$SEED" \
        --ingest-epochs 2 --shutdown --out "$OUT" 2>"$workdir/load.err" &
    load_pid=$!
    pids="$pids $load_pid"

    tries=0
    while [ "$tries" -lt 300 ]; do
        if grep -q 'client(s) x' "$workdir/load.err" 2>/dev/null; then
            break
        fi
        if ! kill -0 "$load_pid" 2>/dev/null; then
            break
        fi
        tries=$((tries + 1))
        sleep 0.1
    done
    sleep 0.1
    if kill -0 "$load_pid" 2>/dev/null; then
        echo "soak: killing the writer mid-load (pid $member_pid_0)"
        kill -9 "$member_pid_0" 2>/dev/null || true
    else
        echo "error: load finished before the writer kill could land; raise SOAK_REQUESTS" >&2
        exit 1
    fi

    load_rc=0
    wait "$load_pid" || load_rc=$?
    sed 's/^/soak: load: /' "$workdir/load.err"
    if [ "$load_rc" -ne 0 ]; then
        echo "error: replicated load failed (rc=$load_rc): divergence or unstructured error during failover" >&2
        exit 1
    fi

    # The summary must carry the per-member router counters (the
    # compare-bench gate below re-checks the full schema, including the
    # member index and writer flag on every entry).
    if ! grep -q '"router_shards": \[{' "$OUT"; then
        echo "error: summary lacks the per-member router counters" >&2
        exit 1
    fi
    if ! grep -q '"member": ' "$OUT"; then
        echo "error: router counters are not per-member (stale load binary?)" >&2
        exit 1
    fi

    # The router and every replica must still drain gracefully.
    router_rc=0
    wait "$router_pid" || router_rc=$?
    if [ "$router_rc" -ne 0 ] || ! grep -q '^SHUTDOWN graceful' "$workdir/router.out"; then
        echo "error: router exited non-gracefully (rc=$router_rc)" >&2
        cat "$workdir/router.err" >&2
        exit 1
    fi
    i=1
    while [ "$i" -lt "$REPLICAS" ]; do
        member_rc=0
        eval "pid=\$member_pid_$i"
        wait "$pid" || member_rc=$?
        if [ "$member_rc" -ne 0 ] || ! grep -q '^SHUTDOWN graceful' "$workdir/member$i.out"; then
            echo "error: replica $i exited non-gracefully (rc=$member_rc)" >&2
            cat "$workdir/member$i.err" >&2
            exit 1
        fi
        i=$((i + 1))
    done
    wait "$member_pid_0" 2>/dev/null || true
    pids=""

    sh "$script_dir/compare-bench.sh" --server-summary "$OUT"
    unavailable=$(sed -n 's/.*"shard_unavailable": *\([0-9][0-9]*\).*/\1/p' "$OUT" | head -n 1)
    qps=$(sed -n 's/.*"qps": *\([0-9.eE+-]*\).*/\1/p' "$OUT" | head -n 1)
    echo "soak ok (replicated): members=$REPLICAS mode=$MODE killed=writer tolerated=${unavailable:-0} qps=${qps:-?} summary=$OUT"
    exit 0
fi

server_out=$(mktemp)
server_err=$(mktemp)
server_pid=""
rotate_store=""

cleanup() {
    if [ -n "$server_pid" ]; then
        kill "$server_pid" 2>/dev/null || true
    fi
    rm -f "$server_out" "$server_err"
    if [ -n "$rotate_store" ]; then
        rm -rf "$rotate_store"
    fi
}
trap cleanup EXIT INT TERM

# Rotation leg: a durable store (the key vault lives in its manifest —
# the in-memory backend has nothing to re-wrap) plus the online-rotation
# hook. The fire delay lands the rotation inside the load window.
rotate_flags=""
if [ "$ROTATE" = "1" ]; then
    rotate_store=$(mktemp -d)
    rotate_flags="--store $rotate_store/root --rotate-after-ms ${SOAK_ROTATE_AFTER_MS:-500}"
fi

# The connection cap must clear the idle pool plus the query clients plus
# probe headroom; the threaded default (16) only applies with no pool.
max_connections=$((IDLE + CLIENTS + 64))
if [ "$IDLE" -eq 0 ]; then
    max_connections=16
fi

# shellcheck disable=SC2086
"$SERVER_BIN" --mode "$MODE" --hours "$HOURS" --seed "$SEED" \
    --max-connections "$max_connections" $rotate_flags \
    >"$server_out" 2>"$server_err" &
server_pid=$!

# Wait (up to ~60 s) for the READY line; the server builds and ingests the
# demo deployment first.
addr=""
tries=0
while [ "$tries" -lt 300 ]; do
    addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$server_out")
    if [ -n "$addr" ]; then
        break
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "error: server exited before READY" >&2
        cat "$server_err" >&2
        exit 1
    fi
    tries=$((tries + 1))
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "error: server did not become READY in time" >&2
    cat "$server_err" >&2
    exit 1
fi
backend=$(sed -n 's/^READY.*backend=\([^ ]*\).*/\1/p' "$server_out")
ready_mode=$(sed -n 's/^READY.*mode=\([^ ]*\).*/\1/p' "$server_out")
if [ "$ready_mode" != "$MODE" ]; then
    echo "error: asked for mode '$MODE' but the server reported '$ready_mode'" >&2
    exit 1
fi
echo "soak: server ready on $addr (backend: ${backend:-unknown}, mode: $MODE, idle target: $IDLE)"

load_rc=0
"$LOAD_BIN" --addr "$addr" --clients "$CLIENTS" --requests "$REQUESTS" \
    --hours "$HOURS" --seed "$SEED" --idle-connections "$IDLE" \
    --ingest-epochs 2 --shutdown --out "$OUT" || load_rc=$?
if [ "$load_rc" -ne 0 ]; then
    echo "error: load generator failed (rc=$load_rc): answer divergence, client error, or shutdown refusal" >&2
    exit 1
fi

# The wire shutdown must drain the server to a clean exit 0 plus the
# SHUTDOWN marker — anything else is a non-graceful shutdown and fails.
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
if [ "$server_rc" -ne 0 ]; then
    echo "error: server exited non-gracefully (rc=$server_rc)" >&2
    cat "$server_err" >&2
    exit 1
fi
if ! grep -q '^SHUTDOWN graceful' "$server_out"; then
    echo "error: server exited without reporting a graceful shutdown" >&2
    cat "$server_out" >&2
    exit 1
fi

# The rotation gate: the load above already proved zero divergence; here
# the rotation itself must have completed — generation bumped, at least
# one vault entry re-wrapped — while the server was serving.
if [ "$ROTATE" = "1" ]; then
    rotation=$(sed -n 's/^ROTATION generation=\([0-9][0-9]*\) epochs=\([0-9][0-9]*\)$/\1 \2/p' "$server_out" | head -n 1)
    if [ -z "$rotation" ]; then
        echo "error: SOAK_ROTATE=1 but the server never printed a ROTATION line" >&2
        cat "$server_out" >&2
        exit 1
    fi
    rot_generation=${rotation%% *}
    rot_epochs=${rotation##* }
    if [ "$rot_generation" -lt 1 ] || [ "$rot_epochs" -lt 1 ]; then
        echo "error: rotation did not move the vault (generation=$rot_generation epochs=$rot_epochs)" >&2
        exit 1
    fi
    echo "soak: master key rotated online to generation $rot_generation ($rot_epochs vault entries re-wrapped) under live load"
fi

# Validate the v2 summary schema; with an idle pool, also gate the
# server's concurrency high-water mark against what was attempted.
if [ "$IDLE" -gt 0 ]; then
    MIN_CONNECTIONS="$IDLE" sh "$script_dir/compare-bench.sh" --server-summary "$OUT"
else
    sh "$script_dir/compare-bench.sh" --server-summary "$OUT"
fi

grep '^SHUTDOWN' "$server_out"
qps=$(sed -n 's/.*"qps": *\([0-9.eE+-]*\).*/\1/p' "$OUT" | head -n 1)
echo "soak ok: backend=${backend:-unknown} mode=$MODE qps=${qps:-?} summary=$OUT"
