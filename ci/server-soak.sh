#!/usr/bin/env sh
# Serving-layer soak: launch the release concealer-server binary on an
# ephemeral loopback port, drive it with concealer-load (N concurrent
# clients of mixed point/range/batch workloads, every answer checked
# bit-for-bit against the in-process oracle, follow-up epochs ingested
# over the wire while queries are live), then require a graceful wire
# shutdown. The storage backend follows CONCEALER_TEST_BACKEND (memory /
# disk) in both processes — the CI server-soak job runs the matrix.
#
# Exit codes: 0 soak clean, 1 divergence / client error / non-graceful
# shutdown, 2 binaries missing.
#
# Usage: server-soak.sh [BENCH_server.json]
set -eu

OUT="${1:-BENCH_server.json}"
SERVER_BIN="${SERVER_BIN:-target/release/concealer-server}"
LOAD_BIN="${LOAD_BIN:-target/release/concealer-load}"
HOURS="${SOAK_HOURS:-2}"
SEED="${SOAK_SEED:-42}"
CLIENTS="${SOAK_CLIENTS:-8}"
REQUESTS="${SOAK_REQUESTS:-36}"

for bin in "$SERVER_BIN" "$LOAD_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (run: cargo build --release -p concealer-server -p concealer-load)" >&2
        exit 2
    fi
done

server_out=$(mktemp)
server_err=$(mktemp)
server_pid=""

cleanup() {
    if [ -n "$server_pid" ]; then
        kill "$server_pid" 2>/dev/null || true
    fi
    rm -f "$server_out" "$server_err"
}
trap cleanup EXIT INT TERM

"$SERVER_BIN" --hours "$HOURS" --seed "$SEED" >"$server_out" 2>"$server_err" &
server_pid=$!

# Wait (up to ~60 s) for the READY line; the server builds and ingests the
# demo deployment first.
addr=""
tries=0
while [ "$tries" -lt 300 ]; do
    addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$server_out")
    if [ -n "$addr" ]; then
        break
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "error: server exited before READY" >&2
        cat "$server_err" >&2
        exit 1
    fi
    tries=$((tries + 1))
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "error: server did not become READY in time" >&2
    cat "$server_err" >&2
    exit 1
fi
backend=$(sed -n 's/^READY.*backend=\([^ ]*\).*/\1/p' "$server_out")
echo "soak: server ready on $addr (backend: ${backend:-unknown})"

load_rc=0
"$LOAD_BIN" --addr "$addr" --clients "$CLIENTS" --requests "$REQUESTS" \
    --hours "$HOURS" --seed "$SEED" --ingest-epochs 2 --shutdown \
    --out "$OUT" || load_rc=$?
if [ "$load_rc" -ne 0 ]; then
    echo "error: load generator failed (rc=$load_rc): answer divergence, client error, or shutdown refusal" >&2
    exit 1
fi

# The wire shutdown must drain the server to a clean exit 0 plus the
# SHUTDOWN marker — anything else is a non-graceful shutdown and fails.
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
if [ "$server_rc" -ne 0 ]; then
    echo "error: server exited non-gracefully (rc=$server_rc)" >&2
    cat "$server_err" >&2
    exit 1
fi
if ! grep -q '^SHUTDOWN graceful' "$server_out"; then
    echo "error: server exited without reporting a graceful shutdown" >&2
    cat "$server_out" >&2
    exit 1
fi

grep '^SHUTDOWN' "$server_out"
qps=$(sed -n 's/.*"qps": *\([0-9.eE+-]*\).*/\1/p' "$OUT" | head -n 1)
echo "soak ok: backend=${backend:-unknown} qps=${qps:-?} summary=$OUT"
