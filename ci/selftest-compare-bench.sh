#!/usr/bin/env sh
# Self-test for ci/compare-bench.sh: pins the gate's contract — exit 0 on
# a clean run (including exponent-formatted qps), exit 1 on a regression
# beyond the floor, exit 2 on any malformed summary (missing file, missing
# "parallel" section, missing/non-numeric qps). Run by the lint-ci job and
# runnable locally: sh ci/selftest-compare-bench.sh
set -eu

script_dir=$(dirname "$0")
compare="$script_dir/compare-bench.sh"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

failures=0

# Write a minimal well-formed summary with the given sequential qps.
write_summary() {
    cat >"$1" <<EOF
{
  "schema": "concealer-bench-smoke/v1",
  "workload": "selftest",
  "backend": "memory",
  "queries": 64,
  "iterations": 1,
  "threads_available": 2,
  "sequential": {"qps": $2, "elapsed_ms": 30.0},
  "parallel": [
    {"threads": 2, "qps": $2, "elapsed_ms": 30.0, "speedup": 1.0}
  ],
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
}

# expect <name> <expected-rc> <baseline> <current>
expect() {
    name="$1"
    want="$2"
    baseline="$3"
    current="$4"
    got=0
    sh "$compare" "$baseline" "$current" >"$tmp/out" 2>"$tmp/err" || got=$?
    if [ "$got" -eq "$want" ]; then
        echo "ok: $name (rc=$got)"
    else
        echo "FAIL: $name: expected rc=$want, got rc=$got" >&2
        sed 's/^/  stdout: /' "$tmp/out" >&2
        sed 's/^/  stderr: /' "$tmp/err" >&2
        failures=$((failures + 1))
    fi
}

write_summary "$tmp/base.json" "1000.00"
write_summary "$tmp/same.json" "990.00"
write_summary "$tmp/regressed.json" "100.00"
# Exponent-formatted qps on both sides (≈2100 vs ≈2000: within the band).
write_summary "$tmp/base-exp.json" "2.1e3"
write_summary "$tmp/cur-exp.json" "2.0e3"
# Exponent current against a plain baseline, regressed (2e2 = 200).
write_summary "$tmp/cur-exp-regressed.json" "2.0e2"

expect "clean run passes" 0 "$tmp/base.json" "$tmp/same.json"
expect "regression beyond the floor fails" 1 "$tmp/base.json" "$tmp/regressed.json"
expect "exponent qps parses and passes" 0 "$tmp/base-exp.json" "$tmp/cur-exp.json"
expect "exponent qps parses and regresses" 1 "$tmp/base.json" "$tmp/cur-exp-regressed.json"
expect "missing current file is malformed" 2 "$tmp/base.json" "$tmp/nonexistent.json"

# Missing "parallel" section → malformed, not silently ignored.
cat >"$tmp/no-parallel.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v1",
  "sequential": {"qps": 990.00, "elapsed_ms": 30.0},
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "missing parallel section is malformed" 2 "$tmp/base.json" "$tmp/no-parallel.json"

# Empty "parallel" section → malformed.
cat >"$tmp/empty-parallel.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v1",
  "sequential": {"qps": 990.00, "elapsed_ms": 30.0},
  "parallel": [],
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "empty parallel section is malformed" 2 "$tmp/base.json" "$tmp/empty-parallel.json"

# Missing sequential qps → malformed.
cat >"$tmp/no-qps.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v1",
  "sequential": {"elapsed_ms": 30.0},
  "parallel": [
    {"threads": 2, "qps": 990.0, "elapsed_ms": 30.0, "speedup": 1.0}
  ],
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "missing sequential qps is malformed" 2 "$tmp/base.json" "$tmp/no-qps.json"

# Garbage file → malformed.
echo "not json at all" >"$tmp/garbage.json"
expect "garbage summary is malformed" 2 "$tmp/base.json" "$tmp/garbage.json"

# The committed baseline itself must satisfy the format checks.
expect "committed baseline is well-formed" 0 "$script_dir/../BENCH_baseline.json" "$script_dir/../BENCH_baseline.json"

if [ "$failures" -ne 0 ]; then
    echo "compare-bench self-test: $failures failure(s)" >&2
    exit 1
fi
echo "compare-bench self-test: all cases pass"
