#!/usr/bin/env sh
# Self-test for ci/compare-bench.sh: pins the gate's contract — exit 0 on
# a clean run (including exponent-formatted qps), exit 1 on a throughput
# regression beyond the floor or a parallel speedup below its floor, exit
# 2 on any malformed summary (missing file, missing "parallel" or
# "phases" section, missing/non-numeric qps or speedup). Run by the
# lint-ci job and runnable locally: sh ci/selftest-compare-bench.sh
set -eu

script_dir=$(dirname "$0")
compare="$script_dir/compare-bench.sh"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

failures=0

# Write a minimal well-formed v2 summary.
# write_summary <path> <seq-qps> <2-thread-speedup> <threads_available>
write_summary() {
    cat >"$1" <<EOF
{
  "schema": "concealer-bench-smoke/v2",
  "workload": "selftest",
  "backend": "memory",
  "queries": 64,
  "iterations": 5,
  "threads_available": $4,
  "sequential": {"qps": $2, "elapsed_ms": 30.0, "min_ms": 29.0, "max_ms": 31.0},
  "parallel": [
    {"threads": 2, "qps": $2, "elapsed_ms": 30.0, "min_ms": 29.0, "max_ms": 31.0, "speedup": $3},
    {"threads": 4, "qps": $2, "elapsed_ms": 30.0, "min_ms": 29.0, "max_ms": 31.0, "speedup": $3}
  ],
  "phases": {"fetch_ms": 5.0, "decrypt_ms": 15.0, "verify_ms": 1.0, "aggregate_ms": 6.0},
  "bin_cache": {"capacity": 128, "hits": 300, "misses": 10, "evictions": 0},
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
}

# expect <name> <expected-rc> <baseline> <current>
expect() {
    name="$1"
    want="$2"
    baseline="$3"
    current="$4"
    got=0
    sh "$compare" "$baseline" "$current" >"$tmp/out" 2>"$tmp/err" || got=$?
    if [ "$got" -eq "$want" ]; then
        echo "ok: $name (rc=$got)"
    else
        echo "FAIL: $name: expected rc=$want, got rc=$got" >&2
        sed 's/^/  stdout: /' "$tmp/out" >&2
        sed 's/^/  stderr: /' "$tmp/err" >&2
        failures=$((failures + 1))
    fi
}

write_summary "$tmp/base.json" "1000.00" "1.4" "2"
write_summary "$tmp/same.json" "990.00" "1.5" "2"
write_summary "$tmp/regressed.json" "100.00" "1.5" "2"
# Exponent-formatted qps on both sides (≈2100 vs ≈2000: within the band).
write_summary "$tmp/base-exp.json" "2.1e3" "1.5" "2"
write_summary "$tmp/cur-exp.json" "2.0e3" "1.5" "2"
# Exponent current against a plain baseline, regressed (2e2 = 200).
write_summary "$tmp/cur-exp-regressed.json" "2.0e2" "1.5" "2"

expect "clean run passes" 0 "$tmp/base.json" "$tmp/same.json"
expect "regression beyond the floor fails" 1 "$tmp/base.json" "$tmp/regressed.json"
expect "exponent qps parses and passes" 0 "$tmp/base-exp.json" "$tmp/cur-exp.json"
expect "exponent qps parses and regresses" 1 "$tmp/base.json" "$tmp/cur-exp-regressed.json"
expect "missing current file is malformed" 2 "$tmp/base.json" "$tmp/nonexistent.json"

# Parallel-speedup gate, multi-threaded runner: threads lose throughput →
# regression, even though sequential qps is fine.
write_summary "$tmp/slow-parallel.json" "990.00" "0.8" "2"
expect "sub-1.0 speedup on a 2-thread runner fails" 1 "$tmp/base.json" "$tmp/slow-parallel.json"

# Single-core runner: real speedups are impossible, the gate is a loose
# relative floor (0.5x the baseline, clamped at 1.0). Ordinary scheduler
# noise — 0.7 against a 0.97 baseline — passes ...
write_summary "$tmp/base-1core.json" "1000.00" "0.97" "1"
write_summary "$tmp/ok-1core.json" "990.00" "0.7" "1"
expect "noisy speedup on a 1-core runner passes" 0 "$tmp/base-1core.json" "$tmp/ok-1core.json"
# ... but a collapse to 0.4 (reintroduced per-batch thread overhead)
# fails ...
write_summary "$tmp/collapsed-1core.json" "990.00" "0.4" "1"
expect "collapsed speedup on a 1-core runner fails" 1 "$tmp/base-1core.json" "$tmp/collapsed-1core.json"
# ... and a baseline "speedup" above 1.0 (itself noise on one core) must
# not tighten the floor: 0.6 against a 1.3 baseline still passes because
# the baseline factor is clamped at 1.0 (floor 0.5, not 0.65).
write_summary "$tmp/base-lucky-1core.json" "1000.00" "1.3" "1"
write_summary "$tmp/ok-clamped-1core.json" "990.00" "0.6" "1"
expect "lucky baseline is clamped on a 1-core runner" 0 "$tmp/base-lucky-1core.json" "$tmp/ok-clamped-1core.json"

# The v1 schema (no phases, no min/max) must be rejected so a stale
# artifact cannot slip through the new gate.
cat >"$tmp/v1.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v1",
  "threads_available": 2,
  "sequential": {"qps": 990.00, "elapsed_ms": 30.0},
  "parallel": [
    {"threads": 2, "qps": 990.0, "elapsed_ms": 30.0, "speedup": 1.0}
  ],
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "v1 schema is malformed" 2 "$tmp/base.json" "$tmp/v1.json"

# Missing "phases" breakdown → malformed.
write_summary "$tmp/no-phases.json" "990.00" "1.5" "2"
sed '/"phases":/d' "$tmp/no-phases.json" >"$tmp/no-phases2.json"
expect "missing phases breakdown is malformed" 2 "$tmp/base.json" "$tmp/no-phases2.json"

# Missing "parallel" section → malformed, not silently ignored.
cat >"$tmp/no-parallel.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v2",
  "threads_available": 2,
  "sequential": {"qps": 990.00, "elapsed_ms": 30.0, "min_ms": 29.0, "max_ms": 31.0},
  "phases": {"fetch_ms": 5.0, "decrypt_ms": 15.0, "verify_ms": 1.0, "aggregate_ms": 6.0},
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "missing parallel section is malformed" 2 "$tmp/base.json" "$tmp/no-parallel.json"

# Empty "parallel" section → malformed.
cat >"$tmp/empty-parallel.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v2",
  "threads_available": 2,
  "sequential": {"qps": 990.00, "elapsed_ms": 30.0, "min_ms": 29.0, "max_ms": 31.0},
  "parallel": [],
  "phases": {"fetch_ms": 5.0, "decrypt_ms": 15.0, "verify_ms": 1.0, "aggregate_ms": 6.0},
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "empty parallel section is malformed" 2 "$tmp/base.json" "$tmp/empty-parallel.json"

# Missing sequential qps → malformed.
cat >"$tmp/no-qps.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v2",
  "threads_available": 2,
  "sequential": {"elapsed_ms": 30.0},
  "parallel": [
    {"threads": 2, "qps": 990.0, "elapsed_ms": 30.0, "speedup": 1.0}
  ],
  "phases": {"fetch_ms": 5.0, "decrypt_ms": 15.0, "verify_ms": 1.0, "aggregate_ms": 6.0},
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "missing sequential qps is malformed" 2 "$tmp/base.json" "$tmp/no-qps.json"

# Missing 2-thread speedup → malformed (the parallel gate has nothing to
# check).
cat >"$tmp/no-speedup.json" <<'EOF'
{
  "schema": "concealer-bench-smoke/v2",
  "threads_available": 2,
  "sequential": {"qps": 990.00, "elapsed_ms": 30.0, "min_ms": 29.0, "max_ms": 31.0},
  "parallel": [
    {"threads": 4, "qps": 990.0, "elapsed_ms": 30.0, "speedup": 1.0}
  ],
  "phases": {"fetch_ms": 5.0, "decrypt_ms": 15.0, "verify_ms": 1.0, "aggregate_ms": 6.0},
  "batch_dedup": {"rows_per_query": 1000, "rows_batched": 100, "dedup_ratio": 10.0}
}
EOF
expect "missing 2-thread speedup is malformed" 2 "$tmp/base.json" "$tmp/no-speedup.json"

# Garbage file → malformed.
echo "not json at all" >"$tmp/garbage.json"
expect "garbage summary is malformed" 2 "$tmp/base.json" "$tmp/garbage.json"

# The committed baseline itself must satisfy the format checks.
expect "committed baseline is well-formed" 0 "$script_dir/../BENCH_baseline.json" "$script_dir/../BENCH_baseline.json"

# --- --server-summary mode (concealer-server-load/v2) -------------------

# write_server_summary <path> <mode> <peak> <divergences>
write_server_summary() {
    cat >"$1" <<EOF
{
  "schema": "concealer-server-load/v2",
  "addr": "127.0.0.1:7171",
  "backend": "memory",
  "mode": "$2",
  "clients": 8,
  "requests_per_client": 36,
  "batch_len": 8,
  "idle_connections_target": 10000,
  "connections": 10000,
  "max_concurrent_connections": $3,
  "requests": 288,
  "queries": 900,
  "ingest_epochs": 0,
  "elapsed_s": 1.500,
  "qps": 600.00,
  "latency_ms": {"p50": 0.500, "p95": 2.000, "p99": 4.000, "max": 9.000},
  "checked": true,
  "divergences": $4,
  "client_errors": 0
}
EOF
}

# expect_server <name> <expected-rc> <file> [min-connections]
expect_server() {
    name="$1"
    want="$2"
    file="$3"
    min="${4:-}"
    got=0
    MIN_CONNECTIONS="$min" sh "$compare" --server-summary "$file" \
        >"$tmp/out" 2>"$tmp/err" || got=$?
    if [ "$got" -eq "$want" ]; then
        echo "ok: $name (rc=$got)"
    else
        echo "FAIL: $name: expected rc=$want, got rc=$got" >&2
        sed 's/^/  stdout: /' "$tmp/out" >&2
        sed 's/^/  stderr: /' "$tmp/err" >&2
        failures=$((failures + 1))
    fi
}

write_server_summary "$tmp/srv-event.json" "event" "10004" "0"
write_server_summary "$tmp/srv-threaded.json" "threaded" "17" "0"
expect_server "well-formed event summary passes" 0 "$tmp/srv-event.json"
expect_server "well-formed threaded summary passes" 0 "$tmp/srv-threaded.json"
expect_server "connection floor holds" 0 "$tmp/srv-event.json" "10000"
expect_server "peak below the connection floor fails" 1 "$tmp/srv-threaded.json" "10000"

# Any oracle divergence fails the gate even if the schema is pristine.
write_server_summary "$tmp/srv-diverged.json" "event" "10004" "3"
expect_server "divergences fail the gate" 1 "$tmp/srv-diverged.json"

# "unknown" mode means the ServeStats probe failed — no claim to gate on.
write_server_summary "$tmp/srv-unknown.json" "unknown" "0" "0"
expect_server "unknown serving mode is malformed" 2 "$tmp/srv-unknown.json"

# A v1 artifact (no mode, no connection counts) must be rejected.
cat >"$tmp/srv-v1.json" <<'EOF'
{
  "schema": "concealer-server-load/v1",
  "addr": "127.0.0.1:7171",
  "qps": 600.00,
  "latency_ms": {"p50": 0.500, "p95": 2.000, "p99": 4.000, "max": 9.000},
  "divergences": 0
}
EOF
expect_server "server-load v1 schema is malformed" 2 "$tmp/srv-v1.json"

# Missing latency percentiles → malformed.
write_server_summary "$tmp/srv-nolat.json" "event" "10004" "0"
sed '/"latency_ms":/d' "$tmp/srv-nolat.json" >"$tmp/srv-nolat2.json"
expect_server "missing latency percentiles is malformed" 2 "$tmp/srv-nolat2.json"

expect_server "missing server summary is malformed" 2 "$tmp/srv-nonexistent.json"

# --- routed summaries: per-member router counters ------------------------

# A routed run's router_shards array must carry each member's replica-set
# position and writer flag; an entry shaped like the pre-replica schema
# (no "member", no "writer") must be rejected so a stale load binary
# cannot pass the replicated soak gate.
# write_routed_server_summary <path> <shard-entry-json>
write_routed_server_summary() {
    cat >"$1" <<EOF
{
  "schema": "concealer-server-load/v2",
  "addr": "127.0.0.1:7171",
  "backend": "memory",
  "mode": "event",
  "clients": 8,
  "requests_per_client": 36,
  "batch_len": 8,
  "idle_connections_target": 0,
  "connections": 8,
  "max_concurrent_connections": 9,
  "requests": 288,
  "queries": 900,
  "ingest_epochs": 0,
  "elapsed_s": 1.500,
  "qps": 600.00,
  "latency_ms": {"p50": 0.500, "p95": 2.000, "p99": 4.000, "max": 9.000},
  "checked": true,
  "divergences": 0,
  "client_errors": 0,
  "router_errors": {"shard_unavailable": 2, "other": 0},
  "router_shards": [$2]
}
EOF
}

member_entry='{"shard_index": 0, "member": 0, "writer": true, "addr": "127.0.0.1:7001", "requests_forwarded": 144, "errors": 0, "reconnects": 0, "available": true}, {"shard_index": 0, "member": 1, "writer": false, "addr": "127.0.0.1:7002", "requests_forwarded": 144, "errors": 2, "reconnects": 1, "available": true}'
write_routed_server_summary "$tmp/srv-routed.json" "$member_entry"
expect_server "routed summary with per-member counters passes" 0 "$tmp/srv-routed.json"

no_member_entry='{"shard_index": 0, "writer": true, "addr": "127.0.0.1:7001", "requests_forwarded": 144, "errors": 0, "reconnects": 0, "available": true}'
write_routed_server_summary "$tmp/srv-routed-nomember.json" "$no_member_entry"
expect_server "router_shards entry without member is malformed" 2 "$tmp/srv-routed-nomember.json"

no_writer_entry='{"shard_index": 0, "member": 0, "addr": "127.0.0.1:7001", "requests_forwarded": 144, "errors": 0, "reconnects": 0, "available": true}'
write_routed_server_summary "$tmp/srv-routed-nowriter.json" "$no_writer_entry"
expect_server "router_shards entry without writer flag is malformed" 2 "$tmp/srv-routed-nowriter.json"

if [ "$failures" -ne 0 ]; then
    echo "compare-bench self-test: $failures failure(s)" >&2
    exit 1
fi
echo "compare-bench self-test: all cases pass"
