//! Workspace facade for the Concealer reproduction.
//!
//! This crate exists so the repository root can host the cross-crate
//! integration tests (`tests/`) and runnable demos (`examples/`); it adds no
//! logic of its own. Each member crate is re-exported under a short alias so
//! downstream experiments can depend on a single crate:
//!
//! * [`core`] — bin packing, grid mapping, query engine ([`concealer_core`])
//! * [`crypto`] — deterministic AES-CMAC encryption, KDF, PRFs
//! * [`enclave`] — simulated SGX enclave: filtering, verification, oblivious ops
//! * [`storage`] — B+-tree index, epoch store, access-pattern observer
//! * [`baselines`] — cleartext / det-index / Opaque-style comparison systems
//! * [`workloads`] — WiFi and TPC-H style data and query generators
//! * [`examples`] — shared demo plumbing used by `examples/*.rs`
//! * [`bench`](mod@bench) — experiment harness behind the paper's tables and figures
//! * [`server`] — TCP serving layer: wire protocol + multi-client server
//! * [`client`] — blocking wire-protocol client with pipelined batches
//!
//! Start with the crate-level docs of [`concealer_core`], or run
//! `cargo run --example quickstart` (`wire_quickstart` for the served
//! variant).

pub use concealer_baselines as baselines;
pub use concealer_bench as bench;
pub use concealer_client as client;
pub use concealer_core as core;
pub use concealer_crypto as crypto;
pub use concealer_enclave as enclave;
pub use concealer_examples as examples;
pub use concealer_server as server;
pub use concealer_storage as storage;
pub use concealer_workloads as workloads;
