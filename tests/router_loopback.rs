//! Loopback tests of multi-node serving: a `concealer-router` fronting
//! 2–4 epoch-sharded shard servers must deliver answers **bit-identical**
//! (same `serde::bin` encoding) to a single-process in-process oracle —
//! across mixed workloads, batches (dedup metadata included), routed
//! wire ingest, shard failure (structured `shard_unavailable`, never
//! divergence), shard restart (reconnect, identical answers), and a
//! router-initiated deployment-wide drain.
//!
//! The replica-set leg (bottom of the file) runs a 1-shard set of one
//! writer plus one read replica on a shared durable store root: reads
//! balance across members bit-identically, a replica kill fails over
//! with zero divergence, and a **writer** kill triggers wire promotion
//! (store re-open — no key material moves) with answers bit-identical
//! across the failover.
//!
//! The fixture honors `CONCEALER_TEST_SERVER_MODE`, so the CI matrix
//! reruns the suite with router and shards on the event core.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use concealer_bench::{server_request_mix, ServerRequest};
use concealer_client::{ClientBuilder, ClientError, Session, TrustPolicy};
use concealer_core::{shard_of_epoch, Query, QueryAnswer, UserHandle};
use concealer_examples::{
    demo_epoch_records, demo_system, demo_system_replica, demo_system_sharded, demo_workload,
};
use concealer_router::{RouterConfig, RouterHandler};
use concealer_server::protocol::{ShardDescriptor, ShardRole, WireQuote};
use concealer_server::{
    ErrorCode, Request, Response, Server, ServerConfig, ServerHandle, CONNECTION_LEVEL_ID,
    PROTOCOL_VERSION,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::frame::{read_frame, write_frame};

const HOURS: u64 = 2;
const SEED: u64 = 4242;
const EPOCH: u64 = HOURS * 3600;

fn wire_bytes(answer: &QueryAnswer) -> Vec<u8> {
    serde::bin::to_bytes(answer)
}

/// Attest + authenticate through the redesigned client surface (default
/// trust policy: the demo enclaves' relayed quotes must verify end to
/// end, even through the keyless router).
fn connect_user(addr: SocketAddr, user: &UserHandle, name: &str) -> Result<Session, ClientError> {
    ClientBuilder::new(addr)
        .user(user)
        .client_name(name)
        .connect()
}

/// Spawn `total` shard servers (each owning its epoch-hash slice of the
/// demo deployment) plus a router fronting them. Returns the running
/// pieces and the shared demo user.
fn spawn_routed_deployment(
    total: u32,
    router_config: RouterConfig,
) -> (Vec<ServerHandle>, ServerHandle, UserHandle) {
    let mut shard_handles = Vec::new();
    let mut shard_addrs = Vec::new();
    let mut user = None;
    for index in 0..total {
        let (system, shard_user, _records) = demo_system_sharded(HOURS, SEED, index, total);
        user.get_or_insert(shard_user);
        let handle = Server::new(
            Arc::new(system),
            ServerConfig {
                shard: Some((index, total)),
                ..ServerConfig::default()
            },
        )
        .spawn()
        .expect("bind shard");
        shard_addrs.push(handle.local_addr().to_string());
        shard_handles.push(handle);
    }
    let handler = RouterHandler::probe(RouterConfig {
        shards: shard_addrs,
        ..router_config
    })
    .expect("probe shard map");
    let router = Server::with_handler(Arc::new(handler), ServerConfig::default())
        .spawn()
        .expect("bind router");
    (shard_handles, router, user.expect("at least one shard"))
}

/// The single-process oracle holding the same data as the whole sharded
/// deployment: epoch 0 (the demo ingest) plus `extra` follow-up epochs
/// ingested with the *wire* RNG derivation, so routed `IngestEpoch` and
/// the oracle produce identical sealed state.
fn oracle_with_extra_epochs(extra: u64) -> (concealer_core::ConcealerSystem, UserHandle) {
    let (system, user, _records) = demo_system(HOURS, SEED);
    let ingest_seed = ServerConfig::default().ingest_seed;
    for k in 1..=extra {
        let epoch_start = k * EPOCH;
        let records = demo_epoch_records(HOURS, SEED, epoch_start);
        let mut rng =
            StdRng::seed_from_u64(ingest_seed ^ epoch_start.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        system
            .ingest_epoch(epoch_start, &records, &mut rng)
            .expect("oracle ingest");
    }
    (system, user)
}

/// Mixed point/range/batch workloads from concurrent clients, all routed
/// over 2 shards: every answer — and every per-query batch entry with
/// its dedup fetch metadata — encodes byte-for-byte like the oracle.
#[test]
fn routed_answers_match_single_process_oracle_bit_for_bit() {
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 12;
    let (shards, router, user) = spawn_routed_deployment(2, RouterConfig::default());
    let addr = router.local_addr();
    let (oracle_system, oracle_user) = oracle_with_extra_epochs(0);
    let workload = demo_workload(HOURS);

    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let oracle_system = &oracle_system;
            let oracle_user = &oracle_user;
            let user = &user;
            let workload = &workload;
            scope.spawn(move || {
                let mix = server_request_mix(workload, SEED + client_idx as u64, REQUESTS, 5);
                let mut conn = connect_user(addr, user, "routed").expect("connect via router");
                let oracle = oracle_system.session(oracle_user);
                for request in &mix {
                    match request {
                        ServerRequest::Query(query, options) => {
                            let got = conn.execute_with(query, *options).expect("routed query");
                            let want = oracle.execute_with(query, *options).expect("oracle");
                            assert_eq!(wire_bytes(&got), wire_bytes(&want));
                        }
                        ServerRequest::Batch(queries, options) => {
                            let got = conn
                                .execute_batch_with(queries, *options)
                                .expect("routed batch");
                            let want = oracle.clone().with_options(*options).execute_batch(queries);
                            assert_eq!(got.len(), want.len());
                            for (g, w) in got.iter().zip(&want) {
                                let g = g.as_ref().expect("routed batch entry");
                                let w = w.as_ref().expect("oracle batch entry");
                                assert_eq!(wire_bytes(g), wire_bytes(w));
                            }
                        }
                    }
                }
                conn.close().expect("clean goodbye");
            });
        }
    });

    let report = router.shutdown_and_join();
    assert!(report.graceful);
    for shard in shards {
        shard.shutdown_and_join();
    }
}

/// Routed ingest over 3 shards: each `IngestEpoch` lands on the owning
/// shard only, spanning queries then touch every epoch and match the
/// oracle bit-for-bit, per-shard counters reflect the fan-out, and a
/// wire shutdown at the router drains the entire deployment.
#[test]
fn routed_ingest_partitions_epochs_and_drains_the_deployment() {
    const TOTAL: u32 = 3;
    const EXTRA: u64 = 3;
    let (shards, router, user) = spawn_routed_deployment(TOTAL, RouterConfig::default());
    let mut conn = connect_user(router.local_addr(), &user, "ingest").unwrap();

    for k in 1..=EXTRA {
        let records = demo_epoch_records(HOURS, SEED, k * EPOCH);
        let rows = conn
            .ingest_epoch(k * EPOCH, &records)
            .expect("routed ingest");
        assert!(rows > 0);
    }

    // The epochs really are partitioned: ask each shard directly.
    let mut owners_seen = std::collections::BTreeSet::new();
    for (index, shard) in shards.iter().enumerate() {
        let mut probe = ClientBuilder::new(shard.local_addr())
            .probe()
            .expect("probe shard");
        let ShardDescriptor {
            shard_index,
            shard_total,
            epochs,
            ..
        } = probe.shard_info().expect("shard info");
        assert_eq!(shard_index, index as u32);
        assert_eq!(shard_total, TOTAL);
        for epoch in epochs {
            assert_eq!(
                shard_of_epoch(epoch, TOTAL as usize),
                index,
                "epoch {epoch} stored off its owner slice"
            );
            owners_seen.insert(index);
        }
    }
    assert!(
        owners_seen.len() >= 2,
        "fixture degenerated: all epochs hashed to one shard"
    );

    // Spanning queries merge the partitioned epochs back bit-for-bit.
    let (oracle_system, oracle_user) = oracle_with_extra_epochs(EXTRA);
    let oracle = oracle_system.session(&oracle_user);
    let spanning = Query::count()
        .at_dims([4])
        .between(0, (EXTRA + 1) * EPOCH - 1);
    let got = conn.execute(&spanning).expect("spanning query");
    let want = oracle.execute(&spanning).expect("oracle spanning");
    assert_eq!(wire_bytes(&got), wire_bytes(&want));
    assert_eq!(got.epochs_touched as u64, EXTRA + 1);
    let top_k = Query::top_k_locations(5).between(0, (EXTRA + 1) * EPOCH - 1);
    assert_eq!(
        wire_bytes(&conn.execute(&top_k).unwrap()),
        wire_bytes(&oracle.execute(&top_k).unwrap())
    );

    // Backend stats aggregate across the deployment.
    let stats = conn.stats().expect("routed stats");
    assert_eq!(stats.epochs, EXTRA + 1);
    assert!(stats.volume_hiding && stats.verifiable);

    // The router accounts its fan-out per shard; every shard served
    // something (auth, probe, partials, or the ingest it owns).
    let router_stats = conn.router_stats().expect("router stats");
    assert_eq!(router_stats.shards.len(), TOTAL as usize);
    for load in &router_stats.shards {
        assert!(load.available, "shard {} marked down", load.shard_index);
        assert!(load.requests_forwarded > 0);
    }

    // Asking a shard for router stats is a tier error, not a crash.
    let mut direct = connect_user(shards[0].local_addr(), &user, "direct").unwrap();
    let err = direct.router_stats().unwrap_err();
    assert!(
        matches!(err, ClientError::Server(ref e) if e.code == ErrorCode::ProtocolViolation),
        "{err}"
    );
    direct.close().unwrap();

    // One wire shutdown at the router quiesces the whole deployment.
    conn.shutdown_server().expect("routed shutdown");
    drop(conn);
    let report = router.join();
    assert!(report.graceful, "router must drain gracefully");
    for shard in shards {
        let report = shard.join();
        assert!(report.graceful, "shard must drain gracefully");
    }
}

/// An oversized batch is refused at the router (`batch_too_large`)
/// before any shard sees work, and the connection stays usable.
#[test]
fn router_refuses_oversized_batches() {
    let (shards, router, user) = spawn_routed_deployment(
        2,
        RouterConfig {
            max_batch: 3,
            ..RouterConfig::default()
        },
    );
    let mut conn = connect_user(router.local_addr(), &user, "bigbatch").unwrap();
    let queries: Vec<Query> = (0..4)
        .map(|i| Query::count().at_dims([i]).at(600))
        .collect();
    let err = conn.execute_batch(&queries).unwrap_err();
    assert!(
        matches!(err, ClientError::Server(ref e) if e.code == ErrorCode::BatchTooLarge),
        "{err}"
    );
    conn.execute(&Query::count().at_dims([1]).at(600))
        .expect("connection survives the refusal");
    conn.close().unwrap();
    router.shutdown_and_join();
    for shard in shards {
        shard.shutdown_and_join();
    }
}

/// Kill one shard mid-connection: queries fail with a **structured**
/// `shard_unavailable` error naming the shard — never a silently
/// shrunken answer. Restart the shard on the same port: the router
/// reconnects and answers are bit-identical to before the failure.
#[test]
fn shard_restart_reconnects_with_identical_answers() {
    const TOTAL: u32 = 2;
    let (mut shards, router, user) = spawn_routed_deployment(
        TOTAL,
        RouterConfig {
            // Short backoff so the reconnect probe below converges fast.
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(500),
            ..RouterConfig::default()
        },
    );
    let mut conn = connect_user(router.local_addr(), &user, "failover").unwrap();
    let query = Query::count().at_dims([4]).between(0, EPOCH - 1);
    let before = wire_bytes(&conn.execute(&query).expect("pre-failure query"));

    // Kill shard 1 out from under the router.
    let victim = shards.pop().expect("two shards");
    let victim_addr = victim.local_addr();
    victim.shutdown_and_join();

    // Every slice must answer for a query to be served: the router
    // reports the dead shard, structurally.
    let err = conn.execute(&query).unwrap_err();
    match err {
        ClientError::Server(ref e) => {
            assert_eq!(e.code, ErrorCode::ShardUnavailable, "{e}");
            assert!(e.message.contains("shard 1"), "{e}");
        }
        other => panic!("expected a structured shard_unavailable, got {other:?}"),
    }

    // Restart the shard on the same address (retrying the bind briefly:
    // the old listener's sockets may take a moment to release).
    let (system, _user, _records) = demo_system_sharded(HOURS, SEED, 1, TOTAL);
    let system = Arc::new(system);
    let deadline = Instant::now() + Duration::from_secs(10);
    let restarted = loop {
        match Server::new(
            Arc::clone(&system),
            ServerConfig {
                bind: SocketAddr::from(([127, 0, 0, 1], victim_addr.port())),
                shard: Some((1, TOTAL)),
                ..ServerConfig::default()
            },
        )
        .spawn()
        {
            Ok(handle) => break handle,
            Err(e) if Instant::now() < deadline => {
                eprintln!("rebind pending: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => panic!("could not rebind shard address: {e}"),
        }
    };
    shards.push(restarted);

    // The router backs off, reconnects, and the answer is bit-identical
    // to the pre-failure one.
    let deadline = Instant::now() + Duration::from_secs(10);
    let after = loop {
        match conn.execute(&query) {
            Ok(answer) => break wire_bytes(&answer),
            Err(ClientError::Server(ref e)) if e.code == ErrorCode::ShardUnavailable => {
                assert!(
                    Instant::now() < deadline,
                    "router never reconnected to the restarted shard"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(other) => panic!("only structured errors are acceptable: {other:?}"),
        }
    };
    assert_eq!(after, before, "post-restart answer diverged");

    // The reconnect is visible in the router's accounting.
    let stats = conn.router_stats().expect("router stats");
    let shard1 = &stats.shards[1];
    assert!(shard1.errors > 0, "failure never counted");
    assert!(shard1.available, "restarted shard still marked down");

    conn.close().unwrap();
    router.shutdown_and_join();
    for shard in shards {
        shard.shutdown_and_join();
    }
}

/// A shard whose addresses are listed out of order — or a shard map with
/// the wrong total — is refused at the startup probe, before the router
/// ever serves a client.
#[test]
fn shard_map_disagreement_is_refused_at_startup() {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for index in 0..2u32 {
        let (system, _user, _records) = demo_system_sharded(HOURS, SEED, index, 2);
        let handle = Server::new(
            Arc::new(system),
            ServerConfig {
                shard: Some((index, 2)),
                ..ServerConfig::default()
            },
        )
        .spawn()
        .unwrap();
        addrs.push(handle.local_addr().to_string());
        handles.push(handle);
    }

    // Reversed order: shard 1 sits at position 0. The refusal names
    // **every** disagreeing member and the map it reported, so one
    // startup failure shows the whole mis-wiring.
    let err = RouterHandler::probe(RouterConfig {
        shards: vec![addrs[1].clone(), addrs[0].clone()],
        ..RouterConfig::default()
    })
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("shard order"), "{msg}");
    assert!(
        msg.contains(&addrs[0]) && msg.contains(&addrs[1]),
        "disagreement must name every disagreeing shard: {msg}"
    );
    assert!(
        msg.contains("reports slice 1/2") && msg.contains("reports slice 0/2"),
        "disagreement must name each shard's reported map: {msg}"
    );

    // Wrong total: a 2-shard deployment behind a 1-shard router config.
    let err = RouterHandler::probe(RouterConfig {
        shards: vec![addrs[0].clone()],
        ..RouterConfig::default()
    })
    .unwrap_err();
    assert!(err.to_string().contains("configured with 1 shard"), "{err}");

    for handle in handles {
        handle.shutdown_and_join();
    }
}

/// An upstream speaking a different protocol version: the probe works
/// (`ShardInfo` is version-independent topology discovery), but the
/// client handshake is refused with a structured error naming the
/// upstream version problem — the router never silently downgrades.
#[test]
fn version_mismatch_upstream_surfaces_structurally() {
    // A fake shard: answers the probe, refuses every Hello the way a
    // future/past server generation would.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        // The startup probe, the forwarded attestation round, and the
        // handshake dial each open their own upstream connection.
        for _ in 0..3 {
            let (mut stream, _) = listener.accept().unwrap();
            while let Ok(request) = read_frame::<_, Request>(&mut stream, 1 << 20) {
                match request {
                    Request::Attest { id, nonce } => {
                        // A syntactically valid (but unsigned) quote: the
                        // router forwards it verbatim; the client below
                        // opts out of verification — this test is about
                        // the version refusal, not trust establishment.
                        write_frame(
                            &mut stream,
                            &Response::AttestOk {
                                id,
                                quotes: vec![WireQuote {
                                    shard_index: 0,
                                    member: 0,
                                    measurement: [0u8; 32],
                                    code_version: 1,
                                    timestamp: 0,
                                    nonce,
                                    signature: [0u8; 32],
                                }],
                            },
                        )
                        .unwrap();
                    }
                    Request::ShardInfo { id } => {
                        write_frame(
                            &mut stream,
                            &Response::ShardInfoOk {
                                id,
                                shard: ShardDescriptor {
                                    shard_index: 0,
                                    shard_total: 1,
                                    epoch_duration: EPOCH,
                                    epochs: vec![0],
                                    role: ShardRole::Writer,
                                    store_generation: 0,
                                },
                            },
                        )
                        .unwrap();
                    }
                    Request::Hello { version, .. } => {
                        write_frame(
                            &mut stream,
                            &Response::Error {
                                id: CONNECTION_LEVEL_ID,
                                error: concealer_server::WireError::new(
                                    ErrorCode::UnsupportedVersion,
                                    format!(
                                        "shard speaks protocol {}, router sent {version}",
                                        PROTOCOL_VERSION + 1
                                    ),
                                ),
                            },
                        )
                        .unwrap();
                        break;
                    }
                    _ => break,
                }
            }
        }
    });

    let handler = RouterHandler::probe(RouterConfig {
        shards: vec![addr.to_string()],
        ..RouterConfig::default()
    })
    .expect("probe succeeds: topology discovery is version-independent");
    let router = Server::with_handler(Arc::new(handler), ServerConfig::default())
        .spawn()
        .unwrap();

    let err = ClientBuilder::new(router.local_addr())
        .credential(7, [0u8; 32])
        .client_name("future")
        .trust_policy(TrustPolicy::allow_unattested())
        .connect()
        .unwrap_err();
    match err {
        ClientError::Handshake(ref m) => {
            assert!(m.contains("unsupported_version"), "{m}");
            assert!(m.contains("shard 0"), "{m}");
        }
        other => panic!("expected a structured handshake refusal, got {other:?}"),
    }

    router.shutdown_and_join();
    fake.join().unwrap();
}

// ---------------------------------------------------------------------------
// Replica sets: one writer + one read replica sharing a durable store root.
// ---------------------------------------------------------------------------

/// A scratch store root under the system temp dir, removed on drop.
struct TempRoot(std::path::PathBuf);

impl TempRoot {
    fn new(tag: &str) -> TempRoot {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "concealer-replica-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        TempRoot(path)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Drive the replica's refresh path until it has absorbed `epoch` from
/// the shared store (what the `--refresh-ms` loop does in the binary).
fn absorb_until(replica: &concealer_core::ConcealerSystem, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        // Epochs already on disk at build time are registered by
        // assembly itself; refresh picks up everything committed since.
        replica.refresh_epochs().expect("replica refresh");
        if replica.store().epoch_ids().contains(&epoch) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica never absorbed epoch {epoch}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Spawn a 1-shard replica set on `root`: a writer (which performs the
/// demo ingest of epoch 0) and a read replica that has absorbed it, plus
/// a router fronting the pair as one comma-separated member list.
/// Returns the member systems too, so tests can drive the replica's
/// refresh path deterministically.
#[allow(clippy::type_complexity)]
fn spawn_replicated_deployment(
    root: &std::path::Path,
    router_config: RouterConfig,
) -> (
    ServerHandle,
    ServerHandle,
    ServerHandle,
    Arc<concealer_core::ConcealerSystem>,
    UserHandle,
) {
    let (writer_system, user, _records) = demo_system_replica(HOURS, SEED, None, root, true);
    let writer = Server::new(Arc::new(writer_system), ServerConfig::default())
        .spawn()
        .expect("bind writer");

    let (replica_system, _user, _records) = demo_system_replica(HOURS, SEED, None, root, false);
    let replica_system = Arc::new(replica_system);
    absorb_until(&replica_system, 0);
    let replica = Server::new(Arc::clone(&replica_system), ServerConfig::default())
        .spawn()
        .expect("bind replica");

    let handler = RouterHandler::probe(RouterConfig {
        shards: vec![format!("{},{}", writer.local_addr(), replica.local_addr())],
        ..router_config
    })
    .expect("probe replica set");
    let router = Server::with_handler(Arc::new(handler), ServerConfig::default())
        .spawn()
        .expect("bind router");
    (writer, replica, router, replica_system, user)
}

/// Reads round-robin across the replica set: every answer is
/// bit-identical to the single-process oracle, both members serve
/// partials, and the router knows which member is the writer.
#[test]
fn replicated_reads_balance_across_members_bit_identically() {
    let root = TempRoot::new("balance");
    let (writer, replica, router, _replica_system, user) =
        spawn_replicated_deployment(&root.0, RouterConfig::default());
    let mut conn = connect_user(router.local_addr(), &user, "balanced").unwrap();
    let (oracle_system, oracle_user) = oracle_with_extra_epochs(0);
    let oracle = oracle_system.session(&oracle_user);

    let workload = demo_workload(HOURS);
    let mix = server_request_mix(&workload, SEED + 9, 16, 4);
    for request in &mix {
        match request {
            ServerRequest::Query(query, options) => {
                let got = conn.execute_with(query, *options).expect("routed query");
                let want = oracle.execute_with(query, *options).expect("oracle");
                assert_eq!(wire_bytes(&got), wire_bytes(&want));
            }
            ServerRequest::Batch(queries, options) => {
                let got = conn
                    .execute_batch_with(queries, *options)
                    .expect("routed batch");
                let want = oracle.clone().with_options(*options).execute_batch(queries);
                for (g, w) in got.iter().zip(&want) {
                    let g = g.as_ref().expect("routed batch entry");
                    let w = w.as_ref().expect("oracle batch entry");
                    assert_eq!(wire_bytes(g), wire_bytes(w));
                }
            }
        }
    }

    // Both members carried read traffic, and the roles are visible.
    let stats = conn.router_stats().expect("router stats");
    assert_eq!(stats.shards.len(), 2, "one ShardLoad per member");
    let mut writers = 0;
    for load in &stats.shards {
        assert_eq!(load.shard_index, 0);
        assert!(
            load.requests_forwarded > 0,
            "member {} ({}) never served",
            load.member,
            load.addr
        );
        if load.writer {
            writers += 1;
            assert_eq!(load.member, 0, "probe found the writer at member 0");
        }
    }
    assert_eq!(writers, 1, "exactly one writer per set");

    conn.close().unwrap();
    router.shutdown_and_join();
    writer.shutdown_and_join();
    replica.shutdown_and_join();
}

/// Kill the read replica mid-load: reads fail over to the writer with
/// no divergence and no unstructured failure — and after the replica
/// rejoins on the same address, the router resumes using it.
#[test]
fn replica_kill_mid_load_fails_over_and_recovers() {
    let root = TempRoot::new("replica-kill");
    let (writer, replica, router, replica_system, user) = spawn_replicated_deployment(
        &root.0,
        RouterConfig {
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(500),
            ..RouterConfig::default()
        },
    );
    let mut conn = connect_user(router.local_addr(), &user, "replica-kill").unwrap();
    let query = Query::count().at_dims([4]).between(0, EPOCH - 1);
    let before = wire_bytes(&conn.execute(&query).expect("pre-kill query"));

    // Kill the replica out from under the router.
    let replica_addr = replica.local_addr();
    drop(replica_system);
    replica.shutdown_and_join();

    // Reads keep being served (by the writer): bit-identical, with at
    // worst a structured shard_unavailable while the router notices.
    let mut served = 0;
    for _ in 0..10 {
        match conn.execute(&query) {
            Ok(answer) => {
                assert_eq!(wire_bytes(&answer), before, "failover answer diverged");
                served += 1;
            }
            Err(ClientError::Server(ref e)) if e.code == ErrorCode::ShardUnavailable => {}
            Err(other) => panic!("only structured errors are acceptable: {other:?}"),
        }
    }
    assert!(served > 0, "no read survived the replica kill");

    // Rejoin: a fresh replica on the same address re-absorbs the store.
    let (rejoined_system, _user, _records) = demo_system_replica(HOURS, SEED, None, &root.0, false);
    let rejoined_system = Arc::new(rejoined_system);
    absorb_until(&rejoined_system, 0);
    let deadline = Instant::now() + Duration::from_secs(10);
    let rejoined = loop {
        match Server::new(
            Arc::clone(&rejoined_system),
            ServerConfig {
                bind: SocketAddr::from(([127, 0, 0, 1], replica_addr.port())),
                ..ServerConfig::default()
            },
        )
        .spawn()
        {
            Ok(handle) => break handle,
            Err(e) if Instant::now() < deadline => {
                eprintln!("rebind pending: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => panic!("could not rebind replica address: {e}"),
        }
    };

    // The router reconnects (round-robin lands on the rejoined member
    // again once its backoff expires) and answers stay bit-identical.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let answer = conn.execute(&query).expect("post-rejoin query");
        assert_eq!(wire_bytes(&answer), before, "post-rejoin answer diverged");
        let stats = conn.router_stats().expect("router stats");
        let member1 = stats
            .shards
            .iter()
            .find(|l| l.member == 1)
            .expect("member 1 listed");
        if member1.available {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never took the rejoined replica back"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    conn.close().unwrap();
    router.shutdown_and_join();
    writer.shutdown_and_join();
    rejoined.shutdown_and_join();
}

/// Kill the **writer** mid-deployment: the next routed ingest promotes
/// the replica over the wire (store re-open, no key material moves),
/// lands on the new writer, and answers before and after the promotion
/// are bit-identical — zero divergence across the failover.
#[test]
fn writer_kill_promotes_replica_with_zero_divergence() {
    let root = TempRoot::new("writer-kill");
    let (writer, replica, router, replica_system, user) = spawn_replicated_deployment(
        &root.0,
        RouterConfig {
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(500),
            ..RouterConfig::default()
        },
    );
    let mut conn = connect_user(router.local_addr(), &user, "writer-kill").unwrap();

    // Routed ingest of epoch 1 lands on the writer; the replica absorbs
    // it through the shared store before serving reads that touch it.
    let records = demo_epoch_records(HOURS, SEED, EPOCH);
    assert!(conn.ingest_epoch(EPOCH, &records).expect("routed ingest") > 0);
    absorb_until(&replica_system, EPOCH);

    let spanning = Query::count().at_dims([4]).between(0, 2 * EPOCH - 1);
    let before = wire_bytes(&conn.execute(&spanning).expect("pre-kill query"));

    // Kill the writer. Its store handle dies with it; the replica (and
    // the shared root) live on.
    writer.shutdown_and_join();

    // The next ingest finds the writer dead, promotes the replica over
    // the wire, and lands there — one structured round, no divergence.
    let records = demo_epoch_records(HOURS, SEED, 2 * EPOCH);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match conn.ingest_epoch(2 * EPOCH, &records) {
            Ok(rows) => {
                assert!(rows > 0);
                break;
            }
            Err(ClientError::Server(ref e)) if e.code == ErrorCode::ShardUnavailable => {
                assert!(
                    Instant::now() < deadline,
                    "ingest never failed over to the promoted replica"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(other) => panic!("only structured errors are acceptable: {other:?}"),
        }
    }

    // The promotion is visible in the router's accounting…
    let stats = conn.router_stats().expect("router stats");
    let promoted = stats
        .shards
        .iter()
        .find(|l| l.member == 1)
        .expect("member 1 listed");
    assert!(
        promoted.writer,
        "member 1 must be the writer after failover"
    );
    let demoted = stats
        .shards
        .iter()
        .find(|l| l.member == 0)
        .expect("member 0 listed");
    assert!(!demoted.writer, "the dead member cannot stay writer");

    // …and invisible in the answers: pre-kill bytes replay identically,
    // and the post-promotion ingest serves alongside the old epochs
    // exactly like a single process that ingested all three.
    assert_eq!(
        wire_bytes(&conn.execute(&spanning).expect("post-promotion query")),
        before,
        "answers diverged across the failover"
    );
    let (oracle_system, oracle_user) = oracle_with_extra_epochs(2);
    let oracle = oracle_system.session(&oracle_user);
    let full = Query::count().at_dims([4]).between(0, 3 * EPOCH - 1);
    let got = conn.execute(&full).expect("spanning query");
    let want = oracle.execute(&full).expect("oracle spanning");
    assert_eq!(wire_bytes(&got), wire_bytes(&want));
    assert_eq!(got.epochs_touched as u64, 3);

    conn.close().unwrap();
    router.shutdown_and_join();
    replica.shutdown_and_join();
}
