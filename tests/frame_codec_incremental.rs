//! Frame-codec robustness: the incremental [`FrameDecoder`] the event
//! server feeds from readiness events must agree with the blocking
//! whole-stream path (`serde::frame::read_frame`) **byte for byte**, no
//! matter how the stream is sliced — one byte at a time, random split
//! points, truncated mid-frame, or carrying oversized frames.
//!
//! The oracle is an event trace: each path reduces a byte stream to the
//! same sequence of `ok:<payload bytes>` / `toolarge:<len>:<max>` events
//! plus a final end-of-stream classification (`closed` between frames,
//! `torn` inside one). Any divergence — a frame decoded differently, a
//! lost or duplicated `TooLarge`, a misclassified EOF — fails the
//! comparison.

use std::io::Cursor;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::frame::{read_frame, write_frame, FrameDecoder, FrameError};

/// Frame-size cap used throughout; small enough that oversized frames are
/// cheap to generate.
const MAX_LEN: usize = 1024;

/// A payload with fixed- and variable-size parts so encoded frames range
/// from a few bytes to past [`MAX_LEN`].
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
struct Item {
    id: u64,
    tag: u8,
    payload: Vec<u8>,
}

fn random_items(rng: &mut StdRng, count: usize, oversize: bool) -> Vec<Item> {
    (0..count)
        .map(|i| {
            let len = if oversize && rng.gen_range(0..3usize) == 0 {
                MAX_LEN + rng.gen_range(1..512usize)
            } else {
                rng.gen_range(0..200usize)
            };
            Item {
                id: i as u64,
                tag: rng.gen(),
                payload: (0..len).map(|_| rng.gen()).collect(),
            }
        })
        .collect()
}

fn encode_stream(items: &[Item]) -> Vec<u8> {
    let mut out = Vec::new();
    for item in items {
        write_frame(&mut out, item).expect("encode item frame");
    }
    out
}

/// Split `total` bytes into random chunk sizes (at least one chunk, so an
/// empty stream still exercises the drain-after-feed path).
fn random_chunks(rng: &mut StdRng, total: usize) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut left = total;
    while left > 0 {
        let take = rng.gen_range(1..=left.min(97));
        chunks.push(take);
        left -= take;
    }
    if chunks.is_empty() {
        chunks.push(0);
    }
    chunks
}

/// Reduce a stream to events via the blocking reader, the reference path
/// the threaded server uses.
fn blocking_events<T: serde::Serialize + serde::DeserializeOwned>(
    stream: &[u8],
    max_len: usize,
) -> Vec<String> {
    let mut cursor = Cursor::new(stream);
    let mut events = Vec::new();
    loop {
        match read_frame::<_, T>(&mut cursor, max_len) {
            Ok(value) => events.push(format!("ok:{:?}", serde::bin::to_bytes(&value))),
            Err(FrameError::TooLarge { len, max }) => events.push(format!("toolarge:{len}:{max}")),
            Err(FrameError::Decode(_)) => events.push("decode-error".to_string()),
            Err(FrameError::Closed) => {
                events.push("closed".to_string());
                return events;
            }
            Err(FrameError::Io(e)) => {
                assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::UnexpectedEof,
                    "cursor reads only fail by running dry"
                );
                events.push("torn".to_string());
                return events;
            }
        }
    }
}

/// Reduce the same stream to events via the incremental decoder, feeding
/// it in the given chunk sizes and draining after every chunk.
fn incremental_events<T: serde::Serialize + serde::DeserializeOwned>(
    stream: &[u8],
    max_len: usize,
    chunks: &[usize],
) -> Vec<String> {
    let mut decoder = FrameDecoder::new(max_len);
    let mut events = Vec::new();
    let mut pos = 0;
    for &take in chunks {
        let end = (pos + take).min(stream.len());
        decoder.extend_from_slice(&stream[pos..end]);
        pos = end;
        loop {
            match decoder.try_decode::<T>() {
                Ok(Some(value)) => {
                    events.push(format!("ok:{:?}", serde::bin::to_bytes(&value)));
                }
                Ok(None) => break,
                Err(FrameError::TooLarge { len, max }) => {
                    events.push(format!("toolarge:{len}:{max}"));
                }
                Err(FrameError::Decode(_)) => events.push("decode-error".to_string()),
                Err(e @ (FrameError::Io(_) | FrameError::Closed)) => {
                    panic!("push decoder performed I/O? {e}");
                }
            }
        }
    }
    assert_eq!(pos, stream.len(), "chunks must cover the whole stream");
    // EOF classification: `mid_frame` is the event loop's stand-in for the
    // blocking path's Closed-vs-UnexpectedEof distinction.
    events.push(
        if decoder.mid_frame() {
            "torn"
        } else {
            "closed"
        }
        .to_string(),
    );
    events
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Hardest slicing: every byte arrives in its own readiness event.
    #[test]
    fn byte_at_a_time_matches_whole_stream_decode(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..8usize);
        let stream = encode_stream(&random_items(&mut rng, count, false));
        let ones = vec![1; stream.len()];
        prop_assert_eq!(
            incremental_events::<Item>(&stream, MAX_LEN, &ones),
            blocking_events::<Item>(&stream, MAX_LEN)
        );
    }

    /// Random split points, including splits inside length prefixes.
    #[test]
    fn random_split_points_match_whole_stream_decode(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..10usize);
        let stream = encode_stream(&random_items(&mut rng, count, false));
        let chunks = random_chunks(&mut rng, stream.len());
        prop_assert_eq!(
            incremental_events::<Item>(&stream, MAX_LEN, &chunks),
            blocking_events::<Item>(&stream, MAX_LEN)
        );
    }

    /// Truncating the stream anywhere — between frames, inside a prefix,
    /// inside a payload — classifies EOF identically on both paths.
    #[test]
    fn truncation_classification_matches_blocking_path(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..6usize);
        let stream = encode_stream(&random_items(&mut rng, count, false));
        let cut = rng.gen_range(0..=stream.len());
        let truncated = &stream[..cut];
        let chunks = random_chunks(&mut rng, truncated.len());
        prop_assert_eq!(
            incremental_events::<Item>(truncated, MAX_LEN, &chunks),
            blocking_events::<Item>(truncated, MAX_LEN)
        );
    }

    /// Oversized frames: reported exactly once with the same `len`/`max`,
    /// stream realigned, neighbors decoded — including when the stream is
    /// then truncated inside the skipped region.
    #[test]
    fn oversized_frames_match_blocking_path(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(2..8usize);
        let stream = encode_stream(&random_items(&mut rng, count, true));
        let chunks = random_chunks(&mut rng, stream.len());
        prop_assert_eq!(
            incremental_events::<Item>(&stream, MAX_LEN, &chunks),
            blocking_events::<Item>(&stream, MAX_LEN)
        );

        let cut = rng.gen_range(0..=stream.len());
        let truncated = &stream[..cut];
        let chunks = random_chunks(&mut rng, truncated.len());
        prop_assert_eq!(
            incremental_events::<Item>(truncated, MAX_LEN, &chunks),
            blocking_events::<Item>(truncated, MAX_LEN)
        );
    }
}

/// The same agreement on real protocol frames, byte at a time — the exact
/// shape the event server decodes off the wire.
#[test]
fn wire_requests_survive_byte_at_a_time_delivery() {
    use concealer_server::{Request, PROTOCOL_VERSION};

    let requests = vec![
        Request::Hello {
            version: PROTOCOL_VERSION,
            user_id: 7,
            credential: [0xAB; 32],
            client_name: "frame-codec-test".repeat(8),
        },
        Request::Stats { id: 1 },
        Request::Shutdown { id: 2 },
        Request::Goodbye,
    ];
    let mut stream = Vec::new();
    for request in &requests {
        write_frame(&mut stream, request).expect("encode request");
    }

    let ones = vec![1; stream.len()];
    let incremental = incremental_events::<Request>(&stream, MAX_LEN, &ones);
    let blocking = blocking_events::<Request>(&stream, MAX_LEN);
    assert_eq!(incremental, blocking);
    assert_eq!(incremental.len(), requests.len() + 1);
    assert_eq!(incremental.last().map(String::as_str), Some("closed"));
}
