//! Cross-crate end-to-end tests: data provider → storage → enclave → query
//! engine, over the synthetic workload generators, driven through the
//! `Session` API.

use concealer_baselines::cleartext::record_matches;
use concealer_core::query::AnswerValue;
use concealer_core::{Aggregate, ExecOptions, Query, RangeMethod};
use concealer_examples::demo_system;
use concealer_workloads::{QueryWorkload, TpchConfig, TpchGenerator, TpchIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ground_truth_count(records: &[concealer_core::Record], q: &Query) -> u64 {
    records
        .iter()
        .filter(|r| record_matches(r, &q.predicate))
        .count() as u64
}

#[test]
fn wifi_workload_q1_to_q5_match_ground_truth_for_all_methods() {
    let (system, user, records) = demo_system(2, 101);
    let workload = QueryWorkload {
        locations: 30,
        devices: (1000..1300).collect(),
        time_extent: (0, 2 * 3600),
    };
    let mut rng = StdRng::seed_from_u64(102);

    for method in [
        RangeMethod::Bpb,
        RangeMethod::Ebpb,
        RangeMethod::WinSecRange,
    ] {
        let session = system
            .session(&user)
            .with_options(ExecOptions::with_method(method));
        for (name, query) in workload.all_range_queries(25 * 60, &mut rng) {
            let answer = session
                .execute(&query)
                .unwrap_or_else(|e| panic!("{name} failed under {method:?}: {e}"));
            match (&query.aggregate, &answer.value) {
                (Aggregate::Count, AnswerValue::Count(c)) => {
                    assert_eq!(
                        *c,
                        ground_truth_count(&records, &query),
                        "{name} {method:?}"
                    );
                }
                (Aggregate::TopKLocations { .. }, AnswerValue::LocationCounts(pairs)) => {
                    // Counts must match ground truth for every reported location.
                    for (loc, count) in pairs {
                        let expected = records
                            .iter()
                            .filter(|r| r.dims == [*loc] && record_matches(r, &query.predicate))
                            .count() as u64;
                        assert_eq!(*count, expected, "{name} {method:?} loc {loc}");
                    }
                }
                (
                    Aggregate::LocationsWithAtLeast { threshold },
                    AnswerValue::LocationCounts(pairs),
                ) => {
                    for (_, count) in pairs {
                        assert!(*count >= *threshold, "{name} {method:?}");
                    }
                }
                (Aggregate::CollectRows, AnswerValue::Rows(rows)) => {
                    assert_eq!(
                        rows.len() as u64,
                        ground_truth_count(&records, &query),
                        "{name} {method:?}"
                    );
                }
                (agg, val) => panic!("{name}: unexpected combination {agg:?} / {val:?}"),
            }
        }
    }
}

#[test]
fn point_queries_across_many_targets_match_ground_truth() {
    let (system, user, records) = demo_system(2, 103);
    let session = system.session(&user);
    for r in records.iter().step_by(97) {
        let query = Query::count().at_dims(r.dims.clone()).at(r.time);
        let answer = session.execute(&query).expect("point query");
        // The point filter covers the record's whole time granule.
        let granule = r.time / 60;
        let expected = records
            .iter()
            .filter(|x| x.dims == r.dims && x.time / 60 == granule)
            .count() as u64;
        assert_eq!(answer.value, AnswerValue::Count(expected));
        assert!(answer.verified);
    }
}

#[test]
fn tpch_two_d_and_four_d_indexes_answer_aggregations() {
    for index in [TpchIndex::TwoD, TpchIndex::FourD] {
        let generator = TpchGenerator::new(TpchConfig::tiny(index));
        let mut rng = StdRng::seed_from_u64(104);
        let records = generator.generate_records(&mut rng);
        let epoch_duration = generator.epoch_duration();

        let config = concealer_core::SystemConfig {
            grid: concealer_core::GridShape {
                dim_buckets: match index {
                    TpchIndex::TwoD => vec![50, 7],
                    TpchIndex::FourD => vec![25, 10, 5, 7],
                },
                time_subintervals: 1,
                num_cell_ids: 40,
            },
            epoch_duration,
            time_granularity: 1,
            fake_strategy: concealer_core::FakeTupleStrategy::SimulateBins,
            verify_integrity: true,
            oblivious: false,
            winsec_rows_per_interval: 1,
        };
        let mut system = concealer_examples::build_system(config, &mut rng);
        let user = system.register_user(1, vec![], true);
        system.ingest_epoch(0, &records, &mut rng).unwrap();

        let target = &records[55];
        let session = system.session(&user);
        for aggregate in [
            Aggregate::Count,
            Aggregate::Sum { attr: 1 },
            Aggregate::Max { attr: 0 },
        ] {
            let query = Query {
                aggregate,
                predicate: concealer_core::Predicate::Range {
                    dims: Some(target.dims.clone()),
                    observation: None,
                    time_start: 0,
                    time_end: epoch_duration - 1,
                },
            };
            let answer = session.execute(&query).expect("tpch query");
            let matching: Vec<&concealer_core::Record> = records
                .iter()
                .filter(|r| record_matches(r, &query.predicate))
                .collect();
            match (aggregate, answer.value) {
                (Aggregate::Count, AnswerValue::Count(c)) => {
                    assert_eq!(c, matching.len() as u64);
                }
                (Aggregate::Sum { attr }, AnswerValue::Number(sum)) => {
                    let expected: u64 = matching.iter().map(|r| r.payload[attr]).sum();
                    assert_eq!(sum, Some(expected));
                }
                (Aggregate::Max { attr }, AnswerValue::Number(max)) => {
                    assert_eq!(max, matching.iter().map(|r| r.payload[attr]).max());
                }
                (agg, val) => panic!("unexpected {agg:?} / {val:?}"),
            }
        }
    }
}

#[test]
fn multi_epoch_ingest_and_query_with_forward_privacy() {
    use concealer_workloads::{WifiConfig, WifiGenerator};

    let mut rng = StdRng::seed_from_u64(105);
    let mut system = concealer_examples::build_system(concealer_examples::demo_config(1), &mut rng);
    let user = system.register_user(1, vec![], true);
    let generator = WifiGenerator::new(WifiConfig::tiny());

    let mut all_records = Vec::new();
    for epoch in 0..3u64 {
        let start = epoch * 3600;
        let records = generator.generate_epoch(start, 3600, &mut rng);
        all_records.extend(records.clone());
        system.ingest_epoch(start, &records, &mut rng).unwrap();
    }

    let query = Query::count().at_dims([5]).between(0, 3 * 3600 - 1);
    let expected = ground_truth_count(&all_records, &query);
    let session = system.session(&user).with_options(ExecOptions {
        method: RangeMethod::Bpb,
        forward_private: true,
        ..ExecOptions::default()
    });
    // Repeated execution keeps returning the right answer even though the
    // underlying ciphertexts are re-encrypted after every run.
    for _ in 0..3 {
        let answer = session.execute(&query).unwrap();
        assert_eq!(answer.value, AnswerValue::Count(expected));
        assert_eq!(answer.epochs_touched, 3);
    }
    for epoch in 0..3u64 {
        assert!(system.store().rewrite_count(epoch * 3600).unwrap() > 0);
    }
}

#[test]
fn oblivious_and_plain_deployments_agree_on_answers() {
    use concealer_workloads::{WifiConfig, WifiGenerator};

    let mut rng = StdRng::seed_from_u64(106);
    let generator = WifiGenerator::new(WifiConfig::tiny());
    let records = generator.generate_epoch(0, 3600, &mut rng);

    let mut plain_cfg = concealer_examples::demo_config(1);
    plain_cfg.oblivious = false;
    let mut obliv_cfg = concealer_examples::demo_config(1);
    obliv_cfg.oblivious = true;

    let master = concealer_crypto::MasterKey::from_bytes([17u8; 32]);
    let mut plain = concealer_examples::build_system_with_master(plain_cfg, master.clone(), 1);
    let mut obliv = concealer_examples::build_system_with_master(obliv_cfg, master, 1);
    let pu = plain.register_user(1, vec![], true);
    let ou = obliv.register_user(1, vec![], true);
    plain
        .ingest_epoch(0, &records, &mut StdRng::seed_from_u64(7))
        .unwrap();
    obliv
        .ingest_epoch(0, &records, &mut StdRng::seed_from_u64(7))
        .unwrap();

    let workload = QueryWorkload {
        locations: 16,
        devices: vec![],
        time_extent: (0, 3600),
    };
    let plain_session = plain.session(&pu);
    let obliv_session = obliv.session(&ou);
    let mut qrng = StdRng::seed_from_u64(108);
    for _ in 0..5 {
        let q = workload.q1(900, &mut qrng);
        let a = plain_session.execute(&q).unwrap();
        let b = obliv_session.execute(&q).unwrap();
        assert_eq!(a.value, b.value);
    }
}
