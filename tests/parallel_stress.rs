//! Concurrency stress test: one `ConcealerSystem` hammered from eight
//! threads with a mix of ingest, point queries, range queries (BPB and
//! eBPB) and batch executions (sequential and parallel).
//!
//! Asserts, per the PR-3 parallel-execution contract:
//!
//! * **no deadlock** — the test completes (every lock in the system is
//!   acquired in the engine→store order, so the mixed workload cannot
//!   cycle);
//! * **no answer divergence** — every query answer produced under
//!   concurrency equals the sequential oracle computed up front (query
//!   threads only touch the pre-ingested epochs, ingest threads only add
//!   epochs at disjoint far-future windows);
//! * **monotone `answer_stats`** — each thread's samples of epoch and
//!   stored-row counts never decrease, and the final counts equal the
//!   pre-ingested epochs plus every concurrently ingested one.

use concealer_core::{
    ExecOptions, FakeTupleStrategy, GridShape, Query, QueryAnswer, RangeMethod, Record,
    SecureIndex, SystemConfig, UserHandle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPOCH_SECONDS: u64 = 3600;
/// Ingest threads write epochs starting here — far beyond every query's
/// time span, so concurrent ingest never changes any query's answer.
const FUTURE_BASE: u64 = 1_000 * EPOCH_SECONDS;

fn stress_config() -> SystemConfig {
    SystemConfig {
        grid: GridShape {
            dim_buckets: vec![6],
            time_subintervals: 8,
            num_cell_ids: 16,
        },
        epoch_duration: EPOCH_SECONDS,
        time_granularity: 60,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: true,
        oblivious: false,
        winsec_rows_per_interval: 2,
    }
}

fn workload(epoch_start: u64, n: u64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::spatial(i % 6, epoch_start + (i * 13) % EPOCH_SECONDS, 100 + i % 5))
        .collect()
}

/// The fixed query mix every query thread runs, all over epochs 0 and 1.
fn oracle_queries(records: &[Record]) -> Vec<(Query, ExecOptions)> {
    let bpb = ExecOptions::with_method(RangeMethod::Bpb);
    let ebpb = ExecOptions::with_method(RangeMethod::Ebpb);
    vec![
        (
            Query::count()
                .at_dims(records[17].dims.clone())
                .at(records[17].time),
            bpb,
        ),
        (Query::count().at_dims([2]).between(0, 1799), bpb),
        (Query::sum(0).at_dims([4]).between(900, 5399), bpb),
        (Query::count().at_dims([1]).between(0, 7199), ebpb),
        (Query::top_k_locations(3).between(0, 7199), bpb),
    ]
}

#[test]
fn eight_threads_mixed_ingest_and_queries_agree_with_sequential_oracle() {
    // Force the batch pool even on single-core hosts, where the engine
    // would otherwise (correctly) fall back to the sequential loop.
    std::env::set_var("CONCEALER_FORCE_THREADS", "1");
    let mut rng = StdRng::seed_from_u64(2024);
    let mut system = concealer_examples::build_system(stress_config(), &mut rng);
    let user: UserHandle = system.register_user(1, vec![100, 101, 102, 103, 104], true);
    let records0 = workload(0, 300);
    let records1 = workload(EPOCH_SECONDS, 300);
    system.ingest_epoch(0, &records0, &mut rng).unwrap();
    system
        .ingest_epoch(EPOCH_SECONDS, &records1, &mut rng)
        .unwrap();

    let mut all = records0;
    all.extend(records1);
    let mix = oracle_queries(&all);

    // Sequential oracle, computed before any concurrency starts.
    let session = system.session(&user);
    let oracle: Vec<QueryAnswer> = mix
        .iter()
        .map(|(q, opts)| session.execute_with(q, *opts).expect("oracle"))
        .collect();
    let batch_queries: Vec<Query> = mix.iter().map(|(q, _)| q.clone()).collect();
    let batch_oracle: Vec<QueryAnswer> = system
        .session(&user)
        .with_options(ExecOptions::with_method(RangeMethod::Bpb))
        .execute_batch(&batch_queries)
        .into_iter()
        .map(|r| r.expect("batch oracle"))
        .collect();

    const INGEST_THREADS: u64 = 2;
    const QUERY_THREADS: u64 = 6;
    const EPOCHS_PER_INGESTER: u64 = 3;
    const ITERS_PER_QUERIER: usize = 4;

    let system = &system;
    let user = &user;
    let mix = &mix;
    let oracle = &oracle;
    let batch_queries = &batch_queries;
    let batch_oracle = &batch_oracle;

    std::thread::scope(|s| {
        for t in 0..INGEST_THREADS {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7_000 + t);
                for k in 0..EPOCHS_PER_INGESTER {
                    let start = FUTURE_BASE + (t * EPOCHS_PER_INGESTER + k) * EPOCH_SECONDS;
                    let records = workload(start, 120);
                    system
                        .ingest_epoch(start, &records, &mut rng)
                        .expect("concurrent ingest");
                }
            });
        }
        for t in 0..QUERY_THREADS {
            s.spawn(move || {
                let mut last_epochs = 0usize;
                let mut last_rows = 0usize;
                for iter in 0..ITERS_PER_QUERIER {
                    // Point + range queries, each checked against the oracle.
                    let session = system.session(user);
                    for (i, (query, opts)) in mix.iter().enumerate() {
                        let answer = session
                            .execute_with(query, *opts)
                            .expect("concurrent execute");
                        assert_eq!(
                            &answer, &oracle[i],
                            "thread {t} iter {iter} query {i} diverged"
                        );
                    }
                    // Batches: odd threads parallel, even threads
                    // sequential; parallel threads additionally rotate
                    // through the fetch-stage chunk sizes (auto,
                    // single-bin, pairs, oversized) so every scheduling
                    // shape runs under contention.
                    let parallelism = if t % 2 == 1 { 4 } else { 1 };
                    let fetch_chunk = [0usize, 1, 2, 8][(t as usize + iter) % 4];
                    let answers: Vec<QueryAnswer> = system
                        .session(user)
                        .with_options(
                            ExecOptions::with_method(RangeMethod::Bpb)
                                .with_parallelism(parallelism)
                                .with_fetch_chunk(fetch_chunk),
                        )
                        .execute_batch(batch_queries)
                        .into_iter()
                        .map(|r| r.expect("concurrent batch"))
                        .collect();
                    assert_eq!(
                        &answers, batch_oracle,
                        "thread {t} iter {iter} batch diverged"
                    );
                    // answer_stats must be monotone under concurrent ingest.
                    let stats = SecureIndex::answer_stats(system);
                    assert!(
                        stats.epochs >= last_epochs && stats.epochs >= 2,
                        "epoch count went backwards: {} < {last_epochs}",
                        stats.epochs
                    );
                    assert!(
                        stats.rows_stored >= last_rows,
                        "stored rows went backwards: {} < {last_rows}",
                        stats.rows_stored
                    );
                    last_epochs = stats.epochs;
                    last_rows = stats.rows_stored;
                }
            });
        }
    });

    // All ingested epochs landed exactly once.
    let expected_epochs = 2 + (INGEST_THREADS * EPOCHS_PER_INGESTER) as usize;
    assert_eq!(SecureIndex::answer_stats(system).epochs, expected_epochs);
    assert_eq!(system.store().epoch_count(), expected_epochs);

    // The system still answers correctly after the storm.
    let session = system.session(user);
    for (i, (query, opts)) in mix.iter().enumerate() {
        assert_eq!(
            session.execute_with(query, *opts).unwrap(),
            oracle[i],
            "post-storm query {i}"
        );
    }
}
