//! Graceful-drain integration tests: a shutdown signalled while clients
//! are connected must complete in-flight requests (their replies are
//! written before the socket dies), close idle connections with a clean
//! end-of-stream (a FIN at a frame boundary, never a reset mid-frame),
//! and bring the serve loop to a graceful exit.
//!
//! Like `server_loopback`, this suite constructs the server through
//! `ServerConfig::default()`, so the `CONCEALER_TEST_SERVER_MODE` harness
//! hook runs the whole file against either serving core — the threaded
//! reference implementation and the readiness-driven event core must
//! drain observably identically. The last test exercises a drain
//! guarantee only the event core makes (every *pipelined* dispatched
//! request replies) and skips itself on the threaded core.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use concealer_client::{ClientBuilder, ClientError, Session};
use concealer_core::{ConcealerSystem, Query, QueryAnswer, UserHandle};
use concealer_examples::{demo_system, demo_workload};
use concealer_server::{Request, Response, Server, ServerConfig, ServerMode, PROTOCOL_VERSION};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::frame::{read_frame, write_frame, FrameError};

const HOURS: u64 = 2;
const SEED: u64 = 7_700;

/// How long the tests give the server to read and dispatch a request that
/// has already been written to a loopback socket before signalling
/// shutdown. The serving thread is parked waiting for exactly those
/// bytes, so this is generous scheduling headroom, not a tuned race.
const DISPATCH_WINDOW: Duration = Duration::from_millis(300);

/// Safety net on raw idle streams: a drain bug should fail an assertion
/// after this timeout instead of hanging the suite on a blocked read.
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(10);

fn spawn_demo_server() -> (
    Arc<ConcealerSystem>,
    UserHandle,
    concealer_server::ServerHandle,
) {
    let (system, user, _records) = demo_system(HOURS, SEED);
    let system = Arc::new(system);
    let handle = Server::new(Arc::clone(&system), ServerConfig::default())
        .spawn()
        .expect("bind loopback");
    (system, user, handle)
}

fn wire_bytes(answer: &QueryAnswer) -> Vec<u8> {
    serde::bin::to_bytes(answer)
}

/// Attest + authenticate with the redesigned client surface.
fn connect_user(
    addr: std::net::SocketAddr,
    user: &UserHandle,
    name: &str,
) -> Result<Session, ClientError> {
    ClientBuilder::new(addr)
        .user(user)
        .client_name(name)
        .connect()
}

/// Open a raw authenticated connection that will sit idle: Hello by hand
/// so the test keeps the bare stream and can observe exactly how the
/// server ends it.
fn idle_stream(addr: std::net::SocketAddr, user: &UserHandle) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect idle");
    stream
        .set_read_timeout(Some(IDLE_READ_TIMEOUT))
        .expect("read timeout");
    // Protocol v4: the pre-auth `Attest` exchange must precede `Hello`.
    write_frame(
        &mut stream,
        &Request::Attest {
            id: 1,
            nonce: [9u8; 32],
        },
    )
    .expect("write attest");
    let reply: Response = read_frame(&mut stream, 1 << 20).expect("read attest reply");
    assert!(matches!(reply, Response::AttestOk { .. }), "{reply:?}");
    write_frame(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            user_id: user.user_id.0,
            credential: user.credential.0,
            client_name: "idler".into(),
        },
    )
    .expect("write hello");
    let reply: Response = read_frame(&mut stream, 1 << 20).expect("read hello reply");
    assert!(matches!(reply, Response::HelloOk(_)), "{reply:?}");
    stream
}

/// A locally signalled shutdown with idle and active connections open:
/// the in-flight reply is still written and matches the oracle, the idle
/// connections see a clean end-of-stream at a frame boundary, the
/// drained connection refuses further use, and the loop exits
/// gracefully.
#[test]
fn drain_completes_in_flight_reply_and_closes_idle_connections() {
    const IDLE: usize = 5;
    let (system, user, handle) = spawn_demo_server();
    let addr = handle.local_addr();
    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(SEED);

    let idlers: Vec<TcpStream> = (0..IDLE).map(|_| idle_stream(addr, &user)).collect();

    let mut active = connect_user(addr, &user, "active").expect("connect active");
    // One full round trip first, so the submit below is the only frame
    // the server still owes this connection.
    let warmup = workload.q1(30 * 60, &mut rng);
    active.execute(&warmup).expect("warm-up query");

    let pending_query = workload.q1(45 * 60, &mut rng);
    let ticket = active
        .submit_execute(&pending_query, None)
        .expect("submit in-flight query");
    std::thread::sleep(DISPATCH_WINDOW);

    handle.signal_shutdown();

    // The drain must still deliver the dispatched reply, bit-identical
    // to the in-process oracle.
    let got = active
        .wait_execute(ticket)
        .expect("in-flight reply survives drain");
    let want = system
        .session(&user)
        .execute(&pending_query)
        .expect("oracle");
    assert_eq!(wire_bytes(&got), wire_bytes(&want));

    // Idle connections end with a FIN at a frame boundary — the codec
    // reports Closed, never a torn frame or a connection reset.
    for mut stream in idlers {
        match read_frame::<_, Response>(&mut stream, 1 << 20) {
            Err(FrameError::Closed) => {}
            other => panic!("idle connection did not close cleanly: {other:?}"),
        }
    }

    let report = handle.join();
    assert!(report.graceful);
    assert_eq!(report.connections_served, (IDLE + 1) as u64);

    // With the server gone the drained connection refuses further use
    // cleanly instead of hanging. (Checked only after the join: a request
    // racing the shutdown signal itself may still be legitimately served
    // in the instant before the drain fences reads.)
    let err = active.execute(&warmup).unwrap_err();
    assert!(
        matches!(err, ClientError::Closed | ClientError::Io(_)),
        "{err}"
    );
}

/// A wire `Shutdown` request: the requester gets its ack, and a query
/// in flight on another connection still redeems during the drain.
#[test]
fn wire_shutdown_acknowledges_then_drains_in_flight_work() {
    let (system, user, handle) = spawn_demo_server();
    let addr = handle.local_addr();
    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(SEED + 1);

    let mut active = connect_user(addr, &user, "active").expect("connect active");
    let warmup = workload.q1(30 * 60, &mut rng);
    active.execute(&warmup).expect("warm-up query");
    let pending_query = workload.q2(40 * 60, 4, &mut rng);
    let ticket = active
        .submit_execute(&pending_query, None)
        .expect("submit in-flight query");
    std::thread::sleep(DISPATCH_WINDOW);

    let mut controller = connect_user(addr, &user, "controller").expect("connect controller");
    controller.shutdown_server().expect("shutdown acknowledged");
    drop(controller);

    let got = active
        .wait_execute(ticket)
        .expect("in-flight reply survives drain");
    let want = system
        .session(&user)
        .execute(&pending_query)
        .expect("oracle");
    assert_eq!(wire_bytes(&got), wire_bytes(&want));

    let report = handle.join();
    assert!(report.graceful);
    assert_eq!(report.connections_served, 2);
}

/// Event core only: *every* pipelined request dispatched before the
/// shutdown replies during the drain, and the tickets redeem out of
/// order. (The threaded core serializes per connection and only
/// guarantees the request it is currently executing, so this test skips
/// itself there.)
#[test]
fn pipelined_in_flight_replies_all_flush_during_drain() {
    if ServerConfig::default().mode != ServerMode::Event {
        eprintln!("skipping: pipelined drain guarantee is event-core-only");
        return;
    }
    const PIPELINED: usize = 6;
    let (system, user, handle) = spawn_demo_server();
    let addr = handle.local_addr();
    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(SEED + 2);

    let idler = idle_stream(addr, &user);

    let mut active = connect_user(addr, &user, "pipeliner").expect("connect active");
    let queries: Vec<Query> = (0..PIPELINED)
        .map(|_| workload.q1(30 * 60, &mut rng))
        .collect();
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| active.submit_execute(q, None).expect("submit"))
        .collect();
    std::thread::sleep(DISPATCH_WINDOW);

    handle.signal_shutdown();

    // Redeem in reverse order: every dispatched reply must have been
    // written before the connection closed.
    let oracle = system.session(&user);
    for (ticket, query) in tickets.into_iter().zip(&queries).rev() {
        let got = active
            .wait_execute(ticket)
            .expect("pipelined reply survives drain");
        let want = oracle.execute(query).expect("oracle");
        assert_eq!(wire_bytes(&got), wire_bytes(&want));
    }

    {
        let mut stream = idler;
        match read_frame::<_, Response>(&mut stream, 1 << 20) {
            Err(FrameError::Closed) => {}
            other => panic!("idle connection did not close cleanly: {other:?}"),
        }
    }

    let report = handle.join();
    assert!(report.graceful);
    assert_eq!(report.connections_served, 2);
}
