//! Workspace smoke test: the quick-start flow from the crate-level doctest
//! of `concealer-core`, kept as a plain integration test so a broken
//! workspace fails loudly even when doctests are skipped.
//!
//! Covers: ingest one epoch → run a range count query → the answer matches
//! cleartext ground truth → every point query fetches the same number of
//! rows (uniform bin sizes, the volume-hiding invariant).

use concealer_core::query::AnswerValue;
use concealer_core::{ConcealerSystem, FakeTupleStrategy, GridShape, Query, Record, SystemConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quickstart_config() -> SystemConfig {
    SystemConfig {
        grid: GridShape {
            dim_buckets: vec![8],
            time_subintervals: 4,
            num_cell_ids: 16,
        },
        epoch_duration: 3_600,
        time_granularity: 60,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: true,
        oblivious: false,
        winsec_rows_per_interval: 2,
    }
}

/// One epoch of (location, time, device-id) readings, as in the doctest.
fn quickstart_records() -> Vec<Record> {
    (0..100)
        .map(|i| Record {
            dims: vec![i % 8],
            time: i * 36,
            payload: vec![1000 + (i % 5)],
        })
        .collect()
}

#[test]
fn quickstart_flow_answers_correctly_with_uniform_bins() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut system = ConcealerSystem::new(quickstart_config(), &mut rng);
    let user = system.register_user(7, vec![1000], true);

    let records = quickstart_records();
    system.ingest_epoch(0, &records, &mut rng).unwrap();

    // "How many observations at location 3 during the first half hour?"
    let session = system.session(&user);
    let query = Query::count().at_dims([3]).between(0, 1_800);
    let answer = session.execute(&query).unwrap();

    // Ground truth at the engine's resolution: predicates match whole time
    // granules (60 s here), so a record at t=1836 falls into granule 30,
    // which the range [0, 1800] covers.
    let expected = records
        .iter()
        .filter(|r| r.dims == [3] && r.time / 60 <= 1_800 / 60)
        .count() as u64;
    assert!(expected > 0, "workload must cover the queried location");
    assert_eq!(answer.value, AnswerValue::Count(expected));
    assert!(answer.verified, "integrity verification must have run");

    // Volume hiding: every point query fetches one full bin, so the fetch
    // volume is identical whether the queried cell is crowded or empty.
    let mut fetch_sizes = Vec::new();
    for record in records.iter().step_by(13) {
        let point = Query::count().at_dims(record.dims.clone()).at(record.time);
        fetch_sizes.push(session.execute(&point).unwrap().rows_fetched);
    }
    assert!(!fetch_sizes.is_empty());
    assert!(
        fetch_sizes.windows(2).all(|w| w[0] == w[1]),
        "point-query fetch sizes must be uniform, got {fetch_sizes:?}"
    );

    // The adversary's own trace agrees (observer-side view of the same).
    let summaries = system.observer().per_query_summaries();
    let observed: Vec<usize> = summaries.iter().map(|s| s.rows_fetched).collect();
    assert!(
        observed.windows(2).skip(1).all(|w| w[0] == w[1]),
        "observer-side fetch volumes must be uniform after the range query, got {observed:?}"
    );
}
