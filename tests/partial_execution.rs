//! Pins the partial-execution contract multi-node serving rests on:
//! `merge_partials(q, execute_partials(q))` must be **bit-identical**
//! (same `serde::bin` encoding) to a plain `execute(q)` on the same
//! system — for every aggregate, every dedup-eligible method, under
//! batches (whose `(epoch, bin)` dedup metadata must survive the
//! partial detour), and in its refusal cases (`NoDataForRange`,
//! forward-private).
//!
//! The router in `concealer-router` is exactly this merge applied to
//! partials that crossed the wire; `tests/router_loopback.rs` re-proves
//! the same identity over TCP.

use concealer_core::{merge_partials, ExecOptions, Query, QueryAnswer, RangeMethod};
use concealer_examples::{demo_system, demo_workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOURS: u64 = 2;
const SEED: u64 = 90_210;

fn wire_bytes(answer: &QueryAnswer) -> Vec<u8> {
    serde::bin::to_bytes(answer)
}

/// Every aggregate shape, three range methods: the merged partial answer
/// encodes byte-for-byte like the direct execution.
#[test]
fn merged_partials_match_direct_execution_bit_for_bit() {
    let (system, user, _records) = demo_system(HOURS, SEED);
    let session = system.session(&user);
    let span = HOURS * 3600 - 1;
    let queries: Vec<Query> = vec![
        Query::count().at_dims([3]).between(0, span),
        Query::sum(0).at_dims([5]).between(600, span / 2),
        Query::min(0).at_dims([2]).between(0, span),
        Query::max(0).at_dims([7]).between(1_200, span),
        Query::top_k_locations(4).between(0, span),
        Query::count().at_dims([1]).at(1_800),
        Query::collect_rows().observing(1_003).between(0, span),
    ];
    for method in [
        RangeMethod::Bpb,
        RangeMethod::Ebpb,
        RangeMethod::WinSecRange,
    ] {
        let options = ExecOptions::with_method(method);
        for query in &queries {
            let direct = session.execute_with(query, options).expect("direct");
            let partials = session.execute_partials(query, options).expect("partials");
            let merged = merge_partials(query, partials).expect("merge");
            assert_eq!(
                wire_bytes(&merged),
                wire_bytes(&direct),
                "merge diverged for {query:?} under {method:?}"
            );
        }
    }
}

/// Partials arriving shuffled (shards answer in arbitrary order) still
/// merge to the identical answer — the merge sorts by epoch id.
#[test]
fn merge_is_invariant_under_partial_arrival_order() {
    let (system, user, _records) = demo_system(HOURS, SEED);
    // Two more epochs so there is actually an order to scramble.
    let mut rng = StdRng::seed_from_u64(7);
    for k in 1..=2u64 {
        let records = concealer_examples::demo_epoch_records(HOURS, SEED, k * HOURS * 3600);
        system
            .ingest_epoch(k * HOURS * 3600, &records, &mut rng)
            .expect("ingest extra epoch");
    }
    let session = system.session(&user);
    let query = Query::count().at_dims([4]).between(0, 3 * HOURS * 3600 - 1);
    let direct = session.execute(&query).expect("direct");
    assert_eq!(direct.epochs_touched, 3);

    let mut partials = session
        .execute_partials(&query, ExecOptions::default())
        .expect("partials");
    assert_eq!(partials.len(), 3);
    partials.reverse();
    let merged = merge_partials(&query, partials).expect("merge");
    assert_eq!(wire_bytes(&merged), wire_bytes(&direct));
}

/// Batch partial execution keeps the cross-query `(epoch, bin)` dedup:
/// per-query fetch metadata (rows_fetched / rows_decrypted) after the
/// merge equals the single-process batch, positionally.
#[test]
fn batch_partials_preserve_dedup_metadata() {
    let (system, user, _records) = demo_system(HOURS, SEED);
    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(31);
    // Overlapping range queries so the dedup actually fires.
    let queries: Vec<Query> = (0..6).map(|_| workload.q1(40 * 60, &mut rng)).collect();
    let options = ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(2);
    let session = system.session(&user).with_options(options);

    let direct = session.execute_batch(&queries);
    let partial_batches = session.execute_batch_partials(&queries);
    assert_eq!(direct.len(), partial_batches.len());
    for ((query, direct), partials) in queries.iter().zip(direct).zip(partial_batches) {
        let direct = direct.expect("direct batch entry");
        let merged = merge_partials(query, partials.expect("partial batch entry")).expect("merge");
        assert_eq!(
            wire_bytes(&merged),
            wire_bytes(&direct),
            "dedup metadata diverged for {query:?}"
        );
    }
}

/// The refusal cases stay aligned with direct execution: a range no
/// epoch covers is `NoDataForRange` both ways (merging zero partials is
/// the same refusal), and forward-private partials are refused outright.
#[test]
fn partial_refusals_match_direct_refusals() {
    let (system, user, _records) = demo_system(HOURS, SEED);
    let session = system.session(&user);

    let nowhere = Query::count().at_dims([3]).between(1 << 40, (1 << 40) + 10);
    let direct = session.execute(&nowhere).expect_err("no data");
    let partials = session
        .execute_partials(&nowhere, ExecOptions::default())
        .expect("empty partials is an Ok outcome per slice");
    assert!(partials.is_empty());
    let merged = merge_partials(&nowhere, partials).expect_err("merge of nothing");
    assert_eq!(merged.to_string(), direct.to_string());

    let fp = ExecOptions {
        forward_private: true,
        ..ExecOptions::default()
    };
    let query = Query::count().at_dims([3]).between(0, 3_599);
    let err = session.execute_partials(&query, fp).expect_err("refused");
    assert!(
        err.to_string().contains("forward-private"),
        "unexpected refusal: {err}"
    );
}
