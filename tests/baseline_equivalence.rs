//! Equivalence tests: Concealer, the Opaque-style full-scan baseline, the
//! DET+index baseline and plaintext execution must all return the same
//! answers — they differ only in what they leak and what they cost. All
//! four backends are driven through the shared [`SecureIndex`] trait.

use concealer_baselines::{CleartextBaseline, DetIndexBaseline, OpaqueBaseline};
use concealer_core::{Query, SecureIndex};
use concealer_examples::demo_system;
use concealer_workloads::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_systems_agree_on_counts_and_sums() {
    let (system, _user, records) = demo_system(2, 301);

    let mut rng = StdRng::seed_from_u64(302);
    let mut cleartext = CleartextBaseline::new();
    cleartext.ingest_epoch(0, &records, &mut rng).unwrap();

    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque.ingest_epoch(0, &records, &mut rng).unwrap();

    let mut det = DetIndexBaseline::new(
        concealer_crypto::MasterKey::from_bytes([3u8; 32]),
        60,
        2 * 3600,
    );
    det.ingest_epoch(0, &records, &mut rng).unwrap();

    // One slice of executors, one loop — no per-backend glue.
    let backends: [&dyn SecureIndex; 4] = [&system, &cleartext, &opaque, &det];

    let workload = QueryWorkload {
        locations: 30,
        devices: vec![],
        time_extent: (0, 2 * 3600),
    };
    let mut qrng = StdRng::seed_from_u64(303);
    for _ in 0..6 {
        let query = workload.q1(30 * 60, &mut qrng);
        let answers: Vec<_> = backends
            .iter()
            .map(|b| b.execute(&query).unwrap().value)
            .collect();
        for other in &answers[1..] {
            assert_eq!(&answers[0], other, "backends disagree on {query:?}");
        }
    }
}

#[test]
fn answer_stats_describe_the_leakage_profiles() {
    let (system, _user, records) = demo_system(1, 309);
    let mut rng = StdRng::seed_from_u64(310);
    let mut det =
        DetIndexBaseline::new(concealer_crypto::MasterKey::from_bytes([4u8; 32]), 60, 3600);
    det.ingest_epoch(0, &records, &mut rng).unwrap();

    let concealer_stats = system.answer_stats();
    assert_eq!(concealer_stats.backend, "concealer");
    assert!(concealer_stats.volume_hiding);
    assert!(concealer_stats.verifiable);
    assert!(
        concealer_stats.rows_stored >= records.len(),
        "fakes included"
    );

    let det_stats = det.answer_stats();
    assert!(!det_stats.volume_hiding);
    assert_eq!(det_stats.rows_stored, records.len());
}

#[test]
fn leakage_profiles_differ_even_though_answers_match() {
    let (system, user, records) = demo_system(1, 304);
    let mut rng = StdRng::seed_from_u64(305);
    let mut det =
        DetIndexBaseline::new(concealer_crypto::MasterKey::from_bytes([5u8; 32]), 60, 3600);
    det.ingest_epoch(0, &records, &mut rng).unwrap();

    // Two locations with very different true counts.
    let mut by_loc: std::collections::BTreeMap<u64, usize> = Default::default();
    for r in &records {
        *by_loc.entry(r.dims[0]).or_default() += 1;
    }
    let busiest = *by_loc.iter().max_by_key(|(_, c)| **c).unwrap().0;
    let quietest = *by_loc.iter().min_by_key(|(_, c)| **c).unwrap().0;

    let q = |loc: u64| Query::count().at_dims([loc]).between(0, 3599);

    // DET leaks the volume difference...
    let det_busy = det.execute(&q(busiest)).unwrap().rows_fetched;
    let det_quiet = det.execute(&q(quietest)).unwrap().rows_fetched;
    assert!(
        det_busy > det_quiet,
        "DET baseline exposes the true volumes"
    );

    // ...while Concealer's point queries fetch identical volumes (the range
    // query's fetch size depends only on the covered cells, not the data).
    system.observer().reset();
    let session = system.session(&user);
    let target_busy = records.iter().find(|r| r.dims[0] == busiest).unwrap();
    let a = session
        .execute(
            &Query::count()
                .at_dims(target_busy.dims.clone())
                .at(target_busy.time),
        )
        .unwrap();
    let b = session
        .execute(&Query::count().at_dims([quietest]).at(target_busy.time))
        .unwrap();
    assert_eq!(a.rows_fetched, b.rows_fetched, "Concealer hides the volume");
}

#[test]
fn opaque_scans_entire_store_while_concealer_fetches_bins() {
    let (system, _user, records) = demo_system(1, 305);
    let mut rng = StdRng::seed_from_u64(306);
    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque.ingest_epoch(0, &records, &mut rng).unwrap();

    let target = &records[9];
    let query = Query::count().at_dims(target.dims.clone()).at(target.time);
    let opaque_answer = opaque.execute(&query).unwrap();
    assert_eq!(opaque_answer.rows_fetched, records.len());
    assert_eq!(opaque_answer.rows_decrypted, records.len());

    // Through the same trait, Concealer fetches one bin.
    let answer = system.execute(&query).unwrap();
    assert_eq!(answer.value, opaque_answer.value, "answers agree");
    assert!(
        answer.rows_fetched * 4 < records.len(),
        "Concealer must fetch a small fraction of the data ({} of {})",
        answer.rows_fetched,
        records.len()
    );
}
