//! Equivalence tests: Concealer, the Opaque-style full-scan baseline, the
//! DET+index baseline and plaintext execution must all return the same
//! answers — they differ only in what they leak and what they cost.

use concealer_baselines::{CleartextBaseline, DetIndexBaseline, OpaqueBaseline};
use concealer_core::{Aggregate, Predicate, Query, RangeOptions};
use concealer_examples::demo_system;
use concealer_workloads::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_systems_agree_on_counts_and_sums() {
    let (system, user, records) = demo_system(2, 301);

    let mut cleartext = CleartextBaseline::new();
    cleartext.ingest_epoch(0, records.clone());

    let mut rng = StdRng::seed_from_u64(302);
    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque.ingest_epoch(0, &records, &mut rng).unwrap();

    let mut det = DetIndexBaseline::new(concealer_crypto::MasterKey::from_bytes([3u8; 32]), 60);
    det.ingest_epoch(0, &records);

    let workload = QueryWorkload {
        locations: 30,
        devices: vec![],
        time_extent: (0, 2 * 3600),
    };
    let mut qrng = StdRng::seed_from_u64(303);
    for _ in 0..6 {
        let query = workload.q1(30 * 60, &mut qrng);
        let concealer_answer = system
            .range_query(&user, &query, RangeOptions::default())
            .unwrap()
            .value;
        let (cleartext_answer, _) = cleartext.query(&query);
        let (opaque_answer, _, _) = opaque.query(&query).unwrap();
        let (det_answer, _) = det.query(&query, 2 * 3600).unwrap();
        assert_eq!(concealer_answer, cleartext_answer);
        assert_eq!(concealer_answer, opaque_answer);
        assert_eq!(concealer_answer, det_answer);
    }
}

#[test]
fn leakage_profiles_differ_even_though_answers_match() {
    let (system, user, records) = demo_system(1, 304);
    let mut det = DetIndexBaseline::new(concealer_crypto::MasterKey::from_bytes([5u8; 32]), 60);
    det.ingest_epoch(0, &records);

    // Two locations with very different true counts.
    let mut by_loc: std::collections::BTreeMap<u64, usize> = Default::default();
    for r in &records {
        *by_loc.entry(r.dims[0]).or_default() += 1;
    }
    let busiest = *by_loc.iter().max_by_key(|(_, c)| **c).unwrap().0;
    let quietest = *by_loc.iter().min_by_key(|(_, c)| **c).unwrap().0;

    let q = |loc: u64| Query {
        aggregate: Aggregate::Count,
        predicate: Predicate::Range {
            dims: Some(vec![loc]),
            observation: None,
            time_start: 0,
            time_end: 3599,
        },
    };

    // DET leaks the volume difference...
    let (_, det_busy) = det.query(&q(busiest), 3600).unwrap();
    let (_, det_quiet) = det.query(&q(quietest), 3600).unwrap();
    assert!(det_busy > det_quiet, "DET baseline exposes the true volumes");

    // ...while Concealer's point queries fetch identical volumes (the range
    // query's fetch size depends only on the covered cells, not the data).
    system.observer().reset();
    let target_busy = records.iter().find(|r| r.dims[0] == busiest).unwrap();
    let target_quiet_dims = vec![quietest];
    let a = system
        .point_query(
            &user,
            &Query {
                aggregate: Aggregate::Count,
                predicate: Predicate::Point { dims: target_busy.dims.clone(), time: target_busy.time },
            },
        )
        .unwrap();
    let b = system
        .point_query(
            &user,
            &Query {
                aggregate: Aggregate::Count,
                predicate: Predicate::Point { dims: target_quiet_dims, time: target_busy.time },
            },
        )
        .unwrap();
    assert_eq!(a.rows_fetched, b.rows_fetched, "Concealer hides the volume");
}

#[test]
fn opaque_scans_entire_store_while_concealer_fetches_bins() {
    let (system, user, records) = demo_system(1, 305);
    let mut rng = StdRng::seed_from_u64(306);
    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque.ingest_epoch(0, &records, &mut rng).unwrap();

    let target = &records[9];
    let query = Query {
        aggregate: Aggregate::Count,
        predicate: Predicate::Point { dims: target.dims.clone(), time: target.time },
    };
    let (_, scanned, decrypted) = opaque.query(&query).unwrap();
    assert_eq!(scanned, records.len());
    assert_eq!(decrypted, records.len());

    let answer = system.point_query(&user, &query).unwrap();
    assert!(
        answer.rows_fetched * 4 < records.len(),
        "Concealer must fetch a small fraction of the data ({} of {})",
        answer.rows_fetched,
        records.len()
    );
}
