//! Side-channel invariance tests for the enclave-side decrypted-bin cache.
//!
//! The cache must be **invisible to the adversary**: a warm hit replays the
//! cached trapdoors against the store, so the `TrapdoorIssued`/`RowFetched`
//! event sequence — and the side-channel meter counters — are bit-identical
//! to a cold fetch. If the cache ever short-circuited the observable access
//! pattern (or the instrumentation), the service provider could distinguish
//! "bin already queried" from "bin first touched", re-introducing exactly
//! the query-correlation leakage Concealer exists to remove.
//!
//! * A property test runs random WiFi query mixes twice on one system and
//!   asserts the adversary trace and the meter deltas of the warm repeat
//!   are event-for-event / counter-for-counter identical to the first run,
//!   with the cache demonstrably serving hits.
//! * A twin-deployment test runs the same workload on two systems sharing
//!   key material — one with the cache disabled — and asserts their traces
//!   and meters never diverge.
//! * An eviction test squeezes the cache to two entries so hot bins are
//!   evicted and re-fetched (hash chains verifying throughout) and asserts
//!   answers survive the churn.

use concealer_core::{
    ConcealerSystem, ExecOptions, MasterKey, Query, QueryAnswer, RangeMethod, Record, SecureIndex,
    UserHandle,
};
use concealer_examples::{build_system_with_master, demo_config, demo_wifi_config, demo_workload};
use concealer_workloads::WifiGenerator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

const HOURS: u64 = 2;

fn demo_records(seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    WifiGenerator::new(demo_wifi_config()).generate_epoch(0, HOURS * 3600, &mut rng)
}

/// A deployment with pinned key material so twin systems see identical
/// ciphertexts, trapdoors and traces.
fn pinned_system(records: &[Record]) -> (ConcealerSystem, UserHandle) {
    let mut system =
        build_system_with_master(demo_config(HOURS), MasterKey::from_bytes([41u8; 32]), 4242);
    let user = system.register_user(7, (1000..1300).collect(), true);
    let mut rng = StdRng::seed_from_u64(4243);
    system.ingest_epoch(0, records, &mut rng).expect("ingest");
    (system, user)
}

/// A random mix of the paper's query templates (point + Q1/Q2/Q5 ranges).
fn random_mix(seed: u64, len: usize) -> Vec<Query> {
    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| match i % 5 {
            0 => workload.q1_point(&mut rng),
            1 | 2 => workload.q1(25 * 60, &mut rng),
            3 => workload.q2(40 * 60, 4, &mut rng),
            _ => workload.q5(25 * 60, &mut rng),
        })
        .collect()
}

/// One shared deployment for the property test — building a system per
/// generated case would dominate the runtime. The cache persists across
/// cases, which is the point: trace invariance must hold at *any* cache
/// state, not just cold-then-warm.
fn shared_system() -> &'static (ConcealerSystem, UserHandle) {
    static SYSTEM: OnceLock<(ConcealerSystem, UserHandle)> = OnceLock::new();
    SYSTEM.get_or_init(|| pinned_system(&demo_records(501)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Running the same batch twice must produce bit-identical adversary
    /// traces and side-channel meter deltas, no matter how many of the
    /// second run's fetches the cache serves warm — and it must serve some.
    #[test]
    fn warm_hits_replay_trace_and_meter_exactly(seed in 0u64..1_000, len in 4usize..10) {
        let (system, user) = shared_system();
        let session = system
            .session(user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb));
        let queries = random_mix(seed, len);

        system.observer().reset();
        let (first, first_meter) = system.meter().measure(|| {
            session
                .execute_batch(&queries)
                .into_iter()
                .map(|r| r.expect("first run"))
                .collect::<Vec<QueryAnswer>>()
        });
        let first_trace = system.observer().take_events();

        let before = system.bin_cache_stats();
        let (second, second_meter) = system.meter().measure(|| {
            session
                .execute_batch(&queries)
                .into_iter()
                .map(|r| r.expect("second run"))
                .collect::<Vec<QueryAnswer>>()
        });
        let second_trace = system.observer().take_events();
        let after = system.bin_cache_stats();

        prop_assert_eq!(&second, &first, "answers must not depend on cache state");
        prop_assert_eq!(
            &second_trace, &first_trace,
            "warm trace must be event-for-event identical to the first run"
        );
        prop_assert_eq!(
            second_meter, first_meter,
            "warm meter delta must be counter-for-counter identical"
        );
        // The invariance above must not be vacuous: the repeat was served
        // (at least partly) from the cache.
        prop_assert!(
            after.hits > before.hits,
            "the repeated batch must score cache hits ({} -> {})",
            before.hits,
            after.hits
        );
    }
}

/// Two deployments sharing key material and data — one with the cache
/// disabled — must be indistinguishable to the adversary across repeated
/// workloads: identical event traces and identical meter totals, while the
/// cached system demonstrably serves hits the uncached one cannot.
#[test]
fn cache_on_and_cache_off_systems_are_indistinguishable() {
    // Pass 2 runs parallel batches; force the pool even on single-core
    // hosts so cache hits are replayed under real concurrency.
    std::env::set_var("CONCEALER_FORCE_THREADS", "1");
    let records = demo_records(502);
    let (cached, cached_user) = pinned_system(&records);
    let (uncached, uncached_user) = pinned_system(&records);
    uncached.set_bin_cache_capacity(0);

    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(503);
    let queries: Vec<Query> = (0..24)
        .map(|i| match i % 4 {
            0 => workload.q1_point(&mut rng),
            1 | 2 => workload.q1(30 * 60, &mut rng),
            _ => workload.q2(45 * 60, 5, &mut rng),
        })
        .collect();

    // Three passes: pass 2+ is warm on the cached system, always cold on
    // the uncached one. Mix sequential and parallel batches.
    for pass in 0..3 {
        let opts = ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(if pass == 2 {
            4
        } else {
            1
        });
        let run = |system: &ConcealerSystem, user: &UserHandle| {
            system.observer().reset();
            let (answers, meter) = system.meter().measure(|| {
                system
                    .session(user)
                    .with_options(opts)
                    .execute_batch(&queries)
                    .into_iter()
                    .map(|r| r.expect("batch"))
                    .collect::<Vec<QueryAnswer>>()
            });
            (answers, meter, system.observer().take_events())
        };
        let (cached_answers, cached_meter, cached_trace) = run(&cached, &cached_user);
        let (uncached_answers, uncached_meter, uncached_trace) = run(&uncached, &uncached_user);

        assert_eq!(cached_answers, uncached_answers, "pass {pass}: answers");
        assert_eq!(
            cached_trace, uncached_trace,
            "pass {pass}: the cache must not change the adversary trace"
        );
        assert_eq!(
            cached_meter, uncached_meter,
            "pass {pass}: the cache must not change the side-channel meter"
        );
    }

    let cached_stats = cached.bin_cache_stats();
    let uncached_stats = uncached.bin_cache_stats();
    assert!(cached_stats.hits > 0, "warm passes must hit the cache");
    assert_eq!(uncached_stats.hits, 0);
    assert_eq!(uncached_stats.entries, 0, "capacity 0 caches nothing");

    // The cache's capacity and hit counters surface through the uniform
    // backend-stats interface.
    let reported = SecureIndex::answer_stats(&cached)
        .bin_cache
        .expect("concealer reports its bin cache");
    assert_eq!(reported.hits, cached_stats.hits);
    assert!(reported.capacity > 0);
}

/// With the cache squeezed to two entries, hot bins are evicted and
/// re-fetched continuously; answers (verified against hash chains on every
/// fetch) must survive the churn, and the final state must reflect it.
#[test]
fn answers_survive_lru_eviction_and_refetch() {
    let (system, user) = pinned_system(&demo_records(504));
    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(505);
    let queries: Vec<Query> = (0..12)
        .map(|i| match i % 3 {
            0 => workload.q1_point(&mut rng),
            _ => workload.q1(35 * 60, &mut rng),
        })
        .collect();
    let session = system
        .session(&user)
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));

    // Oracle under the default capacity, then shrink and churn.
    let oracle: Vec<QueryAnswer> = session
        .execute_batch(&queries)
        .into_iter()
        .map(|r| r.expect("oracle"))
        .collect();
    assert!(
        oracle.iter().all(|a| a.verified),
        "verification must be active so every re-fetch re-checks hash chains"
    );

    system.set_bin_cache_capacity(2);
    assert_eq!(system.bin_cache_stats().entries, 2, "shrink evicts down");
    for round in 0..4 {
        let answers: Vec<QueryAnswer> = session
            .execute_batch(&queries)
            .into_iter()
            .map(|r| r.expect("churn run"))
            .collect();
        assert_eq!(
            answers, oracle,
            "round {round}: answers under eviction churn"
        );
    }
    let stats = system.bin_cache_stats();
    assert_eq!(stats.capacity, 2);
    assert!(stats.entries <= 2);
    assert!(
        stats.evictions > 0,
        "a two-entry cache under a multi-bin workload must evict"
    );
    assert!(
        stats.misses > stats.hits,
        "most fetches run cold once their entry is evicted (hits {}, misses {})",
        stats.hits,
        stats.misses
    );
}
