//! Tests of the security properties §7 of the paper claims, asserted
//! against the adversary-observable traces (storage access observer and
//! enclave side-channel meter).

use concealer_core::query::AnswerValue;
use concealer_core::{CoreError, ExecOptions, Query, RangeMethod};
use concealer_examples::{demo_config, demo_system};
use concealer_workloads::{WifiConfig, WifiGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Output-size / volume hiding: every point query on an epoch fetches the
/// same number of rows, regardless of how many tuples actually match.
#[test]
fn volume_hiding_across_point_queries() {
    let (system, user, records) = demo_system(2, 201);
    system.observer().reset();
    let session = system.session(&user);

    // Mix of dense targets (existing records) and sparse targets (locations
    // and times chosen to likely have few or no matches).
    let mut targets: Vec<(Vec<u64>, u64)> = records
        .iter()
        .step_by(701)
        .map(|r| (r.dims.clone(), r.time))
        .collect();
    targets.push((vec![29], 10));
    targets.push((vec![0], 2 * 3600 - 5));

    let mut counts = BTreeSet::new();
    for (dims, time) in targets {
        let q = Query::count().at_dims(dims).at(time);
        let answer = session.execute(&q).expect("point query");
        counts.insert(answer.rows_fetched);
    }
    assert_eq!(
        counts.len(),
        1,
        "all point queries must fetch identical volumes: {counts:?}"
    );

    // The adversary's own per-query trace agrees.
    let observed: BTreeSet<usize> = system
        .observer()
        .per_query_summaries()
        .iter()
        .map(|s| s.rows_fetched)
        .collect();
    assert_eq!(observed.len(), 1);
}

/// Partial access-pattern hiding: two different predicates that fall in the
/// same bin cause *identical* row-fetch sets — the adversary cannot tell
/// which tuples inside the bin satisfied the query.
#[test]
fn same_bin_queries_produce_identical_fetch_sets() {
    let (system, user, records) = demo_system(2, 202);
    system.observer().reset();
    let session = system.session(&user);

    // Two predicates over the same (location, time-granule) cell — one that
    // matches records and one (different observation) that matches nothing.
    let target = &records[17];
    let q_real = Query::count().at_dims(target.dims.clone()).at(target.time);
    // Same cell, but a count restricted to an absent device: same bin, very
    // different true output size.
    let q_empty = Query::count()
        .at_dims(target.dims.clone())
        .observing(1299) // registered to the demo user, rarely present
        .between(target.time, target.time);
    let a = session.execute(&q_real).unwrap();
    let b = session
        .execute_with(&q_empty, ExecOptions::with_method(RangeMethod::Bpb))
        .unwrap();
    assert_eq!(a.rows_fetched, b.rows_fetched);

    let sets = system.observer().per_query_fetch_sets();
    assert_eq!(sets.len(), 2);
    assert_eq!(
        sets[0], sets[1],
        "fetched row sets must be indistinguishable"
    );
}

/// Ciphertext indistinguishability: no two stored ciphertexts repeat, even
/// though locations and devices repeat heavily in the plaintext.
#[test]
fn ciphertext_uniqueness_in_the_store() {
    let (system, _user, records) = demo_system(1, 203);
    assert!(records.len() > 100);
    let rows = system
        .store()
        .full_scan(0)
        .expect("adversary can read its own disk");
    let mut index_keys = BTreeSet::new();
    let mut filters = BTreeSet::new();
    let mut payloads = BTreeSet::new();
    for row in &rows {
        index_keys.insert(row.index_key.clone());
        filters.insert(row.filters[0].clone());
        payloads.insert(row.payload.clone());
    }
    assert_eq!(index_keys.len(), rows.len());
    assert_eq!(payloads.len(), rows.len());
    // Filter columns may repeat only when two readings share location AND
    // time granule — which is exactly what the paper's E(l||t) leaks to the
    // enclave-side string matcher, never to the adversary in cleartext.
    assert!(filters.len() > rows.len() / 4);
}

/// Forward privacy: the same plaintext value encrypts differently across
/// epochs, and trapdoors from one epoch never match another epoch's rows.
#[test]
fn forward_privacy_across_epochs() {
    let mut rng = StdRng::seed_from_u64(204);
    let mut system = concealer_examples::build_system(demo_config(1), &mut rng);
    let user = system.register_user(1, vec![], true);
    let generator = WifiGenerator::new(WifiConfig::tiny());
    // Identical record sets in two different epochs (shifted by the epoch
    // offset) — the ciphertexts must share nothing.
    let epoch0 = generator.generate_epoch(0, 3600, &mut StdRng::seed_from_u64(1));
    let epoch1: Vec<_> = epoch0
        .iter()
        .map(|r| concealer_core::Record {
            dims: r.dims.clone(),
            time: r.time + 3600,
            payload: r.payload.clone(),
        })
        .collect();
    system.ingest_epoch(0, &epoch0, &mut rng).unwrap();
    system.ingest_epoch(3600, &epoch1, &mut rng).unwrap();

    let rows0: BTreeSet<Vec<u8>> = system
        .store()
        .full_scan(0)
        .unwrap()
        .into_iter()
        .map(|r| r.index_key)
        .collect();
    let rows1: BTreeSet<Vec<u8>> = system
        .store()
        .full_scan(3600)
        .unwrap()
        .into_iter()
        .map(|r| r.index_key)
        .collect();
    assert!(
        rows0.is_disjoint(&rows1),
        "epoch keys must make index columns unlinkable"
    );

    // And queries still work on both epochs.
    let q = Query::count().at_dims([3]).between(0, 7199);
    assert!(system.session(&user).execute(&q).is_ok());
}

/// Integrity: deleting a row (as the malicious service provider) is caught
/// by the hash-chain verification.
#[test]
fn row_deletion_detected() {
    let (system, user, records) = demo_system(1, 205);
    // Replace one stored row with a duplicate of another (net effect: a
    // logical deletion plus an injection, both of which must be caught).
    let rows = system.store().full_scan(0).unwrap();
    let victim = rows[3].clone();
    let mut forged = rows[4].clone();
    forged.index_key = victim.index_key.clone();
    system
        .store()
        .rewrite_rows(0, vec![(victim.index_key.clone(), forged)])
        .unwrap();

    let session = system.session(&user);
    let mut detected = false;
    for r in records.iter().step_by(11) {
        let q = Query::count().at_dims(r.dims.clone()).at(r.time);
        if matches!(
            session.execute(&q),
            Err(CoreError::IntegrityViolation { .. })
        ) {
            detected = true;
            break;
        }
    }
    assert!(detected, "tampering must be detected by some query");
}

/// Concealer+ obliviousness: the enclave's in-enclave work (comparisons,
/// moves, sort steps, decryptions) is identical for different predicates
/// that hit the same bin.
#[test]
fn oblivious_processing_is_predicate_independent() {
    let mut rng = StdRng::seed_from_u64(206);
    let mut config = demo_config(1);
    config.oblivious = true;
    let generator = WifiGenerator::new(WifiConfig::tiny());
    let records = generator.generate_epoch(0, 3600, &mut rng);
    let mut system = concealer_examples::build_system(config, &mut rng);
    let user = system.register_user(1, vec![], true);
    system.ingest_epoch(0, &records, &mut rng).unwrap();

    let target = &records[5];
    let meter = system.meter();
    let session = system.session(&user);

    let q_dense = Query::count().at_dims(target.dims.clone()).at(target.time);
    meter.reset();
    let a = session.execute(&q_dense).unwrap();
    let snap_dense = meter.snapshot();

    // Same cell (same location bucket and time row), different granule
    // position — same bin, different true answer.
    let q_sparse = Query::count()
        .at_dims(target.dims.clone())
        .at(target.time ^ 1);
    meter.reset();
    let b = session.execute(&q_sparse).unwrap();
    let snap_sparse = meter.snapshot();

    assert_eq!(a.rows_fetched, b.rows_fetched);
    assert_eq!(snap_dense.sort_steps, snap_sparse.sort_steps);
    assert_eq!(snap_dense.element_touches, snap_sparse.element_touches);
    assert_eq!(
        snap_dense.trapdoors_generated,
        snap_sparse.trapdoors_generated
    );
    assert_eq!(snap_dense.decryptions, snap_sparse.decryptions);
}

/// Workload attack (§8): with super-bins enabled the adversary observes a
/// *coarser* access pattern — different queries collapse onto fewer
/// distinguishable fetch-set signatures, and no query ever fetches fewer
/// rows than without super-bins. (The per-super-bin frequency balancing
/// itself is property-tested in `concealer-core::superbin`.)
#[test]
fn superbins_coarsen_observable_access_patterns() {
    let (system, user, _records) = demo_system(1, 207);

    let run_workload = |use_superbins: bool| -> (Vec<Vec<(u64, u64)>>, Vec<usize>) {
        system.observer().reset();
        let session = system.session(&user).with_options(ExecOptions {
            method: RangeMethod::Bpb,
            use_superbins,
            num_super_bins: 3,
            ..ExecOptions::default()
        });
        for loc in 0..12u64 {
            for window in 0..4u64 {
                let q = Query::count()
                    .at_dims([loc])
                    .between(window * 900, window * 900 + 899);
                session.execute(&q).unwrap();
            }
        }
        let sets = system.observer().per_query_fetch_sets();
        let volumes = sets.iter().map(Vec::len).collect();
        (sets, volumes)
    };

    let (sets_without, vol_without) = run_workload(false);
    let (sets_with, vol_with) = run_workload(true);

    let distinct = |sets: &[Vec<(u64, u64)>]| {
        sets.iter()
            .cloned()
            .collect::<BTreeSet<Vec<(u64, u64)>>>()
            .len()
    };
    assert!(
        distinct(&sets_with) <= distinct(&sets_without),
        "super-bins must not increase the number of distinguishable fetch signatures: {} vs {}",
        distinct(&sets_with),
        distinct(&sets_without)
    );
    // Volumes never shrink: fetching the whole super-bin is a superset of
    // fetching the bin alone.
    for (w, wo) in vol_with.iter().zip(vol_without.iter()) {
        assert!(
            w >= wo,
            "super-bin fetch {w} smaller than plain bin fetch {wo}"
        );
    }

    // AnswerValue sanity so the workload above is not vacuous.
    let q = Query::count().at_dims([0]).between(0, 3599);
    match system.session(&user).execute(&q).unwrap().value {
        AnswerValue::Count(_) => {}
        other => panic!("unexpected {other:?}"),
    }
}
