//! Wire-format tests for the query model: `Query` / `Predicate` /
//! `Aggregate` derive `Serialize` / `Deserialize`, and these tests pin the
//! resulting byte format (round-trips plus golden bytes) so a network
//! layer can rely on it staying stable.
//!
//! The format (see `shims/serde`): positional fields in declaration order,
//! LEB128 varints for integers, enum variants tagged by declaration index.

use concealer_core::{Aggregate, Predicate, Query, Record};
use serde::bin::{from_bytes, to_bytes};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::DeserializeOwned,
{
    from_bytes(&to_bytes(value)).expect("round-trip decode")
}

#[test]
fn aggregates_round_trip() {
    let aggregates = [
        Aggregate::Count,
        Aggregate::Sum { attr: 0 },
        Aggregate::Min { attr: 3 },
        Aggregate::Max { attr: 200 },
        Aggregate::Average { attr: 1 },
        Aggregate::TopKLocations { k: 5 },
        Aggregate::LocationsWithAtLeast {
            threshold: 1_000_000,
        },
        Aggregate::CollectRows,
    ];
    for aggregate in aggregates {
        assert_eq!(roundtrip(&aggregate), aggregate);
    }
}

#[test]
fn predicates_round_trip() {
    let predicates = [
        Predicate::Point {
            dims: vec![],
            time: 0,
        },
        Predicate::Point {
            dims: vec![3],
            time: 600,
        },
        Predicate::Point {
            dims: vec![1, 2, 3, 4],
            time: u64::MAX,
        },
        Predicate::Range {
            dims: None,
            observation: None,
            time_start: 0,
            time_end: 3599,
        },
        Predicate::Range {
            dims: Some(vec![7, 9]),
            observation: Some(1001),
            time_start: 1800,
            time_end: 7199,
        },
    ];
    for predicate in predicates {
        assert_eq!(roundtrip(&predicate), predicate);
    }
}

#[test]
fn queries_round_trip_through_the_builder() {
    let queries = [
        Query::count().at_dims([3]).between(0, 1799),
        Query::count().at_dims(vec![5, 6]).at(300),
        Query::sum(1).at_dims([0]).between(0, 3599),
        Query::top_k_locations(5).between(0, 86_399),
        Query::collect_rows().observing(1001).between(0, 7199),
        Query::locations_with_at_least(50).between(3600, 7199),
    ];
    for query in queries {
        assert_eq!(roundtrip(&query), query);
    }
}

#[test]
fn records_round_trip() {
    let record = Record {
        dims: vec![3, 9],
        time: 123_456,
        payload: vec![1001, 42, 0],
    };
    assert_eq!(roundtrip(&record), record);
}

/// The golden bytes: this is the wire format. If this test breaks, the
/// format changed and every stored or transmitted query breaks with it —
/// bump a protocol version instead of editing the expectation casually.
#[test]
fn golden_wire_bytes_are_pinned() {
    let query = Query::count().at_dims([3]).between(0, 1799);
    let bytes = to_bytes(&query);
    assert_eq!(
        bytes,
        vec![
            0x00, // Aggregate::Count (variant 0)
            0x01, // Predicate::Range (variant 1)
            0x01, // dims: Option tag Some
            0x01, // dims: Vec length 1
            0x03, // dims[0] = 3
            0x00, // observation: Option tag None
            0x00, // time_start = 0
            0x87, 0x0e, // time_end = 1799 as LEB128
        ]
    );

    let point = Query::sum(2).at_dims([1]).at(60);
    assert_eq!(
        to_bytes(&point),
        vec![
            0x01, // Aggregate::Sum (variant 1)
            0x02, // attr = 2
            0x00, // Predicate::Point (variant 0)
            0x01, // dims: Vec length 1
            0x01, // dims[0] = 1
            0x3c, // time = 60
        ]
    );
}

#[test]
fn truncated_and_garbage_input_is_rejected() {
    let query = Query::count().at_dims([3]).between(0, 1799);
    let bytes = to_bytes(&query);
    // Every strict prefix fails to decode.
    for cut in 0..bytes.len() {
        assert!(
            from_bytes::<Query>(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
    // Unknown enum tags are rejected.
    assert!(from_bytes::<Aggregate>(&[0xff, 0x01]).is_err());
    // Trailing bytes are rejected.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(from_bytes::<Query>(&extended).is_err());
}
