//! Online master-key rotation tests: rotating the master generation
//! re-wraps the durable key vault without touching epochs, enclave keys,
//! or the query path — so answers stay **bit-identical** while a
//! rotation runs, a crash mid-re-wrap resumes on reopen, and vault
//! entries that do not unwrap under the recorded generation refuse the
//! reopen with [`CoreError::CorruptMetadata`] instead of serving
//! garbage.

use std::sync::Arc;

use concealer_core::{
    ConcealerSystem, CoreError, DiskEpochStore, MasterKey, Query, QueryAnswer, Record,
    SystemBuilder, SystemConfig, UserHandle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPOCH: u64 = 3_600;

fn wire_bytes(answer: &QueryAnswer) -> Vec<u8> {
    serde::bin::to_bytes(answer)
}

/// A scratch store root under the system temp dir, removed on drop.
struct TempRoot(std::path::PathBuf);

impl TempRoot {
    fn new(tag: &str) -> TempRoot {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "concealer-rotation-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        TempRoot(path)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn demo_records(epoch_start: u64, salt: u64) -> Vec<Record> {
    (0..240)
        .map(|i| {
            Record::spatial(
                (i + salt) % 8,
                epoch_start + (i * 13) % EPOCH,
                1_000 + (i + salt) % 5,
            )
        })
        .collect()
}

/// Build a disk-backed deployment on `root` with `epochs` ingested
/// epochs, under a pinned master.
fn build_disk_system(
    root: &std::path::Path,
    master: &MasterKey,
    epochs: u64,
) -> (ConcealerSystem, UserHandle) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut system = SystemBuilder::new(SystemConfig::small_test())
        .master(master.clone())
        .engine_seed(7)
        .with_backend(Arc::new(DiskEpochStore::open(root).expect("open store")))
        .build(&mut rng)
        .expect("assemble deployment");
    let user = system.register_user(1, vec![1_000, 1_001, 1_002, 1_003, 1_004], true);
    for k in 0..epochs {
        let mut ingest_rng = StdRng::seed_from_u64(500 + k);
        system
            .ingest_epoch(k * EPOCH, &demo_records(k * EPOCH, k), &mut ingest_rng)
            .expect("ingest epoch");
    }
    (system, user)
}

/// Reopen the same root under the same master.
fn reopen(root: &std::path::Path, master: &MasterKey) -> concealer_core::Result<ConcealerSystem> {
    let mut rng = StdRng::seed_from_u64(9);
    SystemBuilder::new(SystemConfig::small_test())
        .master(master.clone())
        .engine_seed(7)
        .with_backend(Arc::new(DiskEpochStore::open(root).expect("reopen store")))
        .build(&mut rng)
}

/// The mixed workload answers used as the bit-identity oracle.
fn workload_answers(system: &ConcealerSystem, user: &UserHandle, epochs: u64) -> Vec<Vec<u8>> {
    let session = system.session(user);
    let mut answers = Vec::new();
    for loc in [0u64, 3, 7] {
        let q = Query::count().at_dims([loc]).at(500 + loc * 60);
        answers.push(wire_bytes(&session.execute(&q).expect("point query")));
    }
    let spanning = Query::count().at_dims([2]).between(0, epochs * EPOCH - 1);
    answers.push(wire_bytes(&session.execute(&spanning).expect("spanning")));
    let top_k = Query::top_k_locations(4).between(0, epochs * EPOCH - 1);
    answers.push(wire_bytes(&session.execute(&top_k).expect("top-k")));
    answers
}

/// The tentpole pin: queries hammering the deployment concurrently with
/// an online rotation (several generations back to back) return answers
/// bit-identical to the pre-rotation oracle, and the rotation completes
/// with nothing left pending.
#[test]
fn queries_stay_bit_identical_while_rotation_runs() {
    const EPOCHS: u64 = 6;
    const QUERY_THREADS: usize = 4;
    const ROTATIONS: u64 = 3;
    let root = TempRoot::new("concurrent");
    let master = MasterKey::from_bytes([21u8; 32]);
    let (system, user) = build_disk_system(&root.0, &master, EPOCHS);
    let baseline = workload_answers(&system, &user, EPOCHS);
    assert_eq!(system.key_generation(), 0);

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..QUERY_THREADS {
            let system = &system;
            let user = &user;
            let baseline = &baseline;
            let done = &done;
            scope.spawn(move || {
                let mut rounds = 0u64;
                while !done.load(std::sync::atomic::Ordering::Acquire) || rounds < 2 {
                    let got = workload_answers(system, user, EPOCHS);
                    assert_eq!(
                        &got, baseline,
                        "answers diverged while a rotation was in flight"
                    );
                    rounds += 1;
                }
            });
        }
        for expected_generation in 1..=ROTATIONS {
            let (generation, rewrapped) = system
                .rotate_master_generation()
                .expect("online rotation under live queries");
            assert_eq!(generation, expected_generation);
            assert_eq!(
                rewrapped, EPOCHS as usize,
                "every vault entry re-wraps each rotation"
            );
        }
        done.store(true, std::sync::atomic::Ordering::Release);
    });

    assert_eq!(system.key_generation(), ROTATIONS);
    assert_eq!(system.rotation_pending(), 0);
    assert_eq!(
        workload_answers(&system, &user, EPOCHS),
        baseline,
        "answers diverged after the rotations settled"
    );
}

/// A crash mid-re-wrap: the generation counter is bumped durably before
/// entries move, so a reopen sees a legal resumable state —
/// `rotation_pending > 0` at the *new* generation — and
/// `resume_key_rotation` finishes the job. Realized by driving the
/// backend's bounded re-wrap directly and dropping the system with
/// entries still behind the counter.
#[test]
fn partial_rewrap_survives_reopen_and_resumes() {
    const EPOCHS: u64 = 5;
    const PARTIAL: usize = 2;
    let root = TempRoot::new("resume");
    let master = MasterKey::from_bytes([22u8; 32]);
    let baseline;
    {
        let (system, user) = build_disk_system(&root.0, &master, EPOCHS);
        baseline = workload_answers(&system, &user, EPOCHS);
        let backend = system.store().backend();
        backend.begin_key_rotation(1).expect("begin rotation");
        // Re-wrap only PARTIAL entries, then "crash" (drop mid-rotation).
        let moved = backend
            .rewrap_keys(
                &mut |epoch_id, generation, _old| Ok(master.wrap_epoch_seal(generation, epoch_id)),
                PARTIAL,
            )
            .expect("bounded re-wrap");
        assert_eq!(moved, PARTIAL);
        assert_eq!(system.rotation_pending(), EPOCHS as usize - PARTIAL);
    }

    // Reopen: the mixed-generation vault is legal (entries lag the
    // counter, never lead it) and the resumable state is visible.
    let mut reopened = reopen(&root.0, &master).expect("mixed-generation vault reopens");
    assert_eq!(reopened.key_generation(), 1);
    assert_eq!(reopened.rotation_pending(), EPOCHS as usize - PARTIAL);
    let user = reopened.register_user(1, vec![1_000, 1_001, 1_002, 1_003, 1_004], true);
    assert_eq!(workload_answers(&reopened, &user, EPOCHS), baseline);

    // Resume finishes exactly the remainder; a second resume is a no-op.
    assert_eq!(
        reopened.resume_key_rotation().expect("resume"),
        EPOCHS as usize - PARTIAL
    );
    assert_eq!(reopened.rotation_pending(), 0);
    assert_eq!(reopened.resume_key_rotation().expect("idempotent"), 0);
    assert_eq!(workload_answers(&reopened, &user, EPOCHS), baseline);
}

/// Vault entries that do not unwrap under their recorded generation —
/// a garbage blob, or a blob wrapped under a different generation than
/// recorded — refuse the reopen with `CorruptMetadata` instead of
/// registering an epoch the master cannot actually read.
#[test]
fn vault_entries_that_do_not_unwrap_refuse_reopen() {
    let master = MasterKey::from_bytes([23u8; 32]);

    // Garbage blob.
    let root = TempRoot::new("garbage");
    {
        let (system, _user) = build_disk_system(&root.0, &master, 2);
        system
            .store()
            .backend()
            .seal_key(0, system.key_generation(), vec![0xFF; 48])
            .expect("overwrite vault entry");
    }
    match reopen(&root.0, &master) {
        Err(CoreError::CorruptMetadata) => {}
        other => panic!("expected CorruptMetadata, got {other:?}"),
    }

    // Wrong generation: a blob wrapped under generation 0 but recorded
    // as generation 3 (as if a buggy rotation had tagged entries ahead
    // of the wrap it actually performed).
    let root = TempRoot::new("wrong-gen");
    {
        let (system, _user) = build_disk_system(&root.0, &master, 2);
        let backend = system.store().backend();
        backend.begin_key_rotation(3).expect("bump generation");
        backend
            .seal_key(0, 3, master.wrap_epoch_seal(0, 0))
            .expect("record mis-wrapped entry");
    }
    match reopen(&root.0, &master) {
        Err(CoreError::CorruptMetadata) => {}
        other => panic!("expected CorruptMetadata, got {other:?}"),
    }
}

/// A read replica keeps serving bit-identical answers across the
/// writer's rotation, absorbs epochs ingested after it, and observes the
/// new generation through its refresh path.
#[test]
fn replica_refresh_across_rotation_stays_bit_identical() {
    const EPOCHS: u64 = 3;
    let root = TempRoot::new("replica");
    let master = MasterKey::from_bytes([24u8; 32]);
    let (writer, user) = build_disk_system(&root.0, &master, EPOCHS);

    // A read replica on the same root (same master, read-only store).
    let mut replica_rng = StdRng::seed_from_u64(9);
    let mut replica = SystemBuilder::new(SystemConfig::small_test())
        .master(master.clone())
        .engine_seed(7)
        .with_backend(Arc::new(
            DiskEpochStore::open_replica(&root.0).expect("open replica"),
        ))
        .build(&mut replica_rng)
        .expect("assemble replica");
    let replica_user = replica.register_user(1, vec![1_000, 1_001, 1_002, 1_003, 1_004], true);
    let baseline = workload_answers(&writer, &user, EPOCHS);
    assert_eq!(workload_answers(&replica, &replica_user, EPOCHS), baseline);

    // Writer rotates; the replica's answers never waver.
    let (generation, rewrapped) = writer.rotate_master_generation().expect("writer rotation");
    assert_eq!(generation, 1);
    assert_eq!(rewrapped, EPOCHS as usize);
    assert_eq!(workload_answers(&replica, &replica_user, EPOCHS), baseline);

    // An epoch ingested after the rotation lands in the vault at the new
    // generation and the replica absorbs it through refresh.
    let mut ingest_rng = StdRng::seed_from_u64(500 + EPOCHS);
    writer
        .ingest_epoch(
            EPOCHS * EPOCH,
            &demo_records(EPOCHS * EPOCH, EPOCHS),
            &mut ingest_rng,
        )
        .expect("post-rotation ingest");
    let (recorded_generation, _blob) = writer
        .store()
        .backend()
        .sealed_key(EPOCHS * EPOCH)
        .expect("post-rotation vault entry");
    assert_eq!(recorded_generation, 1);

    let absorbed = replica.refresh_epochs().expect("replica refresh");
    assert!(
        absorbed.contains(&(EPOCHS * EPOCH)),
        "replica absorbed {absorbed:?}"
    );
    assert_eq!(
        replica.key_generation(),
        1,
        "replica sees the new generation"
    );
    assert_eq!(
        workload_answers(&replica, &replica_user, EPOCHS + 1),
        workload_answers(&writer, &user, EPOCHS + 1),
        "replica diverged across the rotation"
    );
}
