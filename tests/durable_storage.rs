//! Durable storage acceptance tests: a `ConcealerSystem` built on
//! [`DiskEpochStore`] must survive drop-and-reopen — every ingested epoch
//! queryable, hash-chain verification passing — and a randomized
//! point/range/batch workload must return answers *and adversary traces*
//! bit-identical to the default in-memory backend.
//!
//! Also the crash-recovery property: after tearing the last epoch's
//! segment at an arbitrary byte offset, reopening recovers every intact
//! epoch, whose answers still verify and equal the in-memory oracle; the
//! torn epoch is dropped whole (a half-epoch must never serve bins, or
//! fixed-size fetches — the volume-hiding invariant — would break).

use std::path::PathBuf;
use std::sync::Arc;

use concealer_core::query::AnswerValue;
use concealer_core::{
    ConcealerSystem, DiskEpochStore, ExecOptions, MasterKey, Query, QueryAnswer, RangeMethod,
    Record, SystemBuilder, SystemConfig, UserHandle,
};
use concealer_storage::AccessEvent;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concealer-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic per-epoch workload; `salt` decorrelates epochs.
fn epoch_records(epoch_start: u64, n: u64, salt: u64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::spatial(
                (i * 7 + salt) % 8,
                epoch_start + (i * 13 + salt * 5) % 3_600,
                1_000 + (i + salt) % 5,
            )
        })
        .collect()
}

/// Build a system on `backend` (None = in-memory) with a pinned master and
/// ingest `epochs` deterministically — identical RNG streams per epoch, so
/// ciphertexts, trapdoors and therefore adversary traces are comparable
/// across backends.
fn build_ingested(
    master: &MasterKey,
    backend: Option<Arc<DiskEpochStore>>,
    epochs: &[Vec<Record>],
) -> (ConcealerSystem, UserHandle) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut builder = SystemBuilder::new(SystemConfig::small_test())
        .master(master.clone())
        .engine_seed(7);
    if let Some(backend) = backend {
        builder = builder.with_backend(backend);
    }
    let mut system = builder.build(&mut rng).expect("assemble deployment");
    let user = system.register_user(1, vec![1_000, 1_001, 1_002, 1_003, 1_004], true);
    for (i, records) in epochs.iter().enumerate() {
        let start = i as u64 * 3_600;
        let mut ingest_rng = StdRng::seed_from_u64(1_000 + i as u64);
        system
            .ingest_epoch(start, records, &mut ingest_rng)
            .expect("ingest epoch");
    }
    (system, user)
}

/// The mixed workload of the acceptance criterion: point, range (all
/// non-forward-private methods) and batched/parallel-batched queries.
fn run_workload(system: &ConcealerSystem, user: &UserHandle, span: u64) -> Vec<QueryAnswer> {
    let session = system.session(user);
    let mut answers = Vec::new();
    for loc in [0u64, 3, 7] {
        let q = Query::count().at_dims([loc]).at(500 + loc * 60);
        answers.push(session.execute(&q).expect("point query"));
    }
    for method in [
        RangeMethod::Bpb,
        RangeMethod::Ebpb,
        RangeMethod::WinSecRange,
    ] {
        let q = Query::count().at_dims([2]).between(0, span - 1);
        answers.push(
            session
                .execute_with(&q, ExecOptions::with_method(method))
                .expect("range query"),
        );
    }
    let batch: Vec<Query> = (0..8)
        .map(|i| {
            Query::count()
                .at_dims([i % 8])
                .between(i * 300, span - 1 - i * 100)
        })
        .collect();
    let batch_session = session
        .clone()
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));
    for answer in batch_session.execute_batch(&batch) {
        answers.push(answer.expect("batched query"));
    }
    for answer in batch_session.par_execute_batch(&batch) {
        answers.push(answer.expect("parallel batched query"));
    }
    answers
}

#[test]
fn disk_system_answers_and_traces_match_memory_and_survive_reopen() {
    let root = scratch("equivalence");
    let master = MasterKey::from_bytes([21u8; 32]);
    let epochs: Vec<Vec<Record>> = (0..3).map(|i| epoch_records(i * 3_600, 150, i)).collect();
    let span = 3 * 3_600;

    let (mem_system, mem_user) = build_ingested(&master, None, &epochs);
    let (disk_system, disk_user) = build_ingested(
        &master,
        Some(Arc::new(DiskEpochStore::open(&root).expect("open store"))),
        &epochs,
    );
    assert_eq!(disk_system.store().backend_kind(), "disk");

    // Same answers, bit-identical — including fetch metadata and the
    // verified flag (hash chains pass on both backends).
    mem_system.observer().reset();
    disk_system.observer().reset();
    let mem_answers = run_workload(&mem_system, &mem_user, span);
    let disk_answers = run_workload(&disk_system, &disk_user, span);
    assert_eq!(disk_answers, mem_answers);
    assert!(mem_answers.iter().all(|a| a.verified));

    // Same adversary trace, event for event.
    let mem_trace: Vec<AccessEvent> = mem_system.observer().trace();
    let disk_trace: Vec<AccessEvent> = disk_system.observer().trace();
    assert_eq!(disk_trace, mem_trace);

    // Drop the disk deployment and reopen from the same root + master:
    // every epoch is still there and the whole workload replays
    // identically, traces included.
    drop(disk_system);
    let mut rng = StdRng::seed_from_u64(2);
    let mut reopened = SystemBuilder::new(SystemConfig::small_test())
        .master(master)
        .engine_seed(7)
        .with_backend(Arc::new(DiskEpochStore::open(&root).expect("reopen store")))
        .build(&mut rng)
        .expect("reopen deployment");
    assert_eq!(reopened.store().epoch_ids(), vec![0, 3_600, 7_200]);
    assert_eq!(reopened.engine().registered_epochs(), vec![0, 3_600, 7_200]);
    let user = reopened.register_user(1, vec![1_000, 1_001, 1_002, 1_003, 1_004], true);
    reopened.observer().reset();
    let reopened_answers = run_workload(&reopened, &user, span);
    assert_eq!(reopened_answers, mem_answers);
    let reopened_trace: Vec<AccessEvent> = reopened.observer().trace();
    assert_eq!(reopened_trace, mem_trace);

    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Crash recovery: write N epochs, truncate the last ("active")
    /// epoch's segment at a random byte offset, reopen — all intact
    /// epochs verify and answer exactly like the in-memory oracle, and
    /// the torn epoch is gone whole.
    #[test]
    fn torn_segment_recovery_matches_in_memory_oracle(
        seed in 0u64..1_000,
        num_epochs in 1usize..4,
        cut_sel in 0u64..100_000,
    ) {
        let root = std::env::temp_dir().join(format!(
            "concealer-durable-crash-{}-{seed}-{num_epochs}-{cut_sel}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);

        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        let master = MasterKey::from_bytes(key);
        let epochs: Vec<Vec<Record>> = (0..num_epochs as u64)
            .map(|i| epoch_records(i * 3_600, 40 + (seed % 30), seed + i))
            .collect();

        // Ingest to disk, then "crash": drop the deployment and tear the
        // last epoch's committed segment at an arbitrary offset.
        let victim_path = {
            let disk = Arc::new(DiskEpochStore::open(&root).expect("open store"));
            let (system, _user) = build_ingested(&master, Some(disk.clone()), &epochs);
            drop(system);
            disk.segment_path((num_epochs as u64 - 1) * 3_600)
                .expect("victim epoch committed")
        };
        let full_len = std::fs::metadata(&victim_path).expect("victim exists").len();
        let cut = cut_sel % full_len; // strictly shorter: the footer is always lost
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim_path)
            .expect("open victim segment");
        f.set_len(cut).expect("truncate victim segment");
        drop(f);

        // Reopen: recovery truncates the torn tail and drops the victim.
        let reopened = Arc::new(DiskEpochStore::open(&root).expect("recovery reopen"));
        let surviving: Vec<u64> = (0..num_epochs as u64 - 1).map(|i| i * 3_600).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut system = SystemBuilder::new(SystemConfig::small_test())
            .master(master.clone())
            .engine_seed(7)
            .with_backend(reopened)
            .build(&mut rng)
            .expect("reopen deployment");
        prop_assert_eq!(system.store().epoch_ids(), surviving.clone());
        let user = system.register_user(1, vec![], true);

        // Oracle: the same surviving epochs on the in-memory backend.
        let (oracle, oracle_user) = build_ingested(
            &master,
            None,
            &epochs[..num_epochs - 1],
        );

        for &epoch_start in &surviving {
            for loc in 0u64..4 {
                let q = Query::count()
                    .at_dims([loc * 2])
                    .between(epoch_start, epoch_start + 3_599);
                let got = system
                    .session(&user)
                    .execute_with(&q, ExecOptions::with_method(RangeMethod::Bpb))
                    .expect("recovered epoch query");
                let want = oracle
                    .session(&oracle_user)
                    .execute_with(&q, ExecOptions::with_method(RangeMethod::Bpb))
                    .expect("oracle query");
                prop_assert_eq!(&got, &want);
                prop_assert!(got.verified, "hash chains must verify after recovery");
                prop_assert!(matches!(got.value, AnswerValue::Count(_)));
            }
        }
        // The torn epoch answers nothing rather than something partial.
        if let Some(&last) = surviving.last() {
            let beyond = Query::count().at_dims([1]).at(last + 3_600 + 10);
            prop_assert!(system.session(&user).execute(&beyond).is_err());
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
