//! Loopback tests of the serving layer: answers delivered over TCP must
//! be **bit-identical** (same `serde::bin` encoding) to executing the
//! same queries on an in-process [`Session`] oracle, under concurrency,
//! pipelining, live wire ingest, structured error replies, and — on the
//! disk backend — a mid-connection server restart.
//!
//! The fixture honors `CONCEALER_TEST_BACKEND`, so the CI backend matrix
//! reruns this whole suite against the durable store; the restart test
//! constructs its disk deployment explicitly and runs everywhere.

use std::sync::Arc;

use concealer_bench::{server_request_mix, ServerRequest};
use concealer_client::{ClientBuilder, ClientError, Session};
use concealer_core::{
    ConcealerSystem, DiskEpochStore, ExecOptions, MasterKey, Query, QueryAnswer, RangeMethod,
    SystemBuilder, UserHandle,
};
use concealer_examples::{demo_config, demo_epoch_records, demo_system, demo_workload};
use concealer_server::{
    ErrorCode, Request, Response, Server, ServerConfig, CONNECTION_LEVEL_ID, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::frame::{read_frame, write_frame, FrameError};

const HOURS: u64 = 2;
const SEED: u64 = 4242;

/// Spawn a server over a fresh demo deployment, returning the shared
/// system (the oracle), the user, and the handle.
fn spawn_demo_server(
    config: ServerConfig,
) -> (
    Arc<ConcealerSystem>,
    UserHandle,
    concealer_server::ServerHandle,
) {
    let (system, user, _records) = demo_system(HOURS, SEED);
    let system = Arc::new(system);
    let handle = Server::new(Arc::clone(&system), config)
        .spawn()
        .expect("bind loopback");
    (system, user, handle)
}

fn wire_bytes(answer: &QueryAnswer) -> Vec<u8> {
    serde::bin::to_bytes(answer)
}

/// Attest + authenticate with the redesigned client surface (the default
/// trust policy — the demo enclave's quotes must verify).
fn connect_user(
    addr: std::net::SocketAddr,
    user: &UserHandle,
    name: &str,
) -> Result<Session, ClientError> {
    ClientBuilder::new(addr)
        .user(user)
        .client_name(name)
        .connect()
}

/// Drive the mandatory pre-auth `Attest` exchange on a raw stream, so a
/// subsequent `Hello` reaches the version/auth checks instead of the v4
/// pre-auth matrix's `attestation_failed` refusal.
fn raw_attest(stream: &mut std::net::TcpStream) {
    write_frame(
        &mut *stream,
        &Request::Attest {
            id: 1,
            nonce: [7u8; 32],
        },
    )
    .unwrap();
    let reply: Response = read_frame(&mut *stream, 1 << 20).unwrap();
    assert!(
        matches!(reply, Response::AttestOk { id: 1, .. }),
        "{reply:?}"
    );
}

/// ≥ 8 concurrent TCP clients run mixed point/range/batch workloads;
/// every wire answer must encode byte-for-byte like the in-process oracle
/// session's answer.
#[test]
fn concurrent_clients_match_in_process_oracle_bit_for_bit() {
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 18;
    let (system, user, handle) = spawn_demo_server(ServerConfig::default());
    let addr = handle.local_addr();
    let workload = demo_workload(HOURS);

    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let system = &system;
            let user = &user;
            let workload = &workload;
            scope.spawn(move || {
                let mix = server_request_mix(workload, SEED + client_idx as u64, REQUESTS, 6);
                let mut conn =
                    connect_user(addr, user, "loopback").expect("connect and authenticate");
                let oracle = system.session(user);
                for request in &mix {
                    match request {
                        ServerRequest::Query(query, options) => {
                            let got = conn.execute_with(query, *options).expect("wire query");
                            let want = oracle.execute_with(query, *options).expect("oracle query");
                            assert_eq!(wire_bytes(&got), wire_bytes(&want));
                        }
                        ServerRequest::Batch(queries, options) => {
                            let got = conn
                                .execute_batch_with(queries, *options)
                                .expect("wire batch");
                            let want = oracle.clone().with_options(*options).execute_batch(queries);
                            assert_eq!(got.len(), want.len());
                            for (g, w) in got.iter().zip(&want) {
                                let g = g.as_ref().expect("wire batch entry");
                                let w = w.as_ref().expect("oracle batch entry");
                                assert_eq!(wire_bytes(g), wire_bytes(w));
                            }
                        }
                    }
                }
                conn.close().expect("clean goodbye");
            });
        }
    });

    let report = handle.shutdown_and_join();
    assert!(report.graceful);
    assert_eq!(report.connections_served, CLIENTS as u64);
}

/// Pipelined batches on one connection: several tickets in flight, redeemed
/// out of submission order, each matching the oracle.
#[test]
fn pipelined_batches_redeemed_out_of_order() {
    let (system, user, handle) = spawn_demo_server(ServerConfig::default());
    let workload = demo_workload(HOURS);
    let mut rng = StdRng::seed_from_u64(77);
    let batches: Vec<Vec<Query>> = (0..4)
        .map(|_| {
            (0..5)
                .map(|_| workload.q1(25 * 60, &mut rng))
                .collect::<Vec<_>>()
        })
        .collect();
    let options = ExecOptions::with_method(RangeMethod::Bpb);

    let mut conn = connect_user(handle.local_addr(), &user, "pipeline").unwrap();
    let tickets: Vec<_> = batches
        .iter()
        .map(|queries| conn.submit_batch(queries, Some(options)).expect("submit"))
        .collect();
    // Redeem in reverse order: replies park until their ticket comes up.
    let oracle = system.session(&user).with_options(options);
    for (ticket, queries) in tickets.into_iter().zip(&batches).rev() {
        let got = conn.wait_batch(ticket).expect("pipelined batch");
        let want = oracle.execute_batch(queries);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                wire_bytes(g.as_ref().unwrap()),
                wire_bytes(w.as_ref().unwrap())
            );
        }
    }
    conn.close().unwrap();
    handle.shutdown_and_join();
}

/// Wire ingest lands concurrently with live query traffic; queries bounded
/// to the first epoch keep answering identically throughout, and the new
/// epoch becomes queryable.
#[test]
fn wire_ingest_runs_alongside_live_queries() {
    let (system, user, handle) = spawn_demo_server(ServerConfig::default());
    let addr = handle.local_addr();
    let workload = demo_workload(HOURS);
    let epoch_query = Query::count().at_dims([4]).between(0, HOURS * 3600 - 1);
    let baseline = system.session(&user).execute(&epoch_query).unwrap();

    std::thread::scope(|scope| {
        let user = &user;
        // Ingest client: two follow-up epochs.
        scope.spawn(move || {
            let mut conn = connect_user(addr, user, "ingester").unwrap();
            for k in 1..=2u64 {
                let epoch_start = k * HOURS * 3600;
                let records = demo_epoch_records(HOURS, SEED, epoch_start);
                let rows = conn.ingest_epoch(epoch_start, &records).expect("ingest");
                assert!(rows > 0);
            }
            conn.close().unwrap();
        });
        // Query clients hammering the first epoch while ingest is live.
        for i in 0..3 {
            let workload = &workload;
            let epoch_query = &epoch_query;
            let baseline = &baseline;
            scope.spawn(move || {
                let mut conn = connect_user(addr, user, "querier").unwrap();
                let mut rng = StdRng::seed_from_u64(100 + i);
                for _ in 0..10 {
                    let q = workload.q1(30 * 60, &mut rng);
                    conn.execute(&q).expect("query during ingest");
                    let stable = conn.execute(epoch_query).expect("stable query");
                    assert_eq!(wire_bytes(&stable), wire_bytes(baseline));
                }
                conn.close().unwrap();
            });
        }
    });

    // After ingest: a spanning query touches the new epochs, and the wire
    // answer still matches the oracle on the same (shared) system.
    let mut conn = connect_user(addr, &user, "after").unwrap();
    let spanning = Query::count().at_dims([4]).between(0, 3 * HOURS * 3600 - 1);
    let got = conn.execute(&spanning).unwrap();
    let want = system.session(&user).execute(&spanning).unwrap();
    assert_eq!(wire_bytes(&got), wire_bytes(&want));
    assert_eq!(got.epochs_touched, 3);
    conn.close().unwrap();
    handle.shutdown_and_join();
}

/// Error replies: bad credentials, premature requests, reserved ids,
/// oversized batches, oversized frames, and malformed payloads all come
/// back as structured errors (and only the unrecoverable ones close the
/// connection).
#[test]
fn structured_error_replies() {
    let (_system, user, handle) = spawn_demo_server(ServerConfig {
        max_batch: 4,
        max_frame_len: 64 << 10,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // Wrong credential → AuthFailed at the handshake.
    let err = ClientBuilder::new(addr)
        .credential(user.user_id.0, [0u8; 32])
        .client_name("evil")
        .connect()
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Handshake(ref m) if m.contains("auth_failed")),
        "{err}"
    );

    // Unknown user → AuthFailed too.
    let err = ClientBuilder::new(addr)
        .credential(999, user.credential.0)
        .client_name("ghost")
        .connect()
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Handshake(ref m) if m.contains("auth_failed")),
        "{err}"
    );

    // Wrong protocol version → UnsupportedVersion. (The `Hello` must be
    // preceded by the mandatory pre-auth `Attest` exchange, or the v4
    // pre-auth matrix refuses it with `AttestationFailed` first.)
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        raw_attest(&mut stream);
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION + 1,
                user_id: user.user_id.0,
                credential: user.credential.0,
                client_name: "future".into(),
            },
        )
        .unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(matches!(
            reply,
            Response::Error { id: CONNECTION_LEVEL_ID, ref error }
                if error.code == ErrorCode::UnsupportedVersion
        ));
    }

    // A request before Hello → NotAuthenticated.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &Request::Stats { id: 1 }).unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(matches!(
            reply,
            Response::Error { ref error, .. } if error.code == ErrorCode::NotAuthenticated
        ));
    }

    // A malformed frame (valid length prefix, garbage payload) → a
    // structured MalformedFrame reply, then close.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        use std::io::Write as _;
        stream.write_all(&8u32.to_le_bytes()).unwrap();
        stream.write_all(&[0xff; 8]).unwrap();
        stream.flush().unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(matches!(
            reply,
            Response::Error { ref error, .. } if error.code == ErrorCode::MalformedFrame
        ));
        assert!(matches!(
            read_frame::<_, Response>(&mut stream, 1 << 20),
            Err(FrameError::Closed)
        ));
    }

    // Oversized batch → BatchTooLarge, and the connection stays usable.
    {
        let mut conn = connect_user(addr, &user, "bigbatch").unwrap();
        let queries: Vec<Query> = (0..5)
            .map(|i| Query::count().at_dims([i]).at(600))
            .collect();
        let err = conn.execute_batch(&queries).unwrap_err();
        assert!(
            matches!(err, ClientError::Server(ref e) if e.code == ErrorCode::BatchTooLarge),
            "{err}"
        );
        // Still serving:
        conn.execute(&Query::count().at_dims([1]).at(600)).unwrap();
        conn.close().unwrap();
    }

    // Oversized frame → FrameTooLarge, connection survives (the server
    // drains the payload to stay frame-aligned).
    {
        let mut conn = connect_user(addr, &user, "bigframe").unwrap();
        let records: Vec<concealer_core::Record> = (0..20_000)
            .map(|i| concealer_core::Record::spatial(i % 12, i % 7200, 1000 + i % 40))
            .collect();
        let err = conn.ingest_epoch(4 * HOURS * 3600, &records).unwrap_err();
        assert!(
            matches!(err, ClientError::Server(ref e) if e.code == ErrorCode::FrameTooLarge),
            "{err}"
        );
        conn.execute(&Query::count().at_dims([1]).at(600)).unwrap();
        conn.close().unwrap();
    }

    // Reserved request id 0 → ProtocolViolation.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        raw_attest(&mut stream);
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                user_id: user.user_id.0,
                credential: user.credential.0,
                client_name: "reserved".into(),
            },
        )
        .unwrap();
        let _hello: Response = read_frame(&mut stream, 1 << 20).unwrap();
        write_frame(&mut stream, &Request::Stats { id: 0 }).unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(matches!(
            reply,
            Response::Error { ref error, .. } if error.code == ErrorCode::ProtocolViolation
        ));
    }

    handle.shutdown_and_join();
}

/// Individualized queries still enforce device authorization over the
/// wire: a user asking about someone else's device gets `Unauthorized`.
#[test]
fn wire_queries_enforce_authorization_scope() {
    let (_system, user, handle) = spawn_demo_server(ServerConfig::default());
    let mut conn = connect_user(handle.local_addr(), &user, "scope").unwrap();
    // demo_system authorizes devices 1000..1300; 555 belongs to no one.
    let foreign = Query::collect_rows().observing(555).between(0, 3_599);
    let err = conn.execute(&foreign).unwrap_err();
    assert!(
        matches!(err, ClientError::Server(ref e) if e.code == ErrorCode::Unauthorized),
        "{err}"
    );
    // The session survives the refusal.
    conn.execute(&Query::count().at_dims([2]).at(120)).unwrap();
    conn.close().unwrap();
    handle.shutdown_and_join();
}

/// The connection cap: connections over `max_connections` are refused
/// with a `Busy` error frame, earlier ones keep working.
#[test]
fn connections_over_the_cap_are_refused_busy() {
    let (_system, user, handle) = spawn_demo_server(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    let mut first = connect_user(addr, &user, "one").unwrap();
    let second = connect_user(addr, &user, "two").unwrap();
    // The third must come back Busy (the cap is checked at accept time;
    // the refusal path drains the pending Hello so the frame is reliably
    // delivered, never lost to an RST).
    let err = connect_user(addr, &user, "three").unwrap_err();
    assert!(
        matches!(err, ClientError::Handshake(ref m) if m.contains("busy")),
        "{err}"
    );
    first.execute(&Query::count().at_dims([1]).at(60)).unwrap();
    drop(second);
    first.close().unwrap();
    let report = handle.shutdown_and_join();
    assert!(report.rejected_busy >= 1);
}

/// Mid-connection server restart on the disk backend: a client loses its
/// connection, the deployment reopens from the same durable root (same
/// master), a new server serves it, and answers are bit-identical to
/// before the restart.
#[test]
fn disk_backend_survives_mid_connection_server_restart() {
    let root = std::env::temp_dir().join(format!(
        "concealer-server-restart-{}-{}",
        std::process::id(),
        SEED
    ));
    let _ = std::fs::remove_dir_all(&root);
    let master = MasterKey::from_bytes([21u8; 32]);
    let records = demo_epoch_records(HOURS, SEED, 0);
    let queries: Vec<Query> = vec![
        Query::count().at_dims([4]).between(0, HOURS * 3600 - 1),
        Query::top_k_locations(5).between(0, HOURS * 3600 - 1),
        Query::count().at_dims([7]).at(1_800),
    ];

    let build = |rng_seed: u64| -> (ConcealerSystem, UserHandle) {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut system = SystemBuilder::new(demo_config(HOURS))
            .master(master.clone())
            .with_backend(Arc::new(DiskEpochStore::open(&root).expect("open root")))
            .build(&mut rng)
            .expect("build on durable root");
        let user = system.register_user(7, (1000..1300).collect(), true);
        (system, user)
    };

    // First server generation: ingest, query over the wire, then shut the
    // server down while the client connection is still open.
    let before = {
        let (system, user) = build(1);
        let mut rng = StdRng::seed_from_u64(2);
        system.ingest_epoch(0, &records, &mut rng).expect("ingest");
        let handle = Server::new(Arc::new(system), ServerConfig::default())
            .spawn()
            .unwrap();
        let mut conn = connect_user(handle.local_addr(), &user, "gen1").unwrap();
        let before: Vec<Vec<u8>> = queries
            .iter()
            .map(|q| wire_bytes(&conn.execute(q).expect("pre-restart query")))
            .collect();
        // Kill the server mid-connection (not via Goodbye).
        handle.shutdown_and_join();
        // The surviving connection now fails cleanly.
        let err = conn.execute(&queries[0]).unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Closed | ClientError::Io(_) | ClientError::Server(_)
            ),
            "{err}"
        );
        before
    };

    // Second generation: reopen the same root (nothing re-ingested) and
    // serve again (a fresh ephemeral port — the old one may sit in
    // TIME_WAIT); a fresh client sees bit-identical answers.
    let (system, user) = build(3);
    let handle = Server::new(Arc::new(system), ServerConfig::default())
        .spawn()
        .expect("serve the reopened deployment");
    let mut conn = connect_user(handle.local_addr(), &user, "gen2").unwrap();
    assert_eq!(conn.server_info().backend, "disk");
    for (query, before) in queries.iter().zip(&before) {
        let after = conn.execute(query).expect("post-restart query");
        assert_eq!(&wire_bytes(&after), before);
        assert!(after.verified);
    }
    conn.close().unwrap();
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&root);
}

/// Stats and server info over the wire reflect the deployment.
#[test]
fn stats_and_server_info_reflect_the_deployment() {
    let (system, user, handle) = spawn_demo_server(ServerConfig {
        server_name: "loopback-fixture".into(),
        ..ServerConfig::default()
    });
    let mut conn = connect_user(handle.local_addr(), &user, "stats").unwrap();
    let info = conn.server_info().clone();
    assert_eq!(info.protocol_version, PROTOCOL_VERSION);
    assert_eq!(info.server_name, "loopback-fixture");
    assert_eq!(info.backend, system.store().backend_kind());
    assert!(info.ingest_allowed);

    use concealer_core::SecureIndex as _;
    let want = system.answer_stats();
    let got = conn.stats().unwrap();
    assert_eq!(got.backend, want.backend);
    assert_eq!(got.epochs as usize, want.epochs);
    assert_eq!(got.rows_stored as usize, want.rows_stored);
    assert!(got.volume_hiding && got.verifiable);
    conn.close().unwrap();
    handle.shutdown_and_join();
}

// ---------------------------------------------------------------------
// Frame-codec property tests
// ---------------------------------------------------------------------

/// A deterministic random protocol message (requests and responses both
/// travel the same frame codec).
fn random_request(rng: &mut StdRng) -> Request {
    let workload = demo_workload(HOURS);
    match rng.gen_range(0u32..6) {
        0 => Request::Hello {
            version: rng.gen(),
            user_id: rng.gen(),
            credential: std::array::from_fn(|_| rng.gen()),
            client_name: format!("client-{}", rng.gen_range(0u32..1000)),
        },
        1 => Request::Execute {
            id: rng.gen_range(1u64..u64::MAX),
            query: workload.q1(30 * 60, rng),
            options: Some(ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(3)),
        },
        2 => Request::ExecuteBatch {
            id: rng.gen_range(1u64..u64::MAX),
            queries: (0..rng.gen_range(0usize..6))
                .map(|_| workload.q2(45 * 60, 4, rng))
                .collect(),
            options: None,
        },
        3 => Request::IngestEpoch {
            id: rng.gen_range(1u64..u64::MAX),
            epoch_start: rng.gen_range(0u64..1 << 40),
            records: (0..rng.gen_range(0usize..8))
                .map(|_| {
                    concealer_core::Record::spatial(
                        rng.gen_range(0u64..30),
                        rng.gen_range(0u64..7200),
                        rng.gen_range(1000u64..1300),
                    )
                })
                .collect(),
        },
        4 => Request::Stats {
            id: rng.gen_range(1u64..u64::MAX),
        },
        _ => Request::Goodbye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Frame round-trip: any protocol message written as a frame reads
    /// back identical, and chained frames on one stream stay aligned.
    #[test]
    fn frame_codec_round_trips_protocol_messages(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let messages: Vec<Request> = (0..rng.gen_range(1usize..6))
            .map(|_| random_request(&mut rng))
            .collect();
        let mut buf = Vec::new();
        for message in &messages {
            write_frame(&mut buf, message).unwrap();
        }
        let mut reader = buf.as_slice();
        for message in &messages {
            let decoded: Request = read_frame(&mut reader, 1 << 20).expect("frame decode");
            prop_assert_eq!(&decoded, message);
        }
        prop_assert!(matches!(
            read_frame::<_, Request>(&mut reader, 1 << 20),
            Err(FrameError::Closed)
        ));
    }

    /// A truncated frame never decodes successfully — it errors (torn
    /// stream or short payload), it does not alias another message.
    #[test]
    fn truncated_frames_error_instead_of_aliasing(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let message = random_request(&mut rng);
        let mut buf = Vec::new();
        write_frame(&mut buf, &message).unwrap();
        let cut = rng.gen_range(0..buf.len());
        let mut reader = &buf[..cut];
        match read_frame::<_, Request>(&mut reader, 1 << 20) {
            Err(_) => {}
            Ok(decoded) => {
                // Only the degenerate cut-at-zero case may look clean, and
                // that path returns Closed (an Err) — decoding cannot
                // succeed on a strict prefix.
                prop_assert!(false, "truncated frame decoded as {decoded:?}");
            }
        }
    }
}
