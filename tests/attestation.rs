//! Attestation tests: the pre-authentication trust handshake introduced
//! by protocol v4. Before a credential crosses the wire the server must
//! produce a signed enclave quote that satisfies the client's
//! [`TrustPolicy`]; an unattested `Hello` is refused with a structured
//! `attestation_failed` error in **both** serving cores (each test that
//! exercises the pre-auth matrix spawns each core explicitly rather than
//! relying on the `CONCEALER_TEST_SERVER_MODE` matrix).

use std::sync::Arc;

use concealer_client::{ClientBuilder, ClientError, TrustPolicy};
use concealer_examples::demo_system;
use concealer_server::{
    ErrorCode, Request, Response, Server, ServerConfig, ServerHandle, ServerMode,
    CONNECTION_LEVEL_ID, PROTOCOL_VERSION,
};
use serde::frame::{read_frame, write_frame, FrameError};

const HOURS: u64 = 2;
const SEED: u64 = 31_337;

fn spawn_demo_server(mode: ServerMode) -> (concealer_core::UserHandle, ServerHandle) {
    let (system, user, _records) = demo_system(HOURS, SEED);
    let handle = Server::new(
        Arc::new(system),
        ServerConfig {
            mode,
            ..ServerConfig::default()
        },
    )
    .spawn()
    .expect("bind loopback");
    (user, handle)
}

/// The default builder policy (attestation required, quotes verified)
/// connects against the demo enclave, exposes the quote, and serves
/// queries.
#[test]
fn default_policy_attests_verifies_and_serves() {
    let (user, handle) = spawn_demo_server(ServerMode::Threaded);
    let mut conn = ClientBuilder::new(handle.local_addr())
        .user(&user)
        .client_name("attested")
        .connect()
        .expect("default policy connects");
    assert_eq!(conn.quotes().len(), 1, "single server, single quote");
    let quote = &conn.quotes()[0];
    assert_eq!(quote.code_version, concealer_enclave::ENCLAVE_CODE_VERSION);
    conn.execute(&concealer_core::Query::count().at_dims([3]).at(600))
        .expect("attested session serves queries");
    conn.close().unwrap();
    handle.shutdown_and_join();
}

/// `Hello` before a successful `Attest` → a fatal structured
/// `attestation_failed` at connection level, then close — in both
/// serving cores.
#[test]
fn hello_before_attest_is_refused_in_both_cores() {
    for mode in [ServerMode::Threaded, ServerMode::Event] {
        let (user, handle) = spawn_demo_server(mode);
        let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                user_id: user.user_id.0,
                credential: user.credential.0,
                client_name: "unattested".into(),
            },
        )
        .unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        match reply {
            Response::Error {
                id: CONNECTION_LEVEL_ID,
                ref error,
            } => {
                assert_eq!(
                    error.code,
                    ErrorCode::AttestationFailed,
                    "{mode:?}: {error}"
                );
                assert!(error.to_string().contains("attestation_failed"), "{error}");
            }
            other => panic!("{mode:?}: expected attestation_failed, got {other:?}"),
        }
        // The refusal is fatal: the server closes at a frame boundary.
        assert!(
            matches!(
                read_frame::<_, Response>(&mut stream, 1 << 20),
                Err(FrameError::Closed)
            ),
            "{mode:?}: unattested Hello must close the connection"
        );
        handle.shutdown_and_join();
    }
}

/// The pre-auth surface is exactly {Attest, ShardInfo}: topology
/// discovery works before attestation, an `Attest` error reply leaves
/// the connection open for retry, and `Attest` after authentication is a
/// protocol violation — in both serving cores.
#[test]
fn pre_auth_matrix_is_enforced_in_both_cores() {
    for mode in [ServerMode::Threaded, ServerMode::Event] {
        let (user, handle) = spawn_demo_server(mode);
        let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();

        // ShardInfo: answerable before any attestation.
        write_frame(&mut stream, &Request::ShardInfo { id: 1 }).unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(
            matches!(reply, Response::ShardInfoOk { id: 1, .. }),
            "{mode:?}: {reply:?}"
        );

        // A reserved-id Attest is refused — but the refusal is itself an
        // answer; the matrix only admits {Attest, ShardInfo}, so the
        // stream keeps serving a corrected retry.
        write_frame(
            &mut stream,
            &Request::Attest {
                id: 2,
                nonce: [3u8; 32],
            },
        )
        .unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(
            matches!(reply, Response::AttestOk { id: 2, .. }),
            "{mode:?}: {reply:?}"
        );

        // Authenticate, then re-attest: the trust decision was already
        // made for this connection — protocol violation, fatal.
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                user_id: user.user_id.0,
                credential: user.credential.0,
                client_name: "matrix".into(),
            },
        )
        .unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(matches!(reply, Response::HelloOk(_)), "{mode:?}: {reply:?}");
        write_frame(
            &mut stream,
            &Request::Attest {
                id: 3,
                nonce: [4u8; 32],
            },
        )
        .unwrap();
        let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(
            matches!(
                reply,
                Response::Error {
                    id: CONNECTION_LEVEL_ID,
                    ref error
                } if error.code == ErrorCode::ProtocolViolation
            ),
            "{mode:?}: {reply:?}"
        );

        handle.shutdown_and_join();
    }
}

/// A measurement pin that does not match the enclave → a structured
/// [`ClientError::Attestation`] before `Hello` (no credential crossed
/// the wire); the matching pin connects.
#[test]
fn measurement_pins_gate_the_credential() {
    let (user, handle) = spawn_demo_server(ServerMode::Threaded);
    let addr = handle.local_addr();

    // Learn the genuine measurement from a pre-auth probe.
    let probe = ClientBuilder::new(addr).probe().expect("attested probe");
    let genuine = probe.quotes()[0].measurement;
    drop(probe);

    // Wrong pin: refused as an attestation failure.
    let err = ClientBuilder::new(addr)
        .user(&user)
        .trust_policy(TrustPolicy::pinned(vec![[0xAB; 32]]))
        .connect()
        .unwrap_err();
    match err {
        ClientError::Attestation(ref m) => {
            assert!(m.contains("measurement"), "{m}")
        }
        other => panic!("expected ClientError::Attestation, got {other:?}"),
    }

    // The genuine pin (plus a decoy) connects and serves.
    let mut conn = ClientBuilder::new(addr)
        .user(&user)
        .trust_policy(TrustPolicy::pinned(vec![[0xAB; 32], genuine]))
        .connect()
        .expect("genuine pin connects");
    conn.execute(&concealer_core::Query::count().at_dims([3]).at(600))
        .expect("pinned session serves");
    conn.close().unwrap();
    handle.shutdown_and_join();
}

/// `TrustPolicy::allow_unattested` still runs the attestation round (the
/// server requires it before `Hello`) but skips client-side verification
/// — the escape hatch for keyless intermediaries and bring-up.
#[test]
fn allow_unattested_skips_verification_but_still_attests() {
    let (user, handle) = spawn_demo_server(ServerMode::Threaded);
    let conn = ClientBuilder::new(handle.local_addr())
        .user(&user)
        .trust_policy(TrustPolicy::allow_unattested())
        .connect()
        .expect("unattested policy connects");
    // The quotes were still received and exposed — the policy only
    // skipped verification.
    assert_eq!(conn.quotes().len(), 1);
    conn.close().unwrap();
    handle.shutdown_and_join();
}

/// The quote's nonce echo is enforced: a stale nonce (a replayed quote)
/// is rejected by the default policy. Driven through the raw wire so the
/// test controls the nonce on both legs.
#[test]
fn nonce_echo_is_enforced_by_the_trust_policy() {
    let (_user, handle) = spawn_demo_server(ServerMode::Threaded);
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    write_frame(
        &mut stream,
        &Request::Attest {
            id: 1,
            nonce: [5u8; 32],
        },
    )
    .unwrap();
    let reply: Response = read_frame(&mut stream, 1 << 20).unwrap();
    let Response::AttestOk { quotes, .. } = reply else {
        panic!("expected AttestOk, got {reply:?}");
    };
    let quote = &quotes[0];
    assert_eq!(quote.nonce, [5u8; 32], "quote echoes the challenge nonce");

    // The signature binds the nonce: converting to the enclave-side quote
    // verifies as issued, and flipping the nonce breaks verification.
    let issued = concealer_enclave::Quote {
        measurement: quote.measurement,
        code_version: quote.code_version,
        timestamp: quote.timestamp,
        nonce: quote.nonce,
        signature: quote.signature,
    };
    assert!(concealer_enclave::attest::verify_signature(&issued));
    let mut replayed = issued;
    replayed.nonce = [6u8; 32];
    assert!(
        !concealer_enclave::attest::verify_signature(&replayed),
        "a re-nonced quote must not verify"
    );
    handle.shutdown_and_join();
}
