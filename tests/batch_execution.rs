//! Tests of `Session::execute_batch`: cross-query bin deduplication must
//! change *nothing* about the answers and *nothing* about what the
//! adversary can learn — it may only remove duplicate fetches.
//!
//! * A property test asserts batch answers equal sequential answers
//!   (including the per-query fetch metadata) on random WiFi-workload
//!   query mixes.
//! * An observer-trace test asserts a 32-query mix performs strictly fewer
//!   store fetches batched than sequential, that the batched row set is
//!   exactly the union of the sequential per-query row sets, and that no
//!   row is fetched twice (per-bin fetch sizes unchanged — bins are always
//!   fetched whole).

use concealer_core::{ConcealerSystem, ExecOptions, Query, QueryAnswer, RangeMethod, UserHandle};
use concealer_examples::demo_system;
use concealer_workloads::QueryWorkload;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// One shared deployment for the property test — building a system per
/// generated case would dominate the runtime.
fn shared_system() -> &'static (ConcealerSystem, UserHandle, QueryWorkload) {
    static SYSTEM: OnceLock<(ConcealerSystem, UserHandle, QueryWorkload)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let (system, user, _records) = demo_system(2, 401);
        let workload = QueryWorkload {
            locations: 30,
            devices: (1000..1300).collect(),
            time_extent: (0, 2 * 3600),
        };
        (system, user, workload)
    })
}

/// A random mix of the paper's query templates (point + Q1/Q2/Q5 ranges).
fn random_mix(seed: u64, len: usize) -> Vec<Query> {
    let (_, _, workload) = shared_system();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| match i % 5 {
            0 => workload.q1_point(&mut rng),
            1 | 2 => workload.q1(25 * 60, &mut rng),
            3 => workload.q2(40 * 60, 4, &mut rng),
            _ => workload.q5(25 * 60, &mut rng),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Batched answers — values *and* execution metadata — equal running
    /// the same queries sequentially under the bin-granular BPB method,
    /// for the sequential batch path *and* the thread-pool path.
    #[test]
    fn batch_answers_equal_sequential(seed in 0u64..1_000, len in 1usize..12) {
        // Force the pool even on single-core hosts, where the engine would
        // otherwise (correctly) fall back to the sequential loop.
        std::env::set_var("CONCEALER_FORCE_THREADS", "1");
        let (system, user, _) = shared_system();
        let session = system
            .session(user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb));
        let queries = random_mix(seed, len);

        let sequential: Vec<QueryAnswer> = queries
            .iter()
            .map(|q| session.execute(q).expect("sequential execute"))
            .collect();
        let batched: Vec<QueryAnswer> = session
            .execute_batch(&queries)
            .into_iter()
            .map(|r| r.expect("batched execute"))
            .collect();
        prop_assert_eq!(&batched, &sequential);

        // The thread-pool path at every interesting fetch-stage chunk size:
        // single-bin chunks, tiny chunks, auto (one chunk per worker), and
        // one chunk swallowing the whole union.
        for fetch_chunk in [1usize, 2, 0, usize::MAX] {
            let parallel: Vec<QueryAnswer> = system
                .session(user)
                .with_options(
                    ExecOptions::with_method(RangeMethod::Bpb)
                        .with_parallelism(4)
                        .with_fetch_chunk(fetch_chunk),
                )
                .execute_batch(&queries)
                .into_iter()
                .map(|r| r.expect("parallel batched execute"))
                .collect();
            prop_assert_eq!(&parallel, &sequential, "fetch_chunk={}", fetch_chunk);
        }
    }
}

#[test]
fn batch_of_32_fetches_strictly_less_with_identical_answers_and_trace_union() {
    // Force the pool even on single-core hosts, where the engine would
    // otherwise (correctly) fall back to the sequential loop.
    std::env::set_var("CONCEALER_FORCE_THREADS", "1");
    let (system, user, _records) = demo_system(2, 402);
    let workload = QueryWorkload {
        locations: 30,
        devices: (1000..1300).collect(),
        time_extent: (0, 2 * 3600),
    };
    let session = system
        .session(&user)
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));

    // A 32-query mix; overlapping windows and repeated locations guarantee
    // shared bins between queries.
    let mut rng = StdRng::seed_from_u64(403);
    let queries: Vec<Query> = (0..32)
        .map(|i| match i % 4 {
            0 => workload.q1_point(&mut rng),
            1 | 2 => workload.q1(30 * 60, &mut rng),
            _ => workload.q2(45 * 60, 5, &mut rng),
        })
        .collect();
    assert_eq!(queries.len(), 32);

    // Sequential run: collect answers plus the adversary's per-query trace.
    system.observer().reset();
    let sequential: Vec<QueryAnswer> = queries
        .iter()
        .map(|q| session.execute(q).expect("sequential"))
        .collect();
    let sequential_sets = system.observer().per_query_fetch_sets();
    assert_eq!(sequential_sets.len(), 32);
    let sequential_total: usize = sequential_sets.iter().map(Vec::len).sum();
    let sequential_union: BTreeSet<(u64, u64)> =
        sequential_sets.iter().flatten().copied().collect();

    // Batched run.
    system.observer().reset();
    let batched: Vec<QueryAnswer> = session
        .execute_batch(&queries)
        .into_iter()
        .map(|r| r.expect("batched"))
        .collect();
    let batch_summary = system.observer().summary();

    // Identical answers, including per-query fetch metadata.
    assert_eq!(batched, sequential);

    // Strictly fewer store fetches.
    assert!(
        batch_summary.rows_fetched < sequential_total,
        "batch must dedupe shared bins: {} vs {}",
        batch_summary.rows_fetched,
        sequential_total
    );

    // The batched trace is exactly the union of the per-query traces:
    // batching leaks nothing new, it only removes duplicate fetches.
    let batch_rows: BTreeSet<(u64, u64)> = batch_summary.fetch_frequency.keys().copied().collect();
    assert_eq!(batch_rows, sequential_union, "row set must be the union");

    // Every bin is fetched whole exactly once: no row appears twice, so
    // per-bin fetch sizes are unchanged from sequential execution.
    assert!(
        batch_summary.fetch_frequency.values().all(|&f| f == 1),
        "no row may be fetched more than once in a batch"
    );
    assert_eq!(batch_summary.rows_fetched, sequential_union.len());

    // The thread-pool path satisfies the exact same contract at every
    // fetch-stage chunk size — single-bin chunks, tiny chunks, auto (one
    // chunk per worker) and one whole-union chunk: identical answers, row
    // set = union, no duplicate fetches — and, because chunk traces are
    // merged back in ascending bin order, the event-level trace equals the
    // sequential batch trace too.
    let batch_trace = system.observer().take_events();
    for fetch_chunk in [1usize, 2, 4, 0, usize::MAX] {
        let parallel: Vec<QueryAnswer> = system
            .session(&user)
            .with_options(
                ExecOptions::with_method(RangeMethod::Bpb)
                    .with_parallelism(4)
                    .with_fetch_chunk(fetch_chunk),
            )
            .execute_batch(&queries)
            .into_iter()
            .map(|r| r.expect("parallel batched"))
            .collect();
        let parallel_trace = system.observer().take_events();
        assert_eq!(parallel, sequential, "fetch_chunk={fetch_chunk}");
        let parallel_summary = concealer_storage::AccessObserver::summarize(&parallel_trace);
        let parallel_rows: BTreeSet<(u64, u64)> =
            parallel_summary.fetch_frequency.keys().copied().collect();
        assert_eq!(
            parallel_rows, sequential_union,
            "parallel row set = union (fetch_chunk={fetch_chunk})"
        );
        assert!(
            parallel_summary.fetch_frequency.values().all(|&f| f == 1),
            "no row may be fetched more than once by the parallel path \
             (fetch_chunk={fetch_chunk})"
        );
        assert_eq!(
            parallel_trace, batch_trace,
            "parallel trace must be event-for-event identical to the \
             sequential batch (fetch_chunk={fetch_chunk})"
        );
    }
}

#[test]
fn batch_values_match_sequential_even_under_other_default_methods() {
    // A session whose default method is eBPB executes batches as a
    // sequential loop (its access-pattern profile is never silently
    // replanned at bin granularity), so answers trivially match.
    let (system, user, _records) = demo_system(1, 404);
    let workload = QueryWorkload {
        locations: 30,
        devices: vec![],
        time_extent: (0, 3600),
    };
    let session = system.session(&user); // default method: eBPB
    let mut rng = StdRng::seed_from_u64(405);
    let queries: Vec<Query> = (0..6).map(|_| workload.q1(20 * 60, &mut rng)).collect();

    let sequential_values: Vec<_> = queries
        .iter()
        .map(|q| session.execute(q).unwrap().value)
        .collect();
    let batched_values: Vec<_> = session
        .execute_batch(&queries)
        .into_iter()
        .map(|r| r.unwrap().value)
        .collect();
    assert_eq!(batched_values, sequential_values);
}

#[test]
fn forward_private_batches_fall_back_to_sequential_semantics() {
    let (system, user) = {
        let mut rng = StdRng::seed_from_u64(406);
        let mut system =
            concealer_examples::build_system(concealer_examples::demo_config(1), &mut rng);
        let user = system.register_user(1, vec![], true);
        let generator =
            concealer_workloads::WifiGenerator::new(concealer_workloads::WifiConfig::tiny());
        let records = generator.generate_epoch(0, 3600, &mut rng);
        system.ingest_epoch(0, &records, &mut rng).unwrap();
        let records2 = generator.generate_epoch(3600, 3600, &mut rng);
        system.ingest_epoch(3600, &records2, &mut rng).unwrap();
        (system, user)
    };
    let session = system.session(&user).with_options(ExecOptions {
        method: RangeMethod::Bpb,
        forward_private: true,
        ..ExecOptions::default()
    });
    let queries = vec![
        Query::count().at_dims([2]).between(0, 7199),
        Query::count().at_dims([2]).between(0, 7199),
    ];
    let results = session.execute_batch(&queries);
    assert!(results.iter().all(Result::is_ok));
    // The §6 protocol ran: the store saw re-encryption rewrites.
    assert!(system.store().rewrite_count(0).unwrap() > 0);
}
