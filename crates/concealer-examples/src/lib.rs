//! Shared helpers for the Concealer examples and the cross-crate
//! integration tests.
//!
//! The runnable examples live in the repository-root `examples/` directory
//! (`cargo run --example quickstart`), and the
//! integration tests in the repository-root `tests/` directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use concealer_core::{
    ConcealerSystem, FakeTupleStrategy, GridShape, MasterKey, Record, SystemBuilder, SystemConfig,
    UserHandle,
};
use concealer_workloads::{QueryWorkload, WifiConfig, WifiGenerator};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Build a deployment honoring the `CONCEALER_TEST_BACKEND` harness hook
/// (see [`concealer_core::BACKEND_ENV_VAR`]): unset or `memory` is the
/// default in-memory store; `disk` places the sealed epochs in a
/// crash-safe on-disk store under a fresh scratch directory, which is how
/// the CI backend matrix reruns the integration suites against
/// [`concealer_core::DiskEpochStore`]. Every test and example that does
/// not need a *specific* backend should construct its system through this
/// (or [`demo_system`]) so it participates in the matrix.
pub fn build_system<R: RngCore>(config: SystemConfig, rng: &mut R) -> ConcealerSystem {
    SystemBuilder::new(config)
        .backend_from_env()
        .expect("CONCEALER_TEST_BACKEND must be unset, \"memory\" or \"disk\"")
        .build(rng)
        .expect("a fresh backend has no epochs that could fail registration")
}

/// [`build_system`] with a pinned master key and engine seed, for tests
/// that compare deployments sharing key material.
pub fn build_system_with_master(
    config: SystemConfig,
    master: MasterKey,
    engine_seed: u64,
) -> ConcealerSystem {
    let mut rng = StdRng::seed_from_u64(engine_seed);
    SystemBuilder::new(config)
        .master(master)
        .engine_seed(engine_seed)
        .backend_from_env()
        .expect("CONCEALER_TEST_BACKEND must be unset, \"memory\" or \"disk\"")
        .build(&mut rng)
        .expect("a fresh backend has no epochs that could fail registration")
}

/// A small but realistic campus deployment used by several examples and
/// integration tests: one day of data, 24 hourly-ish time rows, moderate
/// skew.
pub fn demo_config(hours: u64) -> SystemConfig {
    SystemConfig {
        grid: GridShape {
            dim_buckets: vec![12],
            time_subintervals: (hours * 4).max(4),
            num_cell_ids: 64,
        },
        epoch_duration: hours * 3600,
        time_granularity: 60,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: true,
        oblivious: false,
        winsec_rows_per_interval: 4,
    }
}

/// Access points (= query-able locations) in the demo deployment.
pub const DEMO_ACCESS_POINTS: u64 = 30;

/// Device ids present in the demo data and authorized for the demo user.
pub const DEMO_DEVICES: std::ops::Range<u64> = 1000..1300;

/// The demo deployment's WiFi generator parameters — the single source of
/// truth shared by [`demo_system`], [`demo_epoch_records`] and (via the
/// constants above) [`demo_workload`], so a serving-layer oracle built
/// from the same `(hours, seed)` pair cannot drift from the server's
/// fixture.
#[must_use]
pub fn demo_wifi_config() -> WifiConfig {
    WifiConfig {
        access_points: DEMO_ACCESS_POINTS,
        devices: DEMO_DEVICES.end - DEMO_DEVICES.start,
        peak_rows_per_hour: 1_500,
        offpeak_rows_per_hour: 200,
        location_skew: 0.8,
    }
}

/// Build a demo deployment with `hours` of synthetic WiFi data already
/// ingested. Returns the system, an all-powers user handle, and the
/// cleartext records (for ground-truth comparison).
pub fn demo_system(hours: u64, seed: u64) -> (ConcealerSystem, UserHandle, Vec<Record>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let generator = WifiGenerator::new(demo_wifi_config());
    let records = generator.generate_epoch(0, hours * 3600, &mut rng);
    let mut system = build_system(demo_config(hours), &mut rng);
    let user = system.register_user(7, DEMO_DEVICES.collect(), true);
    system
        .ingest_epoch(0, &records, &mut rng)
        .expect("demo ingest");
    (system, user, records)
}

/// [`demo_system`] for one shard of a multi-node deployment: identical
/// RNG draw order (so the master key, fake-tuple draws, and user
/// credential match the unsharded fixture exactly), but epoch 0 is only
/// ingested when `shard_of_epoch(0, shard_total) == shard_index`. The
/// ingest is the *last* RNG consumer in [`demo_system`], so skipping it
/// on non-owning shards perturbs nothing. Returns the records whether or
/// not they were ingested (a router-side oracle still needs them).
///
/// # Panics
///
/// Panics if `shard_index >= shard_total` (a malformed shard spec).
pub fn demo_system_sharded(
    hours: u64,
    seed: u64,
    shard_index: u32,
    shard_total: u32,
) -> (ConcealerSystem, UserHandle, Vec<Record>) {
    assert!(
        shard_index < shard_total,
        "shard index {shard_index} out of range for total {shard_total}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let generator = WifiGenerator::new(demo_wifi_config());
    let records = generator.generate_epoch(0, hours * 3600, &mut rng);
    let mut system = build_system(demo_config(hours), &mut rng);
    let user = system.register_user(7, DEMO_DEVICES.collect(), true);
    if concealer_core::shard_of_epoch(0, shard_total as usize) == shard_index as usize {
        system
            .ingest_epoch(0, &records, &mut rng)
            .expect("demo ingest");
    }
    (system, user, records)
}

/// [`demo_system_sharded`] for one *member* of a replica set sharing the
/// durable store root `root`: identical RNG draw order to [`demo_system`]
/// (backend choice consumes no randomness), so every member of the set —
/// and the unsharded oracle — derives the same master key and user
/// credential. The writer opens the root owning it and ingests epoch 0
/// when its shard owns that epoch; replicas open it read-only with
/// [`concealer_core::DiskEpochStore::open_replica`] and ingest nothing —
/// they absorb the writer's committed epochs at open and on
/// [`ConcealerSystem::refresh_epochs`] ticks. Pass `shard: None` for an
/// unsharded (single-shard) set.
///
/// # Panics
///
/// Panics if the shard spec is malformed, the store root cannot be
/// opened, or the demo ingest fails.
pub fn demo_system_replica(
    hours: u64,
    seed: u64,
    shard: Option<(u32, u32)>,
    root: &std::path::Path,
    writer: bool,
) -> (ConcealerSystem, UserHandle, Vec<Record>) {
    use concealer_core::DiskEpochStore;
    use std::sync::Arc;

    let (shard_index, shard_total) = shard.unwrap_or((0, 1));
    assert!(
        shard_index < shard_total,
        "shard index {shard_index} out of range for total {shard_total}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let generator = WifiGenerator::new(demo_wifi_config());
    let records = generator.generate_epoch(0, hours * 3600, &mut rng);
    let backend: Arc<dyn concealer_core::StorageBackend> = if writer {
        Arc::new(DiskEpochStore::open(root).expect("open writer store"))
    } else {
        Arc::new(DiskEpochStore::open_replica(root).expect("open replica store"))
    };
    let mut system = SystemBuilder::new(demo_config(hours))
        .with_backend(backend)
        .build(&mut rng)
        .expect("replica-set demo store must assemble");
    let user = system.register_user(7, DEMO_DEVICES.collect(), true);
    if writer && concealer_core::shard_of_epoch(0, shard_total as usize) == shard_index as usize {
        system
            .ingest_epoch(0, &records, &mut rng)
            .expect("demo ingest");
    }
    (system, user, records)
}

/// The query-workload generator matching [`demo_system`]'s deployment
/// ([`DEMO_ACCESS_POINTS`] locations, [`DEMO_DEVICES`] device ids,
/// `hours` of data) — what every harness generating queries against a
/// demo fixture uses, including the serving-layer load generator and
/// loopback tests (which must agree with the server about the
/// deployment).
#[must_use]
pub fn demo_workload(hours: u64) -> QueryWorkload {
    QueryWorkload {
        locations: DEMO_ACCESS_POINTS,
        devices: DEMO_DEVICES.collect(),
        time_extent: (0, hours * 3600),
    }
}

/// One epoch of demo WiFi records for the epoch starting at `epoch_start`,
/// generated with [`demo_system`]'s generator parameters
/// ([`demo_wifi_config`]). Deterministic in `(hours, seed, epoch_start)`,
/// so a wire client and a local oracle can ingest identical follow-up
/// epochs independently.
#[must_use]
pub fn demo_epoch_records(hours: u64, seed: u64, epoch_start: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed ^ epoch_start.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    WifiGenerator::new(demo_wifi_config()).generate_epoch(epoch_start, hours * 3600, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_workload_matches_demo_system_extent() {
        let w = demo_workload(2);
        assert_eq!(w.time_extent, (0, 7200));
        assert_eq!(w.locations, 30);
        assert_eq!(w.devices.len(), 300);
    }

    #[test]
    fn demo_epoch_records_are_deterministic_and_in_window() {
        let a = demo_epoch_records(1, 9, 3600);
        let b = demo_epoch_records(1, 9, 3600);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|r| r.time >= 3600 && r.time < 7200));
    }

    #[test]
    fn demo_system_builds() {
        let (system, _user, records) = demo_system(2, 1);
        assert!(!records.is_empty());
        assert_eq!(system.engine().registered_epochs(), vec![0]);
    }

    #[test]
    fn demo_replica_follows_writer_and_shares_credentials() {
        let root =
            std::env::temp_dir().join(format!("concealer-demo-replica-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);

        // Replica first: the root is empty, so it assembles with nothing
        // registered and absorbs epoch 0 on a refresh tick after the
        // writer commits it.
        let (replica, replica_user, _) = demo_system_replica(1, 5, None, &root, false);
        assert!(replica.store_read_only());
        assert!(replica.engine().registered_epochs().is_empty());

        let (writer, writer_user, _) = demo_system_replica(1, 5, None, &root, true);
        assert!(!writer.store_read_only());
        assert_eq!(writer.engine().registered_epochs(), vec![0]);
        assert_eq!(replica.refresh_epochs().unwrap(), vec![0]);
        assert_eq!(replica.engine().registered_epochs(), vec![0]);

        // Identical RNG draw order: both members hand out the same
        // credential, so a router can authenticate against either.
        assert_eq!(writer_user.credential, replica_user.credential);
        drop(writer);
        drop(replica);
        let _ = std::fs::remove_dir_all(&root);
    }
}
