//! Shared helpers for the Concealer examples and the cross-crate
//! integration tests.
//!
//! The runnable examples live in the repository-root `examples/` directory
//! (`cargo run --example quickstart`), and the
//! integration tests in the repository-root `tests/` directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use concealer_core::{
    ConcealerSystem, FakeTupleStrategy, GridShape, MasterKey, Record, SystemBuilder, SystemConfig,
    UserHandle,
};
use concealer_workloads::{WifiConfig, WifiGenerator};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Build a deployment honoring the `CONCEALER_TEST_BACKEND` harness hook
/// (see [`concealer_core::BACKEND_ENV_VAR`]): unset or `memory` is the
/// default in-memory store; `disk` places the sealed epochs in a
/// crash-safe on-disk store under a fresh scratch directory, which is how
/// the CI backend matrix reruns the integration suites against
/// [`concealer_core::DiskEpochStore`]. Every test and example that does
/// not need a *specific* backend should construct its system through this
/// (or [`demo_system`]) so it participates in the matrix.
pub fn build_system<R: RngCore>(config: SystemConfig, rng: &mut R) -> ConcealerSystem {
    SystemBuilder::new(config)
        .backend_from_env()
        .expect("CONCEALER_TEST_BACKEND must be unset, \"memory\" or \"disk\"")
        .build(rng)
        .expect("a fresh backend has no epochs that could fail registration")
}

/// [`build_system`] with a pinned master key and engine seed, for tests
/// that compare deployments sharing key material.
pub fn build_system_with_master(
    config: SystemConfig,
    master: MasterKey,
    engine_seed: u64,
) -> ConcealerSystem {
    let mut rng = StdRng::seed_from_u64(engine_seed);
    SystemBuilder::new(config)
        .master(master)
        .engine_seed(engine_seed)
        .backend_from_env()
        .expect("CONCEALER_TEST_BACKEND must be unset, \"memory\" or \"disk\"")
        .build(&mut rng)
        .expect("a fresh backend has no epochs that could fail registration")
}

/// A small but realistic campus deployment used by several examples and
/// integration tests: one day of data, 24 hourly-ish time rows, moderate
/// skew.
pub fn demo_config(hours: u64) -> SystemConfig {
    SystemConfig {
        grid: GridShape {
            dim_buckets: vec![12],
            time_subintervals: (hours * 4).max(4),
            num_cell_ids: 64,
        },
        epoch_duration: hours * 3600,
        time_granularity: 60,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: true,
        oblivious: false,
        winsec_rows_per_interval: 4,
    }
}

/// Build a demo deployment with `hours` of synthetic WiFi data already
/// ingested. Returns the system, an all-powers user handle, and the
/// cleartext records (for ground-truth comparison).
pub fn demo_system(hours: u64, seed: u64) -> (ConcealerSystem, UserHandle, Vec<Record>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let generator = WifiGenerator::new(WifiConfig {
        access_points: 30,
        devices: 300,
        peak_rows_per_hour: 1_500,
        offpeak_rows_per_hour: 200,
        location_skew: 0.8,
    });
    let records = generator.generate_epoch(0, hours * 3600, &mut rng);
    let mut system = build_system(demo_config(hours), &mut rng);
    let devices: Vec<u64> = (1000..1300).collect();
    let user = system.register_user(7, devices, true);
    system
        .ingest_epoch(0, &records, &mut rng)
        .expect("demo ingest");
    (system, user, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_system_builds() {
        let (system, _user, records) = demo_system(2, 1);
        assert!(!records.is_empty());
        assert_eq!(system.engine().registered_epochs(), vec![0]);
    }
}
