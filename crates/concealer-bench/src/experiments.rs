//! One function per table / figure of the paper's evaluation (§9).
//!
//! Each function builds the scaled workload, runs the measurement, and
//! returns the rows it would print — the `paper_tables` binary just joins
//! them. Absolute times are machine- and scale-dependent; the quantities
//! that should match the paper are the *relationships*: who is faster, by
//! roughly what factor, and how curves trend (see EXPERIMENTS.md).

use std::time::Duration;

use concealer_baselines::{CleartextBaseline, OpaqueBaseline};
use concealer_core::{Aggregate, ExecOptions, Predicate, Query, RangeMethod, SecureIndex};
use concealer_workloads::TpchIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::setup::{
    build_tpch_system, build_wifi_system, build_wifi_system_with, tpch_query_dims, WifiScale,
};
use crate::{fmt_duration, time_once};

/// Number of query repetitions per measured configuration (the paper uses
/// 5 queries × 10 repetitions; scaled down for harness runtime).
const QUERY_REPS: usize = 5;

fn mean_query_time(
    bench: &crate::setup::ScaledWifi,
    make_query: impl Fn(&mut StdRng) -> Query,
    opts: Option<ExecOptions>,
    seed: u64,
) -> (Duration, usize) {
    let session = bench.session().with_options(opts.unwrap_or_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = Duration::ZERO;
    let mut fetched = 0usize;
    for _ in 0..QUERY_REPS {
        let q = make_query(&mut rng);
        let (answer, d) = time_once(|| session.execute(&q).unwrap());
        total += d;
        fetched = answer.rows_fetched;
    }
    (total / QUERY_REPS as u32, fetched)
}

/// Exp 1: ingestion throughput (rows per minute of Algorithm 1).
pub fn exp1_throughput() -> Vec<String> {
    let mut out = vec!["Exp 1: ingestion throughput (Algorithm 1)".to_string()];
    for scale in [WifiScale::Small, WifiScale::Large] {
        let ((), d) = time_once(|| {
            let _ = build_wifi_system(scale, false, 11);
        });
        // Re-measure just the encryption step for a cleaner rows/min figure.
        let bench = build_wifi_system(scale, false, 11);
        let rows = bench.records.len();
        let provider = bench.system.provider().clone();
        let mut rng = StdRng::seed_from_u64(12);
        let (_, enc) = time_once(|| provider.encrypt_epoch(0, &bench.records, &mut rng).unwrap());
        let per_min = rows as f64 / enc.as_secs_f64() * 60.0;
        out.push(format!(
            "  {:?}: {} rows encrypted in {} -> {:.0} rows/min (end-to-end build {})",
            scale,
            rows,
            fmt_duration(enc),
            per_min,
            fmt_duration(d)
        ));
    }
    out.push("  paper: ~37,185 rows/min on the DP machine".to_string());
    out
}

/// Exp 2 / Table 5: point-query scalability (cleartext vs Concealer vs
/// Concealer+).
pub fn exp2_point() -> Vec<String> {
    let mut out = vec!["Exp 2 / Table 5: point query scalability".to_string()];
    for scale in [WifiScale::Small, WifiScale::Large] {
        let plain = build_wifi_system(scale, false, 21);
        let obliv = build_wifi_system(scale, true, 21);
        let cleartext = {
            let mut c = CleartextBaseline::new();
            c.ingest_epoch(0, &plain.records, &mut StdRng::seed_from_u64(0))
                .expect("cleartext ingest");
            c
        };
        let mut rng = StdRng::seed_from_u64(22);
        let queries: Vec<Query> = (0..QUERY_REPS)
            .map(|_| plain.workload.q1_point(&mut rng))
            .collect();

        let clear_t = crate::time_mean(QUERY_REPS, || {
            for q in &queries {
                std::hint::black_box(cleartext.execute(q).unwrap());
            }
        }) / QUERY_REPS as u32;
        let (conc_t, fetched) = mean_query_time(&plain, |r| plain.workload.q1_point(r), None, 23);
        let (obliv_t, _) = mean_query_time(&obliv, |r| obliv.workload.q1_point(r), None, 23);

        out.push(format!(
            "  {:?} ({} rows, bin size {}): cleartext {} | Concealer {} ({} rows/bin fetched) | Concealer+ {}",
            scale,
            plain.records.len(),
            plain.bin_stats.1,
            fmt_duration(clear_t),
            fmt_duration(conc_t),
            fetched,
            fmt_duration(obliv_t)
        ));
    }
    out.push(
        "  paper: 0.03/0.05 s cleartext, 0.23/0.90 s Concealer, 0.37/1.38 s Concealer+".to_string(),
    );
    out
}

/// Exp 2 / Figures 3-4: range queries Q1-Q5 with BPB, eBPB and winSecRange
/// under Concealer and Concealer+.
pub fn exp2_range(scale: WifiScale) -> Vec<String> {
    let mut out = vec![format!("Exp 2 / Fig 3-4: range queries Q1-Q5 ({scale:?})")];
    let range = 20 * 60;
    for oblivious in [false, true] {
        let bench = build_wifi_system(scale, oblivious, 31);
        let label = if oblivious {
            "Concealer+"
        } else {
            "Concealer "
        };
        for method in [
            RangeMethod::Bpb,
            RangeMethod::Ebpb,
            RangeMethod::WinSecRange,
        ] {
            let session = bench
                .session()
                .with_options(ExecOptions::with_method(method));
            let mut rng = StdRng::seed_from_u64(32);
            let queries = bench.workload.all_range_queries(range, &mut rng);
            let mut cells = Vec::new();
            for (name, q) in &queries {
                let (answer, d) = time_once(|| session.execute(q).unwrap());
                cells.push(format!(
                    "{name}={} ({} rows)",
                    fmt_duration(d),
                    answer.rows_fetched
                ));
            }
            out.push(format!("  {label} {method:?}: {}", cells.join(", ")));
        }
    }
    out.push("  paper shape: eBPB < BPB << winSecRange; Concealer+ ~1.5x Concealer".to_string());
    out
}

/// Exp 3 / Figure 5: impact of range length on Q1 (large dataset).
pub fn exp3_range_length() -> Vec<String> {
    let mut out = vec!["Exp 3 / Fig 5: range length impact (Q1, large dataset)".to_string()];
    let bench = build_wifi_system(WifiScale::Large, false, 41);
    for minutes in [20u64, 60, 100, 200, 400] {
        let mut cells = Vec::new();
        for method in [
            RangeMethod::Bpb,
            RangeMethod::Ebpb,
            RangeMethod::WinSecRange,
        ] {
            let (d, fetched) = mean_query_time(
                &bench,
                |r| bench.workload.q1(minutes * 60, r),
                Some(ExecOptions::with_method(method)),
                42 + minutes,
            );
            cells.push(format!("{method:?}={} ({fetched} rows)", fmt_duration(d)));
        }
        out.push(format!("  range {minutes} min: {}", cells.join(", ")));
    }
    out.push("  paper shape: BPB/eBPB grow with range; winSecRange flat".to_string());
    out
}

/// Exp 4 / Table 6: verification overhead.
pub fn exp4_verification() -> Vec<String> {
    let mut out = vec!["Exp 4 / Table 6: verification overhead".to_string()];
    for scale in [WifiScale::Small, WifiScale::Large] {
        let with = build_wifi_system(scale, false, 51);
        // A second system with verification disabled isolates the overhead.
        let without = crate::setup::build_wifi_system_full(scale, false, 51, None, None, false);
        let (t_point_v, fetched) = mean_query_time(&with, |r| with.workload.q1_point(r), None, 52);
        let (t_point_nv, _) = mean_query_time(&without, |r| without.workload.q1_point(r), None, 52);
        let (t_win_v, fetched_win) = mean_query_time(
            &with,
            |r| with.workload.q1(with.span_seconds / 3, r),
            Some(ExecOptions::with_method(RangeMethod::WinSecRange)),
            53,
        );
        let (t_win_nv, _) = mean_query_time(
            &without,
            |r| without.workload.q1(without.span_seconds / 3, r),
            Some(ExecOptions::with_method(RangeMethod::WinSecRange)),
            53,
        );
        out.push(format!(
            "  {:?}: point {} rows: {} verified vs {} unverified | winSecRange {} rows: {} verified vs {} unverified",
            scale,
            fetched,
            fmt_duration(t_point_v),
            fmt_duration(t_point_nv),
            fetched_win,
            fmt_duration(t_win_v),
            fmt_duration(t_win_nv)
        ));
    }
    out.push(
        "  paper: verification adds 0.09-0.16 s (point) and 0.8-3 s (winSecRange)".to_string(),
    );
    out
}

/// Exp 5: dynamic insertion — hourly rounds, forward-private multi-round
/// queries with re-encryption.
pub fn exp5_dynamic() -> Vec<String> {
    use concealer_core::{ConcealerSystem, FakeTupleStrategy, GridShape, SystemConfig};
    use concealer_workloads::{WifiConfig, WifiGenerator};

    let mut out = vec!["Exp 5: dynamic insertion (hourly rounds)".to_string()];
    let config = SystemConfig {
        grid: GridShape {
            dim_buckets: vec![20],
            time_subintervals: 60,
            num_cell_ids: 400,
        },
        epoch_duration: 3600,
        time_granularity: 60,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: true,
        oblivious: false,
        winsec_rows_per_interval: 10,
    };
    let mut rng = StdRng::seed_from_u64(61);
    let mut system = ConcealerSystem::new(config, &mut rng);
    let user = system.register_user(1, vec![], true);
    let generator = WifiGenerator::new(WifiConfig {
        access_points: 20,
        devices: 200,
        peak_rows_per_hour: 5_000,
        offpeak_rows_per_hour: 600,
        location_skew: 0.8,
    });

    let rounds = 4u64;
    let mut insert_total = Duration::ZERO;
    let mut rows_total = 0usize;
    for i in 0..rounds {
        let start = 8 * 3600 + i * 3600; // peak hours
        let records = generator.generate_epoch(start, 3600, &mut rng);
        rows_total += records.len();
        let ((), d) = time_once(|| {
            system.ingest_epoch(start, &records, &mut rng).unwrap();
        });
        insert_total += d;
    }
    let (bins, bin_size) = system.engine().bin_stats(8 * 3600).unwrap();
    out.push(format!(
        "  {rounds} hourly rounds, {rows_total} rows total, {} per round insert; round bin plan: {bins} bins of {bin_size}",
        fmt_duration(insert_total / rounds as u32)
    ));

    // A forward-private query spanning all rounds.
    let query = Query::count()
        .at_dims([3])
        .between(8 * 3600, 8 * 3600 + rounds * 3600 - 1);
    let session = system.session(&user).with_options(ExecOptions {
        method: RangeMethod::Bpb,
        forward_private: true,
        ..ExecOptions::default()
    });
    let (answer, d) = time_once(|| session.execute(&query).unwrap());
    out.push(format!(
        "  multi-round query across {rounds} rounds: {} ({} rows fetched, incl. log|Bin| extra bins per round, all re-encrypted)",
        fmt_duration(d),
        answer.rows_fetched
    ));
    out.push("  paper: ~4 s per multi-round query at ~50K rows/round".to_string());
    out
}

/// Exp 6 / Figure 6: impact of bin size on real vs fake tuples per bin.
pub fn exp6_binsize() -> Vec<String> {
    use concealer_core::bins::{BinPlan, PackingAlgorithm};
    use concealer_core::{EpochWindow, Grid};
    use concealer_crypto::EpochId;

    let mut out = vec!["Exp 6 / Fig 6: real vs fake tuples per bin as bin size grows".to_string()];
    let bench = build_wifi_system(WifiScale::Large, false, 71);
    let (num_bins, min_bin) = bench.bin_stats;
    out.push(format!(
        "  ingested plan: {num_bins} bins at minimum bin size {min_bin}"
    ));

    // Recompute the per-cell-id tuple histogram exactly as Algorithm 1
    // distributes it (the data provider legitimately knows this).
    let provider = bench.system.provider();
    let config = provider.config().clone();
    let grid = Grid::new(
        config.grid.clone(),
        EpochWindow {
            start: 0,
            duration: config.epoch_duration,
        },
        provider.master().grid_prf(EpochId(0)),
    );
    let assignment = grid.cell_id_assignment();
    let mut c_tuple = vec![0u32; config.grid.num_cell_ids as usize];
    for r in &bench.records {
        let coord = grid.locate(&r.dims, r.time).expect("record in epoch");
        c_tuple[assignment[coord.flat as usize] as usize] += 1;
    }

    // Sweep bin sizes upward from the minimum, mirroring Fig 6's x-axis.
    for factor in [100u64, 105, 110, 115, 120, 125, 130] {
        let size = min_bin * factor / 100;
        let plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, Some(size));
        let bins = plan.num_bins().max(1) as u64;
        out.push(format!(
            "  bin size {size}: avg real/bin {}, avg fake/bin {} ({} bins)",
            plan.total_real_tuples() / bins,
            plan.total_fake_tuples() / bins,
            plan.num_bins()
        ));
    }
    out.push(
        "  paper shape: bins stay mostly real; growing the bin size does not inflate fakes per bin"
            .to_string(),
    );
    out
}

/// Exp 7 / Figure 7: impact of the number of cell-ids on rows fetched per
/// point query.
pub fn exp7_cellids() -> Vec<String> {
    let mut out =
        vec!["Exp 7 / Fig 7: tuples fetched per point query vs number of cell-ids".to_string()];
    for cell_ids in [60u32, 120, 240, 450, 900] {
        let bench = build_wifi_system_with(WifiScale::Large, false, 81, Some(cell_ids), None);
        let (_, fetched) = mean_query_time(&bench, |r| bench.workload.q1_point(r), None, 82);
        out.push(format!(
            "  {cell_ids} cell-ids: {fetched} rows fetched (bin size {})",
            bench.bin_stats.1
        ));
    }
    out.push("  paper shape: fetched rows fall as cell-ids grow (Fig 7)".to_string());
    out
}

/// Exp 8 / Figure 8: TPC-H 2-D and 4-D aggregations.
pub fn exp8_tpch(rows: u64) -> Vec<String> {
    let mut out = vec![format!(
        "Exp 8 / Fig 8: TPC-H aggregations ({rows} rows per index)"
    )];
    for index in [TpchIndex::TwoD, TpchIndex::FourD] {
        let bench = build_tpch_system(index, rows, false, 91);
        let session = bench.session();
        let mut cells = Vec::new();
        for agg in ["count", "sum", "min", "max"] {
            let mut rng = StdRng::seed_from_u64(92);
            let mut total = Duration::ZERO;
            for i in 0..QUERY_REPS {
                let dims = tpch_query_dims(&bench, i * 37 + rng.gen_range(0..13));
                let q = bench.workload_query(agg, dims);
                let (_, d) = time_once(|| session.execute(&q).unwrap());
                total += d;
            }
            cells.push(format!("{agg}={}", fmt_duration(total / QUERY_REPS as u32)));
        }
        out.push(format!("  {index:?}: {}", cells.join(", ")));
    }
    out.push("  paper shape: 1-2 s per query; count ~36-40% faster than sum/min/max".to_string());
    out
}

/// Exp 9: Opaque vs Concealer on point queries.
pub fn exp9_opaque_point() -> Vec<String> {
    let mut out = vec!["Exp 9: Opaque vs Concealer, point queries".to_string()];
    for scale in [WifiScale::Small, WifiScale::Large] {
        let bench = build_wifi_system(scale, false, 101);
        let mut rng = StdRng::seed_from_u64(102);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        opaque.ingest_epoch(0, &bench.records, &mut rng).unwrap();

        let q = bench.workload.q1_point(&mut rng);
        let (_, opaque_t) = time_once(|| opaque.execute(&q).unwrap());
        let (conc_t, _) = mean_query_time(&bench, |r| bench.workload.q1_point(r), None, 103);
        let speedup = opaque_t.as_secs_f64() / conc_t.as_secs_f64().max(1e-9);
        out.push(format!(
            "  {:?}: Opaque {} (full scan of {} rows) vs Concealer {} -> {:.0}x",
            scale,
            fmt_duration(opaque_t),
            bench.records.len(),
            fmt_duration(conc_t),
            speedup
        ));
    }
    out.push("  paper: Opaque >10 min vs Concealer 0.23-0.9 s".to_string());
    out
}

/// Exp 10 / Table 7: Opaque vs Concealer (eBPB and winSecRange) on range
/// queries Q1-Q5.
pub fn exp10_opaque_range() -> Vec<String> {
    let mut out =
        vec!["Exp 10 / Table 7: Opaque vs Concealer, range queries Q1-Q5 (large)".to_string()];
    let bench = build_wifi_system(WifiScale::Large, false, 111);
    let mut rng = StdRng::seed_from_u64(112);
    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque.ingest_epoch(0, &bench.records, &mut rng).unwrap();

    let ebpb_session = bench
        .session()
        .with_options(ExecOptions::with_method(RangeMethod::Ebpb));
    let win_session = bench
        .session()
        .with_options(ExecOptions::with_method(RangeMethod::WinSecRange));
    let queries = bench.workload.all_range_queries(20 * 60, &mut rng);
    for (name, q) in &queries {
        let (_, opaque_t) = time_once(|| opaque.execute(q).unwrap());
        let (_, ebpb_t) = time_once(|| ebpb_session.execute(q).unwrap());
        let (_, win_t) = time_once(|| win_session.execute(q).unwrap());
        out.push(format!(
            "  {name}: Opaque {} | eBPB {} | winSecRange {}",
            fmt_duration(opaque_t),
            fmt_duration(ebpb_t),
            fmt_duration(win_t)
        ));
    }
    out.push("  paper: Opaque >10 min; eBPB <= 4 s; winSecRange <= 72 s".to_string());
    out
}

impl crate::setup::TpchBench {
    /// Build one of the Exp 8 aggregation queries over this TPC-H system.
    #[must_use]
    pub fn workload_query(&self, aggregate: &str, dims: Vec<u64>) -> Query {
        let aggregate = match aggregate {
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum { attr: 1 },
            "min" => Aggregate::Min { attr: 1 },
            "max" => Aggregate::Max { attr: 1 },
            other => panic!("unknown aggregate {other}"),
        };
        Query {
            aggregate,
            predicate: Predicate::Range {
                dims: Some(dims),
                observation: None,
                time_start: 0,
                time_end: self.epoch_duration - 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The experiment functions are exercised end-to-end (at tiny scale) by
    // the integration tests and the paper_tables binary; here we only check
    // the cheap pure helpers.

    #[test]
    fn tpch_workload_query_builder() {
        let bench = build_tpch_system(TpchIndex::TwoD, 800, false, 5);
        let q = bench.workload_query("sum", vec![1, 1]);
        assert_eq!(q.aggregate, Aggregate::Sum { attr: 1 });
        assert_eq!(q.predicate.dims(), Some(&[1u64, 1][..]));
    }

    #[test]
    #[should_panic(expected = "unknown aggregate")]
    fn tpch_workload_query_rejects_unknown() {
        let bench = build_tpch_system(TpchIndex::TwoD, 800, false, 5);
        let _ = bench.workload_query("median", vec![1, 1]);
    }
}
