//! Benchmark harness for the Concealer reproduction.
//!
//! Every table and figure of the paper's evaluation (§9) has a
//! corresponding experiment function in [`experiments`]; the
//! `paper_tables` binary runs them and prints rows in the same shape the
//! paper reports, and the Criterion benches under `benches/` measure the
//! same operations with statistical rigor.
//!
//! Scale: the paper runs on 26M ("small") and 136M ("large") rows. This
//! harness defaults to a ~1000× scale-down so a full run finishes in
//! minutes on a laptop; set the `CONCEALER_SCALE` environment variable to a
//! multiplier (e.g. `CONCEALER_SCALE=10`) to grow the datasets. The
//! reproduced quantities are ratios and trends, not absolute times — see
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod setup;

pub use setup::{
    build_tpch_system, build_wifi_system, scale_multiplier, server_request_mix, ScaledWifi,
    ServerRequest, TpchBench, WifiScale,
};

/// Format a duration in the units the paper uses (seconds with two
/// decimals, or minutes when large).
#[must_use]
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 120.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 0.1 {
        format!("{secs:.2} s")
    } else {
        format!("{:.2} ms", secs * 1000.0)
    }
}

/// Time a closure once and return its result and wall-clock duration.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Time a closure over `iters` runs and return the mean duration.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> std::time::Duration {
    let start = std::time::Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    start.elapsed() / iters.max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_millis(500)), "0.50 s");
        assert!(fmt_duration(Duration::from_secs(300)).contains("min"));
    }

    #[test]
    fn timing_helpers_run() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let mean = time_mean(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(mean.as_nanos() < 1_000_000_000);
    }
}
