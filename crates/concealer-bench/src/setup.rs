//! Shared dataset / system setup for benchmarks and the `paper_tables`
//! binary.

use concealer_core::{
    ConcealerSystem, ExecOptions, FakeTupleStrategy, GridShape, Query, RangeMethod, Record,
    Session, SystemConfig, UserHandle,
};
use concealer_workloads::{
    QueryWorkload, TpchConfig, TpchGenerator, TpchIndex, WifiConfig, WifiGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale multiplier read from `CONCEALER_SCALE` (default 1).
#[must_use]
pub fn scale_multiplier() -> u64 {
    std::env::var("CONCEALER_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

/// A scaled stand-in for the paper's WiFi datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WifiScale {
    /// Stand-in for the 26M-row / 44-day dataset.
    Small,
    /// Stand-in for the 136M-row / 202-day dataset.
    Large,
    /// Extra-small dataset for unit tests of the harness itself.
    Tiny,
}

impl WifiScale {
    /// Hours of synthetic data generated at scale multiplier 1.
    #[must_use]
    pub fn base_hours(self) -> u64 {
        match self {
            WifiScale::Tiny => 2,
            WifiScale::Small => 9,
            WifiScale::Large => 46,
        }
    }

    /// Grid shape, scaled down from the paper's 490 × 16,000 grid with
    /// 87,000 cell-ids in rough proportion to the dataset scale-down.
    #[must_use]
    pub fn grid(self, hours: u64) -> GridShape {
        match self {
            WifiScale::Tiny => GridShape {
                dim_buckets: vec![10],
                time_subintervals: (hours * 4).max(4),
                num_cell_ids: 30,
            },
            WifiScale::Small => GridShape {
                dim_buckets: vec![25],
                time_subintervals: (hours * 3).max(8),
                num_cell_ids: 200,
            },
            WifiScale::Large => GridShape {
                dim_buckets: vec![49],
                time_subintervals: (hours * 3).max(8),
                num_cell_ids: 450,
            },
        }
    }

    /// Access points in the synthetic deployment.
    #[must_use]
    pub fn access_points(self) -> u64 {
        match self {
            WifiScale::Tiny => 20,
            WifiScale::Small => 100,
            WifiScale::Large => 200,
        }
    }
}

/// A fully built WiFi benchmark system.
pub struct ScaledWifi {
    /// The Concealer deployment holding the data.
    pub system: ConcealerSystem,
    /// A registered user allowed to run every query class.
    pub user: UserHandle,
    /// The cleartext records (ground truth / baseline input).
    pub records: Vec<Record>,
    /// Query workload generator over the ingested extent.
    pub workload: QueryWorkload,
    /// Total span of the data in seconds (single epoch).
    pub span_seconds: u64,
    /// Bin statistics: `(num_bins, bin_size)`.
    pub bin_stats: (usize, u64),
}

impl ScaledWifi {
    /// Open a query session for the benchmark user with default options.
    #[must_use]
    pub fn session(&self) -> Session<'_> {
        self.system.session(&self.user)
    }
}

/// Build a Concealer system loaded with synthetic WiFi data at the given
/// scale. `oblivious` selects Concealer (+) — the paper's side-channel
/// hardened variant.
#[must_use]
pub fn build_wifi_system(scale: WifiScale, oblivious: bool, seed: u64) -> ScaledWifi {
    build_wifi_system_with(scale, oblivious, seed, None, None)
}

/// Like [`build_wifi_system`] but allowing overrides of the cell-id count
/// (Exp 7), the winSecRange interval length, and whether verification tags
/// are produced (Exp 4 compares with/without).
#[must_use]
pub fn build_wifi_system_with(
    scale: WifiScale,
    oblivious: bool,
    seed: u64,
    num_cell_ids_override: Option<u32>,
    winsec_rows_override: Option<u64>,
) -> ScaledWifi {
    build_wifi_system_full(
        scale,
        oblivious,
        seed,
        num_cell_ids_override,
        winsec_rows_override,
        true,
    )
}

/// The fully parameterized WiFi system builder.
#[must_use]
pub fn build_wifi_system_full(
    scale: WifiScale,
    oblivious: bool,
    seed: u64,
    num_cell_ids_override: Option<u32>,
    winsec_rows_override: Option<u64>,
    verify_integrity: bool,
) -> ScaledWifi {
    let hours = scale.base_hours() * scale_multiplier();
    let span_seconds = hours * 3600;
    let mut grid = scale.grid(hours);
    if let Some(u) = num_cell_ids_override {
        grid.num_cell_ids = u;
    }

    let config = SystemConfig {
        grid,
        epoch_duration: span_seconds,
        time_granularity: 60,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity,
        oblivious,
        // The paper uses 8-hour intervals on the small dataset and ~1-day
        // intervals on the large one; 1/6 of the span approximates that.
        winsec_rows_per_interval: winsec_rows_override
            .unwrap_or_else(|| (scale.grid(hours).time_subintervals / 6).max(1)),
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let generator = WifiGenerator::new(WifiConfig {
        access_points: scale.access_points(),
        devices: 500,
        peak_rows_per_hour: 5_000,
        offpeak_rows_per_hour: 600,
        location_skew: 0.8,
    });
    let records = generator.generate_epoch(0, span_seconds, &mut rng);

    // Honors the `CONCEALER_TEST_BACKEND` harness hook, so the whole bench
    // harness is backend-agnostic like the integration suites.
    let mut system = concealer_examples::build_system(config, &mut rng);
    let devices: Vec<u64> = (1000..1500).collect();
    let user = system.register_user(1, devices.clone(), true);
    system
        .ingest_epoch(0, &records, &mut rng)
        .expect("ingest benchmark epoch");
    let bin_stats = system.engine().bin_stats(0).expect("bin stats");

    let workload = QueryWorkload {
        locations: scale.access_points(),
        devices,
        time_extent: (0, span_seconds),
    };
    ScaledWifi {
        system,
        user,
        records,
        workload,
        span_seconds,
        bin_stats,
    }
}

/// One request of the serving-layer mixed workload: what a wire client
/// submits in one protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerRequest {
    /// A single query with the options to carry in the request.
    Query(Query, ExecOptions),
    /// A batch with the options to carry (BPB for cross-query dedup; a
    /// nonzero parallelism exercises the server's thread-pool path).
    Batch(Vec<Query>, ExecOptions),
}

impl ServerRequest {
    /// Number of queries this request answers.
    #[must_use]
    pub fn query_count(&self) -> usize {
        match self {
            ServerRequest::Query(..) => 1,
            ServerRequest::Batch(queries, _) => queries.len(),
        }
    }
}

/// The deterministic mixed point/range/batch request stream the serving
/// layer is soaked with — shared by the `concealer-load` generator and the
/// root loopback tests, and regenerable by an oracle process from the same
/// `(workload, seed)` pair. Every sixth request is a `batch_len`-query BPB
/// batch (executed with parallelism 2 on the server); the rest alternate
/// point lookups, Q1/Q2 aggregate ranges and a Q5 individualized range.
#[must_use]
pub fn server_request_mix(
    workload: &QueryWorkload,
    seed: u64,
    requests: usize,
    batch_len: usize,
) -> Vec<ServerRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let single = ExecOptions::default();
    let batch = ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(2);
    (0..requests)
        .map(|i| match i % 6 {
            0 => ServerRequest::Query(workload.q1_point(&mut rng), single),
            1 | 2 => ServerRequest::Query(workload.q1(30 * 60, &mut rng), single),
            3 => ServerRequest::Query(workload.q2(45 * 60, 5, &mut rng), single),
            4 => ServerRequest::Query(workload.q5(25 * 60, &mut rng), single),
            _ => {
                let queries: Vec<Query> = (0..batch_len.max(1))
                    .map(|j| match j % 3 {
                        0 => workload.q1_point(&mut rng),
                        1 => workload.q1(20 * 60, &mut rng),
                        _ => workload.q2(40 * 60, 4, &mut rng),
                    })
                    .collect();
                ServerRequest::Batch(queries, batch)
            }
        })
        .collect()
}

/// A fully built TPC-H benchmark system (Exp 8).
pub struct TpchBench {
    /// The Concealer deployment.
    pub system: ConcealerSystem,
    /// Registered user.
    pub user: UserHandle,
    /// Cleartext records.
    pub records: Vec<Record>,
    /// The epoch duration (synthetic time domain size).
    pub epoch_duration: u64,
    /// The index layout generated.
    pub index: TpchIndex,
}

impl TpchBench {
    /// Open a query session for the benchmark user with default options.
    #[must_use]
    pub fn session(&self) -> Session<'_> {
        self.system.session(&self.user)
    }
}

/// Build a Concealer system loaded with synthetic TPC-H LineItem data for
/// the 2-D or 4-D composite index.
#[must_use]
pub fn build_tpch_system(index: TpchIndex, rows: u64, oblivious: bool, seed: u64) -> TpchBench {
    let rows = rows * scale_multiplier();
    let generator = TpchGenerator::new(TpchConfig {
        rows,
        orders: (rows / 4).max(1),
        parts: 2_000.min(rows.max(10)),
        suppliers: 100,
        index,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let records = generator.generate_records(&mut rng);
    let epoch_duration = generator.epoch_duration();

    // Grid shapes mirror the paper's 112,000×7 (2-D) and 1500×100×10×7
    // (4-D) grids, scaled to the row count.
    let grid = match index {
        TpchIndex::TwoD => GridShape {
            dim_buckets: vec![(rows / 40).max(8), 7],
            time_subintervals: 1,
            num_cell_ids: ((rows / 100).max(8) as u32).min(100_000),
        },
        TpchIndex::FourD => GridShape {
            dim_buckets: vec![(rows / 300).max(4), 20, 10, 7],
            time_subintervals: 1,
            num_cell_ids: ((rows / 100).max(8) as u32).min(100_000),
        },
    };
    let config = SystemConfig {
        grid,
        epoch_duration,
        time_granularity: 1,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: false,
        oblivious,
        winsec_rows_per_interval: 1,
    };
    let mut system = concealer_examples::build_system(config, &mut rng);
    let user = system.register_user(1, vec![], true);
    system
        .ingest_epoch(0, &records, &mut rng)
        .expect("ingest TPC-H epoch");
    TpchBench {
        system,
        user,
        records,
        epoch_duration,
        index,
    }
}

/// Pick a TPC-H query target (an existing orderkey/linenumber combination)
/// from the generated records.
#[must_use]
pub fn tpch_query_dims(bench: &TpchBench, i: usize) -> Vec<u64> {
    let r = &bench.records[i % bench.records.len()];
    r.dims.clone()
}

/// Ground-truth count for a query, evaluated over the cleartext records.
#[must_use]
pub fn cleartext_count(records: &[Record], query: &Query) -> u64 {
    records
        .iter()
        .filter(|r| concealer_baselines::cleartext::record_matches(r, &query.predicate))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_wifi_system_builds_and_answers() {
        let bench = build_wifi_system(WifiScale::Tiny, false, 1);
        assert!(!bench.records.is_empty());
        assert!(bench.bin_stats.0 > 0);
        let mut rng = StdRng::seed_from_u64(2);
        let q = bench.workload.q1(600, &mut rng);
        let answer = bench.session().execute(&q).unwrap();
        let expected = cleartext_count(&bench.records, &q);
        assert_eq!(
            answer.value,
            concealer_core::query::AnswerValue::Count(expected)
        );
    }

    #[test]
    fn tiny_tpch_system_builds_and_answers() {
        let bench = build_tpch_system(TpchIndex::TwoD, 1_500, false, 3);
        let dims = tpch_query_dims(&bench, 7);
        let q = Query::count()
            .at_dims(dims)
            .between(0, bench.epoch_duration - 1);
        let answer = bench.session().execute(&q).unwrap();
        let expected = cleartext_count(&bench.records, &q);
        assert_eq!(
            answer.value,
            concealer_core::query::AnswerValue::Count(expected)
        );
        assert!(expected >= 1);
    }

    #[test]
    fn server_request_mix_is_deterministic_and_mixed() {
        let workload = QueryWorkload {
            locations: 10,
            devices: vec![1001, 1002],
            time_extent: (0, 7200),
        };
        let a = server_request_mix(&workload, 5, 12, 4);
        let b = server_request_mix(&workload, 5, 12, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        let batches = a
            .iter()
            .filter(|r| matches!(r, ServerRequest::Batch(..)))
            .count();
        assert_eq!(batches, 2, "every sixth request is a batch");
        let queries: usize = a.iter().map(ServerRequest::query_count).sum();
        assert_eq!(queries, 10 + 2 * 4);
        // A different seed produces a different stream.
        assert_ne!(server_request_mix(&workload, 6, 12, 4), a);
    }

    #[test]
    fn scale_multiplier_defaults_to_one() {
        // The env var is not set in the test environment.
        assert_eq!(scale_multiplier(), 1);
    }
}
