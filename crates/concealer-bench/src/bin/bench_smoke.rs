//! CI perf-smoke harness: a short, deterministic benchmark run that emits a
//! machine-readable `BENCH_pr.json` summary so every PR appends a point to
//! the perf trajectory.
//!
//! Measures, on the Tiny WiFi workload:
//!
//! * queries/sec for a 64-query batch executed sequentially and on the
//!   scoped thread pool (2, 4 and `available_parallelism` workers), with
//!   answers cross-checked against the sequential run (a divergence
//!   panics, failing the CI job);
//! * a fetch/decrypt/verify/aggregate wall-time breakdown of the
//!   sequential timed section (the engine's phase counters);
//! * the batch dedup ratio: rows fetched by per-query execution vs. the
//!   deduplicated batch.
//!
//! Noise control: every timed mode runs one untimed warm-up followed by at
//! least five timed iterations; the summary reports the **median** qps plus
//! the min/max spread, and records the host's actual hardware thread count
//! so the regression gate can tell real parallel speedups from
//! single-core-host scheduling noise. The dedup cross-check runs first and
//! doubles as the warm-up of the enclave's decrypted-bin cache, so the
//! timed runs measure the steady (warm) state for every mode.
//!
//! Invocation: `bench_smoke [--quick] [--out PATH]`. `BENCH_SMOKE_ITERS`
//! raises the iteration count (values below five are clamped up — medians
//! of fewer samples regressed the trajectory with pure scheduler noise);
//! `--quick` is accepted for compatibility and keeps the five-iteration
//! minimum. Numbers from this harness are trend indicators, not
//! statistically rigorous measurements — see the criterion benches for
//! those.

use std::fmt::Write as _;
use std::time::Duration;

use concealer_bench::setup::{build_wifi_system, WifiScale};
use concealer_bench::time_once;
use concealer_core::{ExecOptions, Query, QueryAnswer, RangeMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH_LEN: usize = 64;
/// Fewer timed iterations than this and the median is scheduler noise.
const MIN_ITERS: usize = 5;

fn wifi_mix(bench: &concealer_bench::ScaledWifi, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..BATCH_LEN)
        .map(|i| match i % 4 {
            0 => bench.workload.q1_point(&mut rng),
            1 | 2 => bench.workload.q1(30 * 60, &mut rng),
            _ => bench.workload.q2(45 * 60, 5, &mut rng),
        })
        .collect()
}

/// The timing samples of one mode: one untimed warm-up, then `iters`
/// timed repeats.
struct Timing {
    median: Duration,
    min: Duration,
    max: Duration,
}

impl Timing {
    fn from_samples(mut samples: Vec<Duration>) -> Timing {
        samples.sort_unstable();
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let mid = samples.len() / 2;
        let median = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2
        };
        Timing { median, min, max }
    }

    fn qps(&self) -> f64 {
        BATCH_LEN as f64 / self.median.as_secs_f64().max(1e-9)
    }
}

/// Run the batch at the given parallelism: one untimed warm-up, then
/// `iters` timed iterations. Returns the timing spread and the answers of
/// the last run.
fn time_batch(
    bench: &concealer_bench::ScaledWifi,
    queries: &[Query],
    parallelism: usize,
    iters: usize,
) -> (Timing, Vec<QueryAnswer>) {
    let session = bench
        .session()
        .with_options(ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(parallelism));
    session
        .execute_batch(queries)
        .into_iter()
        .collect::<Result<Vec<QueryAnswer>, _>>()
        .expect("bench warm-up failed");
    let mut samples = Vec::with_capacity(iters);
    let mut answers = Vec::new();
    for _ in 0..iters {
        let (result, elapsed) = time_once(|| session.execute_batch(queries));
        answers = result
            .into_iter()
            .collect::<Result<Vec<QueryAnswer>, _>>()
            .expect("bench query failed");
        samples.push(elapsed);
    }
    (Timing::from_samples(samples), answers)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _quick = args.iter().any(|a| a == "--quick"); // compatibility no-op
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_pr.json", String::as_str);
    let iters: usize = std::env::var("BENCH_SMOKE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(MIN_ITERS)
        .max(MIN_ITERS);

    let hw_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "bench_smoke: {BATCH_LEN}-query WiFi mix, {iters} timed iteration(s) + warm-up, \
         {hw_threads} hardware thread(s)"
    );

    let bench = build_wifi_system(WifiScale::Tiny, false, 21);
    let backend = bench.system.store().backend_kind();
    eprintln!("bench_smoke: storage backend = {backend}");
    let queries = wifi_mix(&bench, 22);

    // Dedup ratio: per-query execution vs. the deduplicated batch. Runs
    // before any timing, so it also warms the decrypted-bin cache.
    let observer = bench.system.observer();
    let session = bench
        .session()
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));
    observer.reset();
    for q in &queries {
        session.execute(q).expect("per-query execution failed");
    }
    let rows_per_query = observer.summary().rows_fetched;
    observer.reset();

    // Sequential timing, with the engine's phase counters scoped to the
    // timed iterations (the warm-up inside time_batch runs before the
    // reset-free timed loop, so reset once here and snapshot after —
    // the warm-up's share is negligible against `iters` timed runs and
    // the buckets are ratios, not absolutes).
    bench.system.reset_phases();
    let (sequential, sequential_answers) = time_batch(&bench, &queries, 1, iters);
    let phases = bench.system.phase_breakdown();
    let rows_batched = observer.summary().rows_fetched / (iters + 1);
    let dedup_ratio = rows_per_query as f64 / rows_batched.max(1) as f64;

    // Parallel runs, each cross-checked against the sequential answers.
    let mut thread_counts = vec![2usize, 4];
    if !thread_counts.contains(&hw_threads) && hw_threads > 1 {
        thread_counts.push(hw_threads);
    }
    let mut parallel_rows = String::new();
    let mut report_lines = Vec::new();
    for (i, &threads) in thread_counts.iter().enumerate() {
        let (timing, answers) = time_batch(&bench, &queries, threads, iters);
        assert_eq!(
            answers, sequential_answers,
            "parallel answers diverged at {threads} threads"
        );
        let speedup = sequential.median.as_secs_f64() / timing.median.as_secs_f64().max(1e-9);
        report_lines.push(format!(
            "parallel x{threads}: {:.0} q/s median (speedup {speedup:.2}, spread {:.2}-{:.2} ms)",
            timing.qps(),
            ms(timing.min),
            ms(timing.max),
        ));
        if i > 0 {
            parallel_rows.push(',');
        }
        write!(
            parallel_rows,
            "\n    {{\"threads\": {threads}, \"qps\": {:.2}, \"elapsed_ms\": {:.3}, \
             \"min_ms\": {:.3}, \"max_ms\": {:.3}, \"speedup\": {speedup:.3}}}",
            timing.qps(),
            ms(timing.median),
            ms(timing.min),
            ms(timing.max),
        )
        .expect("writing to a String cannot fail");
    }

    let cache = bench.system.bin_cache_stats();
    let json = format!(
        "{{\n  \"schema\": \"concealer-bench-smoke/v2\",\n  \"workload\": \"wifi-tiny-{BATCH_LEN}-query-mix\",\n  \"backend\": \"{backend}\",\n  \"queries\": {BATCH_LEN},\n  \"iterations\": {iters},\n  \"threads_available\": {hw_threads},\n  \"sequential\": {{\"qps\": {:.2}, \"elapsed_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}}},\n  \"parallel\": [{parallel_rows}\n  ],\n  \"phases\": {{\"fetch_ms\": {:.3}, \"decrypt_ms\": {:.3}, \"verify_ms\": {:.3}, \"aggregate_ms\": {:.3}}},\n  \"bin_cache\": {{\"capacity\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n  \"batch_dedup\": {{\"rows_per_query\": {rows_per_query}, \"rows_batched\": {rows_batched}, \"dedup_ratio\": {dedup_ratio:.4}}}\n}}\n",
        sequential.qps(),
        ms(sequential.median),
        ms(sequential.min),
        ms(sequential.max),
        phases.fetch_ns as f64 / 1e6,
        phases.decrypt_ns as f64 / 1e6,
        phases.verify_ns as f64 / 1e6,
        phases.aggregate_ns as f64 / 1e6,
        cache.capacity,
        cache.hits,
        cache.misses,
        cache.evictions,
    );
    std::fs::write(out_path, &json).expect("writing the benchmark summary failed");

    eprintln!(
        "sequential: {:.0} q/s median (spread {:.2}-{:.2} ms); dedup ratio {dedup_ratio:.2} \
         ({rows_per_query} -> {rows_batched} rows)",
        sequential.qps(),
        ms(sequential.min),
        ms(sequential.max),
    );
    eprintln!(
        "phases (sequential, {iters} iters): fetch {:.1} ms, decrypt {:.1} ms, verify {:.1} ms, \
         aggregate {:.1} ms; bin cache {} hits / {} misses",
        phases.fetch_ns as f64 / 1e6,
        phases.decrypt_ns as f64 / 1e6,
        phases.verify_ns as f64 / 1e6,
        phases.aggregate_ns as f64 / 1e6,
        cache.hits,
        cache.misses,
    );
    for line in report_lines {
        eprintln!("{line}");
    }
    eprintln!("wrote {out_path}");
}
