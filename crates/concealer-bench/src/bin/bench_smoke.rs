//! CI perf-smoke harness: a short, deterministic benchmark run that emits a
//! machine-readable `BENCH_pr.json` summary so every PR appends a point to
//! the perf trajectory.
//!
//! Measures, on the Tiny WiFi workload:
//!
//! * queries/sec for a 64-query batch executed sequentially and on the
//!   scoped thread pool (2, 4 and `available_parallelism` workers), with
//!   answers cross-checked against the sequential run (a divergence
//!   panics, failing the CI job);
//! * the batch dedup ratio: rows fetched by per-query execution vs. the
//!   deduplicated batch.
//!
//! Invocation: `bench_smoke [--quick] [--out PATH]`. `--quick` (or
//! `BENCH_SMOKE_ITERS=1`) caps the timing loop for CI; the default is 3
//! iterations. Numbers from this harness are trend indicators, not
//! statistically rigorous measurements — see the criterion benches for
//! those.

use std::fmt::Write as _;
use std::time::Duration;

use concealer_bench::setup::{build_wifi_system, WifiScale};
use concealer_bench::time_once;
use concealer_core::{ExecOptions, Query, QueryAnswer, RangeMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH_LEN: usize = 64;

fn wifi_mix(bench: &concealer_bench::ScaledWifi, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..BATCH_LEN)
        .map(|i| match i % 4 {
            0 => bench.workload.q1_point(&mut rng),
            1 | 2 => bench.workload.q1(30 * 60, &mut rng),
            _ => bench.workload.q2(45 * 60, 5, &mut rng),
        })
        .collect()
}

/// Run the batch `iters` times at the given parallelism; returns the best
/// (minimum) duration and the answers of the last run.
fn time_batch(
    bench: &concealer_bench::ScaledWifi,
    queries: &[Query],
    parallelism: usize,
    iters: usize,
) -> (Duration, Vec<QueryAnswer>) {
    let session = bench
        .session()
        .with_options(ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(parallelism));
    let mut best = Duration::MAX;
    let mut answers = Vec::new();
    for _ in 0..iters.max(1) {
        let (result, elapsed) = time_once(|| session.execute_batch(queries));
        answers = result
            .into_iter()
            .collect::<Result<Vec<QueryAnswer>, _>>()
            .expect("bench query failed");
        best = best.min(elapsed);
    }
    (best, answers)
}

fn qps(queries: usize, elapsed: Duration) -> f64 {
    queries as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_pr.json", String::as_str);
    let iters: usize = std::env::var("BENCH_SMOKE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 });

    let hw_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!("bench_smoke: {BATCH_LEN}-query WiFi mix, {iters} iteration(s), {hw_threads} hardware thread(s)");

    let bench = build_wifi_system(WifiScale::Tiny, false, 21);
    let backend = bench.system.store().backend_kind();
    eprintln!("bench_smoke: storage backend = {backend}");
    let queries = wifi_mix(&bench, 22);

    // Dedup ratio: per-query execution vs. the deduplicated batch.
    let observer = bench.system.observer();
    let session = bench
        .session()
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));
    observer.reset();
    for q in &queries {
        session.execute(q).expect("per-query execution failed");
    }
    let rows_per_query = observer.summary().rows_fetched;
    observer.reset();
    let (sequential_elapsed, sequential_answers) = time_batch(&bench, &queries, 1, iters);
    let rows_batched = observer.summary().rows_fetched / iters.max(1);
    let dedup_ratio = rows_per_query as f64 / rows_batched.max(1) as f64;

    // Parallel runs, each cross-checked against the sequential answers.
    let mut thread_counts = vec![2usize, 4];
    if !thread_counts.contains(&hw_threads) && hw_threads > 1 {
        thread_counts.push(hw_threads);
    }
    let mut parallel_rows = String::new();
    let mut report_lines = Vec::new();
    for (i, &threads) in thread_counts.iter().enumerate() {
        let (elapsed, answers) = time_batch(&bench, &queries, threads, iters);
        assert_eq!(
            answers, sequential_answers,
            "parallel answers diverged at {threads} threads"
        );
        let speedup = sequential_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        report_lines.push(format!(
            "parallel x{threads}: {:.0} q/s (speedup {speedup:.2})",
            qps(BATCH_LEN, elapsed)
        ));
        if i > 0 {
            parallel_rows.push(',');
        }
        write!(
            parallel_rows,
            "\n    {{\"threads\": {threads}, \"qps\": {:.2}, \"elapsed_ms\": {:.3}, \"speedup\": {speedup:.3}}}",
            qps(BATCH_LEN, elapsed),
            elapsed.as_secs_f64() * 1e3
        )
        .expect("writing to a String cannot fail");
    }

    let json = format!(
        "{{\n  \"schema\": \"concealer-bench-smoke/v1\",\n  \"workload\": \"wifi-tiny-{BATCH_LEN}-query-mix\",\n  \"backend\": \"{backend}\",\n  \"queries\": {BATCH_LEN},\n  \"iterations\": {iters},\n  \"threads_available\": {hw_threads},\n  \"sequential\": {{\"qps\": {:.2}, \"elapsed_ms\": {:.3}}},\n  \"parallel\": [{parallel_rows}\n  ],\n  \"batch_dedup\": {{\"rows_per_query\": {rows_per_query}, \"rows_batched\": {rows_batched}, \"dedup_ratio\": {dedup_ratio:.4}}}\n}}\n",
        qps(BATCH_LEN, sequential_elapsed),
        sequential_elapsed.as_secs_f64() * 1e3,
    );
    std::fs::write(out_path, &json).expect("writing the benchmark summary failed");

    eprintln!(
        "sequential: {:.0} q/s; dedup ratio {dedup_ratio:.2} ({rows_per_query} -> {rows_batched} rows)",
        qps(BATCH_LEN, sequential_elapsed)
    );
    for line in report_lines {
        eprintln!("{line}");
    }
    eprintln!("wrote {out_path}");
}
