//! Regenerate the tables and figures of the Concealer paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! paper_tables             # run every experiment
//! paper_tables exp2 exp9   # run a subset
//! CONCEALER_SCALE=10 paper_tables exp3   # 10x larger datasets
//! ```
//!
//! Output is plain text with one block per experiment, in the same shape as
//! the paper's Tables 5-7 and Figures 3-8 (see EXPERIMENTS.md for the
//! paper-vs-measured comparison).

use concealer_bench::experiments;
use concealer_bench::setup::WifiScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty();
    let want = |name: &str| run_all || args.iter().any(|a| a == name);

    let mut blocks: Vec<(&str, Vec<String>)> = Vec::new();

    if want("exp1") {
        blocks.push(("exp1", experiments::exp1_throughput()));
    }
    if want("exp2") {
        blocks.push(("exp2 (point)", experiments::exp2_point()));
        blocks.push((
            "exp2 (range, small)",
            experiments::exp2_range(WifiScale::Small),
        ));
        blocks.push((
            "exp2 (range, large)",
            experiments::exp2_range(WifiScale::Large),
        ));
    }
    if want("exp3") {
        blocks.push(("exp3", experiments::exp3_range_length()));
    }
    if want("exp4") {
        blocks.push(("exp4", experiments::exp4_verification()));
    }
    if want("exp5") {
        blocks.push(("exp5", experiments::exp5_dynamic()));
    }
    if want("exp6") {
        blocks.push(("exp6", experiments::exp6_binsize()));
    }
    if want("exp7") {
        blocks.push(("exp7", experiments::exp7_cellids()));
    }
    if want("exp8") {
        blocks.push(("exp8", experiments::exp8_tpch(20_000)));
    }
    if want("exp9") {
        blocks.push(("exp9", experiments::exp9_opaque_point()));
    }
    if want("exp10") {
        blocks.push(("exp10", experiments::exp10_opaque_range()));
    }

    if blocks.is_empty() {
        eprintln!("unknown experiment selection {args:?}; valid: exp1 .. exp10");
        std::process::exit(1);
    }

    println!(
        "Concealer paper reproduction — CONCEALER_SCALE={}",
        concealer_bench::scale_multiplier()
    );
    println!("================================================================");
    for (_, lines) in blocks {
        for line in lines {
            println!("{line}");
        }
        println!();
    }
}
