//! Criterion benches for Exp 8 (Fig 8): TPC-H 2-D / 4-D count, sum, min and
//! max queries.

use concealer_bench::setup::{build_tpch_system, tpch_query_dims};
use concealer_workloads::TpchIndex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn exp8_tpch(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp8_tpch");
    group.sample_size(10);
    for (label, index) in [("2d", TpchIndex::TwoD), ("4d", TpchIndex::FourD)] {
        let bench = build_tpch_system(index, 3_000, false, 13);
        for agg in ["count", "sum", "min", "max"] {
            group.bench_function(BenchmarkId::new(agg, label), |b| {
                let session = bench.session();
                let mut i = 0usize;
                b.iter(|| {
                    let dims = tpch_query_dims(&bench, i * 31 + 7);
                    i += 1;
                    let q = bench.workload_query(agg, dims);
                    std::hint::black_box(session.execute(&q).unwrap());
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, exp8_tpch);
criterion_main!(benches);
