//! Criterion benches for the WiFi-dataset experiments: Exp 1 (throughput),
//! Exp 2 (point + range queries, Table 5 / Figs 3-4), Exp 3 (range length,
//! Fig 5), Exp 4 (verification, Table 6), Exp 7 (cell-ids, Fig 7), plus
//! the batched-execution hot path (cross-query bin deduplication).

use concealer_bench::setup::{build_wifi_system, build_wifi_system_with, WifiScale};
use concealer_core::{ExecOptions, Query, RangeMethod};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exp1_throughput(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 1);
    let provider = bench.system.provider().clone();
    let records = bench.records.clone();
    let mut group = c.benchmark_group("exp1_ingest_throughput");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(records.len() as u64));
    group.bench_function("algorithm1_encrypt_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            std::hint::black_box(provider.encrypt_epoch(0, &records, &mut rng).unwrap());
        });
    });
    group.finish();
}

fn exp2_point_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp2_point_query");
    group.sample_size(10);
    for (label, oblivious) in [("concealer", false), ("concealer_plus", true)] {
        let bench = build_wifi_system(WifiScale::Tiny, oblivious, 3);
        group.bench_function(BenchmarkId::new(label, "q1_point"), |b| {
            let session = bench.session();
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                let q = bench.workload.q1_point(&mut rng);
                std::hint::black_box(session.execute(&q).unwrap());
            });
        });
    }
    group.finish();
}

fn exp2_range_queries(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 5);
    let mut group = c.benchmark_group("exp2_range_queries");
    group.sample_size(10);
    for method in [
        RangeMethod::Bpb,
        RangeMethod::Ebpb,
        RangeMethod::WinSecRange,
    ] {
        group.bench_function(BenchmarkId::new("q1_20min", format!("{method:?}")), |b| {
            let session = bench
                .session()
                .with_options(ExecOptions::with_method(method));
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                let q = bench.workload.q1(20 * 60, &mut rng);
                std::hint::black_box(session.execute(&q).unwrap());
            });
        });
    }
    group.finish();
}

fn exp3_range_length(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 7);
    let mut group = c.benchmark_group("exp3_range_length");
    group.sample_size(10);
    for minutes in [20u64, 60, 100] {
        group.bench_with_input(BenchmarkId::new("ebpb_q1", minutes), &minutes, |b, &m| {
            let session = bench.session();
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| {
                let q = bench.workload.q1(m * 60, &mut rng);
                std::hint::black_box(session.execute(&q).unwrap());
            });
        });
    }
    group.finish();
}

fn exp4_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_verification_overhead");
    group.sample_size(10);
    for (label, verify) in [("verified", true), ("unverified", false)] {
        let bench = concealer_bench::setup::build_wifi_system_full(
            WifiScale::Tiny,
            false,
            9,
            None,
            None,
            verify,
        );
        group.bench_function(BenchmarkId::new("point_query", label), |b| {
            let session = bench.session();
            let mut rng = StdRng::seed_from_u64(10);
            b.iter(|| {
                let q = bench.workload.q1_point(&mut rng);
                std::hint::black_box(session.execute(&q).unwrap());
            });
        });
    }
    group.finish();
}

fn exp7_cellids(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp7_cell_id_count");
    group.sample_size(10);
    for cell_ids in [15u32, 30, 60] {
        let bench = build_wifi_system_with(WifiScale::Tiny, false, 11, Some(cell_ids), None);
        group.bench_with_input(
            BenchmarkId::new("point_query", cell_ids),
            &cell_ids,
            |b, _| {
                let session = bench.session();
                let mut rng = StdRng::seed_from_u64(12);
                b.iter(|| {
                    let q = bench.workload.q1_point(&mut rng);
                    std::hint::black_box(session.execute(&q).unwrap());
                });
            },
        );
    }
    group.finish();
}

/// The batched hot path: a 32-query mix executed sequentially versus via
/// `Session::execute_batch`, which fetches every shared bin once.
fn batch_dedup(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 13);
    let mut rng = StdRng::seed_from_u64(14);
    let queries: Vec<Query> = (0..32)
        .map(|i| {
            if i % 4 == 0 {
                bench.workload.q1_point(&mut rng)
            } else {
                bench.workload.q1(30 * 60, &mut rng)
            }
        })
        .collect();
    let session = bench
        .session()
        .with_options(ExecOptions::with_method(RangeMethod::Bpb));

    let mut group = c.benchmark_group("batch_execution");
    group.sample_size(10);
    group.bench_function("sequential_32", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(session.execute(q).unwrap());
            }
        });
    });
    group.bench_function("batched_32", |b| {
        b.iter(|| {
            std::hint::black_box(session.execute_batch(&queries));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    exp1_throughput,
    exp2_point_queries,
    exp2_range_queries,
    exp3_range_length,
    exp4_verification,
    exp7_cellids,
    batch_dedup
);
criterion_main!(benches);
