//! Batched-query throughput: queries/sec for a 64-query WiFi mix executed
//! through `Session::execute_batch` sequentially and on the scoped thread
//! pool at 1/2/4/8 workers.
//!
//! Parallel execution is bit-identical to sequential (same answers, same
//! adversary-observable trace), so this bench measures pure wall-clock
//! scaling of the fetch+verify and filter/aggregate stages. On a single
//! hardware thread the parallel rows degenerate to sequential-plus-pool
//! overhead; on a ≥4-core runner the 4/8-worker rows should clearly beat
//! the 1-worker row.

use concealer_bench::setup::{build_wifi_system, WifiScale};
use concealer_core::{ExecOptions, Query, RangeMethod};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The 64-query WiFi mix: points, short ranges and device trajectories,
/// with overlapping windows so the batch has bins to dedupe.
fn wifi_mix(bench: &concealer_bench::ScaledWifi, seed: u64, len: usize) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| match i % 4 {
            0 => bench.workload.q1_point(&mut rng),
            1 | 2 => bench.workload.q1(30 * 60, &mut rng),
            _ => bench.workload.q2(45 * 60, 5, &mut rng),
        })
        .collect()
}

fn batch_throughput(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 11);
    let queries = wifi_mix(&bench, 12, 64);

    let mut group = c.benchmark_group("batch_throughput_64q");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let session = bench
            .session()
            .with_options(ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(threads));
        group.bench_function(BenchmarkId::new("execute_batch", threads), |b| {
            b.iter(|| {
                let answers = session.execute_batch(&queries);
                assert!(answers.iter().all(Result::is_ok));
                std::hint::black_box(answers);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
