//! Criterion benches for Exp 9 and Exp 10 / Table 7 (Opaque full-scan
//! baseline vs Concealer's eBPB and winSecRange) and Exp 5 (dynamic,
//! forward-private multi-round queries).

use concealer_baselines::OpaqueBaseline;
use concealer_bench::setup::{build_wifi_system, WifiScale};
use concealer_core::{ExecOptions, Query, RangeMethod, SecureIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exp9_exp10_opaque_vs_concealer(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 15);
    let mut rng = StdRng::seed_from_u64(16);
    let mut opaque = OpaqueBaseline::new(&mut rng);
    opaque.ingest_epoch(0, &bench.records, &mut rng).unwrap();

    let mut group = c.benchmark_group("exp9_exp10_opaque_vs_concealer");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("point", "opaque_full_scan"), |b| {
        let mut rng = StdRng::seed_from_u64(17);
        b.iter(|| {
            let q = bench.workload.q1_point(&mut rng);
            std::hint::black_box(opaque.execute(&q).unwrap());
        });
    });
    group.bench_function(BenchmarkId::new("point", "concealer_bpb"), |b| {
        let session = bench.session();
        let mut rng = StdRng::seed_from_u64(17);
        b.iter(|| {
            let q = bench.workload.q1_point(&mut rng);
            std::hint::black_box(session.execute(&q).unwrap());
        });
    });
    for (label, method) in [
        ("concealer_ebpb", RangeMethod::Ebpb),
        ("concealer_winsec", RangeMethod::WinSecRange),
    ] {
        group.bench_function(BenchmarkId::new("range_q1_20min", label), |b| {
            let session = bench
                .session()
                .with_options(ExecOptions::with_method(method));
            let mut rng = StdRng::seed_from_u64(18);
            b.iter(|| {
                let q = bench.workload.q1(20 * 60, &mut rng);
                std::hint::black_box(session.execute(&q).unwrap());
            });
        });
    }
    group.bench_function(
        BenchmarkId::new("range_q1_20min", "opaque_full_scan"),
        |b| {
            let mut rng = StdRng::seed_from_u64(18);
            b.iter(|| {
                let q = bench.workload.q1(20 * 60, &mut rng);
                std::hint::black_box(opaque.execute(&q).unwrap());
            });
        },
    );
    group.finish();
}

fn exp5_dynamic_multi_round(c: &mut Criterion) {
    use concealer_core::{ConcealerSystem, FakeTupleStrategy, GridShape, SystemConfig};
    use concealer_workloads::{WifiConfig, WifiGenerator};

    let config = SystemConfig {
        grid: GridShape {
            dim_buckets: vec![10],
            time_subintervals: 12,
            num_cell_ids: 40,
        },
        epoch_duration: 3600,
        time_granularity: 60,
        fake_strategy: FakeTupleStrategy::SimulateBins,
        verify_integrity: true,
        oblivious: false,
        winsec_rows_per_interval: 4,
    };
    let mut rng = StdRng::seed_from_u64(19);
    let mut system = ConcealerSystem::new(config, &mut rng);
    let user = system.register_user(1, vec![], true);
    let generator = WifiGenerator::new(WifiConfig::tiny());
    for round in 0..3u64 {
        let start = round * 3600;
        let records = generator.generate_epoch(start, 3600, &mut rng);
        system.ingest_epoch(start, &records, &mut rng).unwrap();
    }
    let query = Query::count().at_dims([2]).between(0, 3 * 3600 - 1);
    let session = system.session(&user).with_options(ExecOptions {
        method: RangeMethod::Bpb,
        forward_private: true,
        ..ExecOptions::default()
    });

    let mut group = c.benchmark_group("exp5_dynamic_insertion");
    group.sample_size(10);
    group.bench_function("forward_private_multi_round_query", |b| {
        b.iter(|| {
            std::hint::black_box(session.execute(&query).unwrap());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    exp9_exp10_opaque_vs_concealer,
    exp5_dynamic_multi_round
);
criterion_main!(benches);
