//! Ablation benches for the design choices ARCHITECTURE.md calls out:
//!
//! * FFD vs BFD bin packing,
//! * equal-real-fake vs simulate-bins fake-tuple strategies,
//! * super-bins on vs off,
//! * the cost of volume hiding versus a plain DET index,
//! * the oblivious (Concealer+) overhead in the enclave filter path.

use concealer_baselines::DetIndexBaseline;
use concealer_bench::setup::{build_wifi_system, WifiScale};
use concealer_core::bins::{BinPlan, PackingAlgorithm};
use concealer_core::{ExecOptions, RangeMethod, SecureIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ablation_ffd_vs_bfd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let c_tuple: Vec<u32> = (0..2_000).map(|_| rng.gen_range(0..500)).collect();
    let mut group = c.benchmark_group("ablation_bin_packing");
    group.sample_size(20);
    for (label, algo) in [
        ("ffd", PackingAlgorithm::FirstFitDecreasing),
        ("bfd", PackingAlgorithm::BestFitDecreasing),
    ] {
        group.bench_function(BenchmarkId::new("build_plan", label), |b| {
            b.iter(|| std::hint::black_box(BinPlan::build(&c_tuple, algo, None)));
        });
    }
    group.finish();
}

fn ablation_fake_strategy(c: &mut Criterion) {
    use concealer_core::{DataProvider, FakeTupleStrategy, GridShape, Record, SystemConfig};
    use concealer_crypto::MasterKey;

    let records: Vec<Record> = (0..3_000)
        .map(|i| Record::spatial(i % 20, (i * 7) % 3600, 100 + i % 9))
        .collect();
    let mut group = c.benchmark_group("ablation_fake_strategy");
    group.sample_size(10);
    for (label, strategy) in [
        ("equal_real_fake", FakeTupleStrategy::EqualRealFake),
        ("simulate_bins", FakeTupleStrategy::SimulateBins),
    ] {
        let config = SystemConfig {
            grid: GridShape {
                dim_buckets: vec![10],
                time_subintervals: 12,
                num_cell_ids: 40,
            },
            epoch_duration: 3600,
            time_granularity: 60,
            fake_strategy: strategy,
            verify_integrity: false,
            oblivious: false,
            winsec_rows_per_interval: 4,
        };
        let provider = DataProvider::new(MasterKey::from_bytes([7u8; 32]), config);
        group.bench_function(BenchmarkId::new("encrypt_epoch", label), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(22);
                std::hint::black_box(provider.encrypt_epoch(0, &records, &mut rng).unwrap());
            });
        });
    }
    group.finish();
}

fn ablation_superbins(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 23);
    let mut group = c.benchmark_group("ablation_superbins");
    group.sample_size(10);
    for (label, use_superbins) in [("off", false), ("on", true)] {
        group.bench_function(BenchmarkId::new("bpb_range_q1", label), |b| {
            let session = bench.session().with_options(ExecOptions {
                method: RangeMethod::Bpb,
                use_superbins,
                num_super_bins: 4,
                ..ExecOptions::default()
            });
            let mut rng = StdRng::seed_from_u64(24);
            b.iter(|| {
                let q = bench.workload.q1(15 * 60, &mut rng);
                std::hint::black_box(session.execute(&q).unwrap());
            });
        });
    }
    group.finish();
}

fn ablation_volume_hiding_cost(c: &mut Criterion) {
    let bench = build_wifi_system(WifiScale::Tiny, false, 25);
    let mut det = DetIndexBaseline::new(
        concealer_crypto::MasterKey::from_bytes([9u8; 32]),
        60,
        bench.span_seconds,
    );
    det.ingest_epoch(0, &bench.records, &mut StdRng::seed_from_u64(25))
        .unwrap();

    let mut group = c.benchmark_group("ablation_volume_hiding_cost");
    group.sample_size(10);
    group.bench_function("det_index_no_hiding", |b| {
        let mut rng = StdRng::seed_from_u64(26);
        b.iter(|| {
            let q = bench.workload.q1(20 * 60, &mut rng);
            std::hint::black_box(det.execute(&q).unwrap());
        });
    });
    group.bench_function("concealer_volume_hiding", |b| {
        let session = bench.session();
        let mut rng = StdRng::seed_from_u64(26);
        b.iter(|| {
            let q = bench.workload.q1(20 * 60, &mut rng);
            std::hint::black_box(session.execute(&q).unwrap());
        });
    });
    group.finish();
}

fn ablation_oblivious_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_oblivious_overhead");
    group.sample_size(10);
    for (label, oblivious) in [("plain_enclave", false), ("oblivious_enclave", true)] {
        let bench = build_wifi_system(WifiScale::Tiny, oblivious, 27);
        group.bench_function(BenchmarkId::new("point_query", label), |b| {
            let session = bench.session();
            let mut rng = StdRng::seed_from_u64(28);
            b.iter(|| {
                let q = bench.workload.q1_point(&mut rng);
                std::hint::black_box(session.execute(&q).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_ffd_vs_bfd,
    ablation_fake_strategy,
    ablation_superbins,
    ablation_volume_hiding_cost,
    ablation_oblivious_overhead
);
criterion_main!(benches);
