//! The `concealer-router` binary: probe a set of epoch-sharded
//! `concealer-server` processes, validate the shard map, and serve the
//! same wire protocol in front of them until a graceful shutdown.
//!
//! ```text
//! concealer-router --shard-addr HOST:PORT [--shard-addr HOST:PORT ...]
//!                  [--mode threaded|event] [--port N]
//!                  [--max-connections N] [--max-in-flight N]
//! ```
//!
//! Flags accept both `--flag value` and `--flag=value` (parsing shared
//! with the other binaries via `concealer-cli`).
//!
//! `--shard-addr` must be given **in shard order**: the i-th entry
//! names the server(s) started with `--shard i/N`. An entry may be a
//! comma-separated replica-set member list
//! (`writer:port,replica:port`); member roles are discovered from each
//! member's `ShardInfo` at probe time. The startup probe refuses to
//! serve on any shard-map disagreement (wrong total, wrong position,
//! diverging epoch durations, a set without exactly one writer) — exit
//! code 1 with a diagnostic naming every disagreeing member, before the
//! listener binds.
//!
//! The default mode is `event`: the router's work is mostly waiting on
//! upstream sockets, so connections should cost file descriptors, not
//! threads. `--max-in-flight` sizes the worker pool doing the fan-out.
//!
//! Prints one `READY addr=… shards=… protocol=… mode=…` line on stdout
//! once the listener is bound (the contract `ci/server-soak.sh` waits
//! for), and a `SHUTDOWN graceful …` line when a wire shutdown drained
//! cleanly. See `OPERATIONS.md` § "Routed deployment" for the full
//! recipe.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use concealer_router::{RouterConfig, RouterHandler};
use concealer_server::{Server, ServerConfig, ServerMode, PROTOCOL_VERSION};

const USAGE: &str = "concealer-router --shard-addr HOST:PORT [--shard-addr HOST:PORT ...] \
                     [--mode threaded|event] [--port N] [--max-connections N] \
                     [--max-in-flight N]";

struct Args {
    mode: ServerMode,
    port: u16,
    shards: Vec<String>,
    max_connections: usize,
    max_in_flight: usize,
}

fn parse_args() -> Args {
    let mut cli = concealer_cli::Args::new("concealer-router", USAGE);
    let mut args = Args {
        // Unlike the shard server, the router defaults to the event core
        // (fan-out is I/O-bound; see the module docs).
        mode: ServerMode::Event,
        port: 0,
        shards: Vec::new(),
        max_connections: 64,
        max_in_flight: 8,
    };
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--mode" => args.mode = cli.parse_with("--mode", ServerMode::parse),
            "--port" => args.port = cli.parse("--port"),
            "--shard-addr" => args.shards.push(cli.value("--shard-addr")),
            "--max-connections" => args.max_connections = cli.parse("--max-connections"),
            "--max-in-flight" => args.max_in_flight = cli.parse("--max-in-flight"),
            "--help" | "-h" => cli.help(),
            other => cli.unknown(other),
        }
    }
    if args.shards.is_empty() {
        cli.fail("at least one --shard-addr is required");
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    let shard_count = args.shards.len();
    eprintln!("concealer-router: probing {shard_count} shard(s)");
    let router_config = RouterConfig {
        shards: args.shards,
        ..RouterConfig::default()
    };
    let handler = match RouterHandler::probe(router_config) {
        Ok(handler) => handler,
        Err(e) => {
            eprintln!("concealer-router: startup probe failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let config = ServerConfig {
        bind: SocketAddr::from(([127, 0, 0, 1], args.port)),
        server_name: "concealer-router".to_string(),
        mode: args.mode,
        max_connections: args.max_connections,
        max_in_flight: args.max_in_flight,
        ..ServerConfig::default()
    };
    let handle = match Server::with_handler(Arc::new(handler), config).spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("concealer-router: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Same machine-readable READY contract as concealer-server: one line,
    // stdout, flushed before serving.
    println!(
        "READY addr={} shards={shard_count} protocol={PROTOCOL_VERSION} mode={}",
        handle.local_addr(),
        args.mode.name()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let report = handle.join();
    if report.graceful {
        println!(
            "SHUTDOWN graceful connections={} requests={} busy_rejected={}",
            report.connections_served, report.requests_served, report.rejected_busy
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("concealer-router: listener failed; exiting non-gracefully");
        ExitCode::FAILURE
    }
}
