//! The query router for multi-node Concealer serving.
//!
//! A deployment shards its epochs across N `concealer-server` processes
//! (each started with `--shard INDEX/TOTAL`, owning the
//! [`concealer_core::shard_of_epoch`] slice of the epoch-hash space).
//! The router sits in front: it speaks the same versioned wire protocol
//! to clients (see `PROTOCOL.md`) and answers every query by fanning
//! partial executions out to the shard servers and recombining their
//! per-epoch partials with [`concealer_core::merge_partials`] — the
//! disjoint-union merge that reproduces a single-process answer
//! bit-for-bit, batch dedup metadata included.
//!
//! # Replica sets
//!
//! Each shard position may name a whole **replica set**: a
//! comma-separated member list (`writer:port,replica:port,...`) whose
//! members share one durable store root. Roles are not configured — the
//! startup probe discovers them from each member's extended `ShardInfo`
//! descriptor (`role`, protocol v3) and validates that every set has
//! exactly one writer. At serve time:
//!
//! - **reads** (partial executions, stats) round-robin across a set's
//!   members and fail over to the remaining members before a query is
//!   given up as `shard_unavailable`;
//! - **ingest** goes to the set's writer only — epoch ownership is a
//!   partition, and only the writer may mutate the shared store. If the
//!   writer is unreachable on a *fresh dial* (dead, not merely slow),
//!   the router promotes the first healthy replica over the wire
//!   (`Request::Promote`), swaps its writer pointer, and retries the
//!   ingest exactly once on the new writer.
//!
//! The router reuses both serving cores from `concealer-server`
//! unchanged: [`RouterHandler`] implements
//! [`ServeHandler`], so
//! `Server::with_handler` gives it frame handling, the connection state
//! machine, pipelining caps, busy refusal, and graceful drain — by
//! default on the readiness-driven event core, where upstream fan-out
//! blocks a worker thread, never the event loop.
//!
//! Trust: the router lives entirely in the **untrusted zone**. It moves
//! sealed partials and forwards client credentials verbatim; every
//! answer still carries the enclave's verification metadata, so a
//! tampering router is detected exactly like a tampering server (see
//! `ARCHITECTURE.md` § "Multi-node serving"). Promotion moves no key
//! material either — it only tells a replica to re-open the store it
//! already holds as the writer. Attestation (protocol v4) keeps the
//! same shape: the router forwards a client's challenge nonce to every
//! member and relays the signed quotes verbatim (retagging only the
//! shard/member labels) — it never verifies them itself, because its
//! word is worth nothing; the end client's [`TrustPolicy`] checks the
//! enclave signatures across the untrusted hop.
//!
//! Failure semantics: a shard whose every member is unreachable
//! (connect refused, timeout, torn stream) never silently shrinks an
//! answer. The affected query gets a structured `shard_unavailable`
//! error naming the shard, the router backs off the failing members,
//! and later requests retry through fresh connections (see
//! `OPERATIONS.md` § "Failure playbook").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use concealer_client::{ClientBuilder, ClientError, Pending, Session, TrustPolicy};
use concealer_core::{merge_partials, shard_of_epoch, Query, UserHandle};
use concealer_server::protocol::{
    Request, Response, RouterStats, ServerInfo, ShardDescriptor, ShardLoad, ShardRole, WirePartial,
    WirePartialResult, WireQuote, CONNECTION_LEVEL_ID, DEFAULT_MAX_BATCH, DEFAULT_MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use concealer_server::{ErrorCode, ServeHandler, WireError, WireResult, WireStats};

/// Everything that tunes a router deployment (the serving side — bind
/// address, connection caps, mode — stays in
/// [`ServerConfig`](concealer_server::ServerConfig)).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Name reported to clients in the handshake.
    pub router_name: String,
    /// Upstream shard addresses **in shard order**: `shards[i]` must
    /// name the server(s) started with `--shard i/N`. Each entry is a
    /// comma-separated replica-set member list (a single address is a
    /// one-member set); member roles are discovered from `ShardInfo` at
    /// probe time, and every set must have exactly one writer.
    pub shards: Vec<String>,
    /// Maximum queries per `ExecuteBatch` accepted from clients.
    pub max_batch: usize,
    /// Cap on establishing one upstream TCP connection.
    pub connect_timeout: Duration,
    /// Cap on each blocking upstream read. A shard that accepted work
    /// and went silent turns into a clean `shard_unavailable` after this
    /// long instead of wedging a router worker.
    pub read_timeout: Duration,
    /// First backoff applied to an upstream after a transport failure;
    /// doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling of the exponential backoff.
    pub backoff_max: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            router_name: "concealer-router".to_string(),
            shards: Vec::new(),
            max_batch: DEFAULT_MAX_BATCH,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(250),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// A startup (probe-time) failure: unreachable upstream, inconsistent
/// shard map, diverging epoch durations, a replica set without exactly
/// one writer.
#[derive(Debug)]
pub struct RouterError(String);

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RouterError {}

/// Why one shard could not contribute to a fan-out.
enum ShardFailure {
    /// Transport-level: the shard is unreachable or the stream tore. The
    /// client sees a structured [`ErrorCode::ShardUnavailable`].
    Unavailable(String),
    /// The shard answered with a structured error reply (its stream
    /// stayed frame-aligned).
    Server(WireError),
}

/// Mutable per-member state, held only across pool operations — never
/// across network I/O, so concurrent workers fan out in parallel.
struct UpstreamState {
    /// Checkout refuses (fast `shard_unavailable`) until this instant.
    down_until: Option<Instant>,
    /// Consecutive transport failures, driving the exponential backoff.
    fail_streak: u32,
    /// Idle authenticated sessions, keyed by user id. Upstream
    /// sessions are per-credential, so they are not shareable
    /// across users.
    pool: HashMap<u64, Vec<Session>>,
}

/// One replica-set member: its address, connection pool, backoff state,
/// and load counters (reported by `Request::RouterStats`).
struct Upstream {
    /// Shard position this member serves a slice of.
    shard: u32,
    /// Position within the shard's replica set (the order of the
    /// configured member list).
    member: u32,
    addr: String,
    state: Mutex<UpstreamState>,
    requests_forwarded: AtomicU64,
    errors: AtomicU64,
    reconnects: AtomicU64,
}

impl Upstream {
    fn new(shard: u32, member: u32, addr: String) -> Upstream {
        Upstream {
            shard,
            member,
            addr,
            state: Mutex::new(UpstreamState {
                down_until: None,
                fail_streak: 0,
                pool: HashMap::new(),
            }),
            requests_forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, UpstreamState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether checkout would refuse right now (used by the stats
    /// snapshot's `available` flag).
    fn in_backoff(&self) -> bool {
        self.lock()
            .down_until
            .is_some_and(|until| until > Instant::now())
    }

    /// Take an idle pooled session for `user`, if any. `None` means
    /// the caller dials; `Err` means the member is backing off.
    fn checkout(&self, user_id: u64) -> Result<Option<Session>, ShardFailure> {
        let mut state = self.lock();
        if state.down_until.is_some_and(|until| until > Instant::now()) {
            return Err(self.unavailable("backing off after a transport failure"));
        }
        Ok(state.pool.get_mut(&user_id).and_then(Vec::pop))
    }

    /// Return a healthy session to the pool.
    fn checkin(&self, user_id: u64, conn: Session) {
        self.lock().pool.entry(user_id).or_default().push(conn);
    }

    /// A request round-tripped: clear the failure streak.
    fn mark_up(&self) {
        let mut state = self.lock();
        state.fail_streak = 0;
        state.down_until = None;
    }

    /// A fresh dial (not just a stale pooled stream) failed: back off
    /// exponentially and drop every pooled connection — they share the
    /// dead peer.
    fn mark_down(&self, config: &RouterConfig) {
        let mut state = self.lock();
        state.fail_streak = state.fail_streak.saturating_add(1);
        let exp = state.fail_streak.saturating_sub(1).min(16);
        let backoff = config
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(config.backoff_max);
        state.down_until = Some(Instant::now() + backoff);
        state.pool.clear();
    }

    fn unavailable(&self, why: &str) -> ShardFailure {
        ShardFailure::Unavailable(format!(
            "shard {} ({}) unavailable: {why}",
            self.shard, self.addr
        ))
    }
}

/// One shard position's replica set: its members in configured order,
/// the current writer, and a round-robin cursor for read balancing.
struct ShardSet {
    members: Vec<Upstream>,
    /// Index into `members` of the current writer. Swapped (only) by a
    /// successful promotion after the probed writer died.
    writer: AtomicUsize,
    /// Round-robin cursor: successive reads start at successive members
    /// so partial executions spread across the set.
    rr: AtomicUsize,
}

impl ShardSet {
    /// Advance the read cursor and return the member index the next
    /// read should start from.
    fn next_read(&self) -> usize {
        self.rr.fetch_add(1, Ordering::Relaxed) % self.members.len()
    }
}

/// The builder every upstream dial starts from: the router's timeouts,
/// its name, and — crucially — the *unattested* trust policy. The router
/// still runs the v4 attestation round (upstream servers demand it
/// before `Hello`) but never verifies the quotes: it is an untrusted
/// intermediary with no say in trust decisions. End clients verify the
/// relayed quotes themselves.
fn upstream_builder(config: &RouterConfig, addr: &str) -> ClientBuilder {
    ClientBuilder::new(addr)
        .client_name(&config.router_name)
        .connect_timeout(config.connect_timeout)
        .read_timeout(config.read_timeout)
        .write_timeout(config.read_timeout)
        .trust_policy(TrustPolicy::allow_unattested())
}

/// Split one configured shard entry into its member addresses (empty
/// segments from stray commas are dropped).
fn split_members(entry: &str) -> Vec<String> {
    entry
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn role_name(role: ShardRole) -> &'static str {
    match role {
        ShardRole::Writer => "writer",
        ShardRole::Replica => "replica",
    }
}

/// The [`ServeHandler`] that answers by fanning out to shard servers.
///
/// Built by [`RouterHandler::probe`], which validates the shard map
/// before any client traffic is accepted; served via
/// [`Server::with_handler`](concealer_server::Server::with_handler).
pub struct RouterHandler {
    config: RouterConfig,
    sets: Vec<ShardSet>,
    /// Epoch duration every member agreed on at probe time.
    epoch_duration: u64,
    /// Union of the members' registered epochs at probe time — a
    /// startup snapshot for topology discovery, not a live inventory
    /// (shards keep ingesting after the probe).
    probed_epochs: Vec<u64>,
    /// Highest committed store generation reported at probe time.
    probed_generation: u64,
}

impl std::fmt::Debug for RouterHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHandler")
            .field("config", &self.config)
            .field("epoch_duration", &self.epoch_duration)
            .finish_non_exhaustive()
    }
}

impl RouterHandler {
    /// Probe every configured member and validate the shard map:
    /// `shards[i]`'s members must all report slice `i` of
    /// `shards.len()`, every member must agree on the epoch duration,
    /// and every replica set must have exactly one writer. Refusing to
    /// start on a disagreement is what keeps a mis-wired deployment
    /// from serving silently wrong (partially merged) answers — and the
    /// refusal names **every** disagreeing member and the map it
    /// reported, so one startup failure is enough to see the whole
    /// mis-wiring instead of fixing it one address at a time.
    pub fn probe(config: RouterConfig) -> Result<RouterHandler, RouterError> {
        if config.shards.is_empty() {
            return Err(RouterError("router configured with no shards".to_string()));
        }
        let total = u32::try_from(config.shards.len())
            .map_err(|_| RouterError("shard count exceeds u32".to_string()))?;
        let mut epoch_duration: Option<u64> = None;
        let mut epochs = BTreeSet::new();
        let mut probed_generation = 0u64;
        let mut disagreements: Vec<String> = Vec::new();
        let mut sets = Vec::new();
        for (i, entry) in config.shards.iter().enumerate() {
            let index = i as u32;
            let addrs = split_members(entry);
            if addrs.is_empty() {
                return Err(RouterError(format!(
                    "shard {index} has no member addresses (entry {entry:?})"
                )));
            }
            let mut members = Vec::new();
            let mut writers: Vec<usize> = Vec::new();
            let mut roles: Vec<String> = Vec::new();
            for (m, addr) in addrs.iter().enumerate() {
                let mut conn = upstream_builder(&config, addr).probe().map_err(|e| {
                    RouterError(format!("probing shard {index} at {addr} failed: {e}"))
                })?;
                let descriptor = conn.shard_info().map_err(|e| {
                    RouterError(format!("shard {index} at {addr} refused ShardInfo: {e}"))
                })?;
                if descriptor.shard_total != total {
                    disagreements.push(format!(
                        "{addr} reports {}/{} but the router is configured with {total} shards",
                        descriptor.shard_index, descriptor.shard_total
                    ));
                } else if descriptor.shard_index != index {
                    disagreements.push(format!(
                        "{addr} reports slice {}/{} but is listed at position {index} (shard \
                         addresses must be in shard order)",
                        descriptor.shard_index, descriptor.shard_total
                    ));
                }
                match epoch_duration {
                    None => epoch_duration = Some(descriptor.epoch_duration),
                    Some(d) if d != descriptor.epoch_duration => {
                        disagreements.push(format!(
                            "{addr} uses epoch duration {} but shard 0 uses {d}",
                            descriptor.epoch_duration
                        ));
                    }
                    Some(_) => {}
                }
                if descriptor.role == ShardRole::Writer {
                    writers.push(m);
                }
                roles.push(format!("{addr}={}", role_name(descriptor.role)));
                probed_generation = probed_generation.max(descriptor.store_generation);
                epochs.extend(descriptor.epochs);
                members.push(Upstream::new(index, m as u32, addr.clone()));
            }
            let writer = match writers.as_slice() {
                [w] => *w,
                [] => {
                    disagreements.push(format!(
                        "shard {index} replica set has no writer ({})",
                        roles.join(", ")
                    ));
                    0
                }
                many => {
                    disagreements.push(format!(
                        "shard {index} replica set has {} writers ({})",
                        many.len(),
                        roles.join(", ")
                    ));
                    0
                }
            };
            sets.push(ShardSet {
                members,
                writer: AtomicUsize::new(writer),
                rr: AtomicUsize::new(0),
            });
        }
        if !disagreements.is_empty() {
            return Err(RouterError(format!(
                "shard map disagreement: {}",
                disagreements.join("; ")
            )));
        }
        Ok(RouterHandler {
            config,
            sets,
            epoch_duration: epoch_duration.unwrap_or(0),
            probed_epochs: epochs.into_iter().collect(),
            probed_generation,
        })
    }

    /// Dial and authenticate a fresh session to `upstream` as `user`
    /// (the router forwards the client's credential verbatim — it holds
    /// no authority of its own).
    fn dial(&self, upstream: &Upstream, user: &UserHandle) -> Result<Session, ClientError> {
        upstream_builder(&self.config, &upstream.addr)
            .credential(user.user_id.0, user.credential.0)
            .connect()
    }

    /// Run one submit/wait exchange against `upstream`, reusing a pooled
    /// connection when one exists. `retry` allows one full retry on a
    /// fresh connection — right for idempotent reads, wrong for ingest.
    ///
    /// A structured error reply leaves the stream frame-aligned, so the
    /// connection is still pooled; any transport failure drops it, and a
    /// failure on a *freshly dialed* connection marks the member down.
    fn call_shard<T>(
        &self,
        upstream: &Upstream,
        user: &UserHandle,
        retry: bool,
        op: &mut dyn FnMut(&mut Session) -> Result<T, ClientError>,
    ) -> Result<T, ShardFailure> {
        let user_id = user.user_id.0;
        let pooled = upstream.checkout(user_id)?;
        let pooled_was_fresh = pooled.is_none();
        upstream.requests_forwarded.fetch_add(1, Ordering::Relaxed);
        let mut conn = match pooled {
            Some(conn) => conn,
            None => match self.dial(upstream, user) {
                Ok(conn) => conn,
                Err(e) => {
                    upstream.errors.fetch_add(1, Ordering::Relaxed);
                    upstream.mark_down(&self.config);
                    return Err(upstream.unavailable(&e.to_string()));
                }
            },
        };
        match op(&mut conn) {
            Ok(value) => {
                upstream.checkin(user_id, conn);
                upstream.mark_up();
                return Ok(value);
            }
            Err(ClientError::Server(e)) => {
                // The reply arrived; only its content was an error. Drop
                // the connection out of caution (connection-level errors
                // usually precede a close) but do not back off.
                return Err(ShardFailure::Server(e));
            }
            Err(e) => {
                upstream.errors.fetch_add(1, Ordering::Relaxed);
                if pooled_was_fresh || !retry {
                    // The failure happened on a connection we just
                    // dialed, so the member itself is unhealthy.
                    if pooled_was_fresh {
                        upstream.mark_down(&self.config);
                    }
                    return Err(upstream.unavailable(&e.to_string()));
                }
            }
        }
        // The pooled connection was stale (typical after a member
        // restart): reconnect and retry the exchange once.
        upstream.reconnects.fetch_add(1, Ordering::Relaxed);
        let mut conn = match self.dial(upstream, user) {
            Ok(conn) => conn,
            Err(e) => {
                upstream.errors.fetch_add(1, Ordering::Relaxed);
                upstream.mark_down(&self.config);
                return Err(upstream.unavailable(&e.to_string()));
            }
        };
        match op(&mut conn) {
            Ok(value) => {
                upstream.checkin(user_id, conn);
                upstream.mark_up();
                Ok(value)
            }
            Err(ClientError::Server(e)) => Err(ShardFailure::Server(e)),
            Err(e) => {
                upstream.errors.fetch_add(1, Ordering::Relaxed);
                upstream.mark_down(&self.config);
                Err(upstream.unavailable(&e.to_string()))
            }
        }
    }

    /// Run a read exchange against `set`, starting at member `start`
    /// and failing over through the remaining members before giving the
    /// shard up as unavailable. A structured error reply ends the
    /// attempt immediately — replicas are bit-identical, so every
    /// member would answer the same error.
    fn call_set_from<T>(
        &self,
        set: &ShardSet,
        user: &UserHandle,
        start: usize,
        op: &mut dyn FnMut(&mut Session) -> Result<T, ClientError>,
    ) -> Result<T, ShardFailure> {
        let n = set.members.len();
        let mut last: Option<ShardFailure> = None;
        for k in 0..n {
            let member = &set.members[(start + k) % n];
            match self.call_shard(member, user, true, op) {
                Ok(value) => return Ok(value),
                Err(ShardFailure::Server(e)) => return Err(ShardFailure::Server(e)),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("replica sets have at least one member"))
    }

    /// A read exchange against `set` starting at the round-robin cursor.
    fn call_set_read<T>(
        &self,
        set: &ShardSet,
        user: &UserHandle,
        op: &mut dyn FnMut(&mut Session) -> Result<T, ClientError>,
    ) -> Result<T, ShardFailure> {
        let start = set.next_read();
        self.call_set_from(set, user, start, op)
    }

    /// Route one ingest to `set`'s writer — never retried there (a
    /// retried ingest that half-landed would double-apply). If the
    /// writer is unreachable on a fresh dial, promote the first healthy
    /// replica over the wire, swap the writer pointer, and retry the
    /// ingest exactly once on the new writer (the epoch cannot have
    /// half-landed: the dead writer never committed it, and the manifest
    /// commit point makes a torn segment invisible after the promotion's
    /// recovery pass).
    fn call_set_ingest(
        &self,
        set: &ShardSet,
        user: &UserHandle,
        epoch_start: u64,
        records: &[concealer_core::Record],
    ) -> Result<u64, ShardFailure> {
        let writer_idx = set.writer.load(Ordering::Acquire);
        let writer = &set.members[writer_idx];
        let unavailable = match self.call_shard(writer, user, false, &mut |conn| {
            conn.ingest_epoch(epoch_start, records)
        }) {
            Ok(rows) => return Ok(rows),
            Err(ShardFailure::Server(e)) => return Err(ShardFailure::Server(e)),
            Err(e) => e,
        };
        // A torn pooled stream alone is not death — the exchange's
        // outcome is unknown and the writer may be fine. Only a failed
        // *fresh dial* licenses promotion; if the writer still answers,
        // surface the failure and let the operator (or the next ingest)
        // decide.
        if self.dial(writer, user).is_ok() {
            return Err(unavailable);
        }
        // Mid-load failover: the writer is gone. Promotion re-opens the
        // shared store as owner — no key material moves, and recovery
        // truncates any segment the dead writer tore mid-write.
        for k in 1..set.members.len() {
            let idx = (writer_idx + k) % set.members.len();
            let member = &set.members[idx];
            match self.call_shard(member, user, false, &mut |conn| conn.promote()) {
                Ok(_epochs_registered) => {
                    set.writer.store(idx, Ordering::Release);
                    return self.call_shard(member, user, false, &mut |conn| {
                        conn.ingest_epoch(epoch_start, records)
                    });
                }
                Err(ShardFailure::Server(e)) => return Err(ShardFailure::Server(e)),
                Err(_) => continue,
            }
        }
        Err(unavailable)
    }

    /// Fan one pipelined exchange out to **every** shard: submit on all
    /// upstream connections first, then collect the replies — so the
    /// shards execute concurrently while the router worker blocks only
    /// once per upstream, in shard order. Within each replica set the
    /// round-robin cursor picks the member, so successive fans spread
    /// reads across the set.
    ///
    /// Epoch ownership is hash-scattered across the slice space
    /// ([`shard_of_epoch`]), so any time range may touch any shard; the
    /// partition of work happens structurally, because each shard only
    /// holds (and therefore only executes) the epochs its slice owns.
    /// A member whose checked-out connection tears at submit or wait
    /// time falls back to a sequential retry through
    /// [`Self::call_set_from`], which fails over to the set's other
    /// members.
    fn fan<T>(
        &self,
        user: &UserHandle,
        submit: &dyn Fn(&mut Session) -> Result<Pending, ClientError>,
        wait: &dyn Fn(&mut Session, Pending) -> Result<T, ClientError>,
    ) -> Vec<Result<T, ShardFailure>> {
        let user_id = user.user_id.0;
        // Phase 1: put a request on the wire to every reachable shard.
        let mut in_flight: Vec<(usize, Option<(Session, Pending)>)> = Vec::new();
        for set in &self.sets {
            let start = set.next_read();
            let member = &set.members[start];
            let slot = match member.checkout(user_id) {
                Err(_) | Ok(None) => None, // backoff or no pooled conn: sequential path below
                Ok(Some(mut conn)) => match submit(&mut conn) {
                    Ok(pending) => {
                        member.requests_forwarded.fetch_add(1, Ordering::Relaxed);
                        Some((conn, pending))
                    }
                    // Stale pooled stream: drop it; the sequential retry
                    // below dials fresh.
                    Err(_) => None,
                },
            };
            in_flight.push((start, slot));
        }
        // Phase 2: collect, falling back to a fresh sequential exchange
        // wherever phase 1 had nothing usable in flight.
        self.sets
            .iter()
            .zip(in_flight)
            .map(|(set, (start, slot))| match slot {
                Some((mut conn, pending)) => {
                    let member = &set.members[start];
                    match wait(&mut conn, pending) {
                        Ok(value) => {
                            member.checkin(user_id, conn);
                            member.mark_up();
                            Ok(value)
                        }
                        Err(ClientError::Server(e)) => Err(ShardFailure::Server(e)),
                        Err(_) => {
                            // The pipelined attempt tore mid-reply; retry
                            // the whole exchange, failing over through the
                            // set's other members.
                            member.errors.fetch_add(1, Ordering::Relaxed);
                            member.reconnects.fetch_add(1, Ordering::Relaxed);
                            self.call_set_from(set, user, start, &mut |conn| {
                                let pending = submit(conn)?;
                                wait(conn, pending)
                            })
                        }
                    }
                }
                None => self.call_set_from(set, user, start, &mut |conn| {
                    let pending = submit(conn)?;
                    wait(conn, pending)
                }),
            })
            .collect()
    }

    /// Collapse one query's per-shard partial outcomes into the partial
    /// union, or the error the client should see. Structured errors win
    /// over transport errors (they are the more specific diagnosis), and
    /// the lowest shard index wins among structured errors so the choice
    /// is deterministic.
    fn combine_partials(
        outcomes: Vec<Result<Result<Vec<WirePartial>, WireError>, ShardFailure>>,
    ) -> Result<Vec<WirePartial>, WireError> {
        let mut partials = Vec::new();
        let mut unavailable: Option<WireError> = None;
        for outcome in outcomes {
            match outcome {
                Ok(Ok(shard_partials)) => partials.extend(shard_partials),
                Ok(Err(e)) | Err(ShardFailure::Server(e)) => return Err(e),
                Err(ShardFailure::Unavailable(msg)) => {
                    unavailable
                        .get_or_insert_with(|| WireError::new(ErrorCode::ShardUnavailable, msg));
                }
            }
        }
        match unavailable {
            // A missing slice must never silently shrink an answer.
            Some(e) => Err(e),
            None => {
                partials.sort_by_key(|p| p.epoch_id);
                Ok(partials)
            }
        }
    }

    /// Merge a query's partial union into the final answer, reproducing
    /// the single-process execution bit-for-bit (including the
    /// `NoDataForRange` refusal when no shard held an overlapping epoch).
    fn merge_answer(
        query: &Query,
        partials: Vec<WirePartial>,
    ) -> Result<concealer_core::QueryAnswer, WireError> {
        merge_partials(
            query,
            partials
                .into_iter()
                .map(WirePartial::into_partial)
                .collect(),
        )
        .map_err(|e| WireError::from(&e))
    }

    fn batch_too_large(&self, id: u64, len: usize) -> Response {
        Response::Error {
            id,
            error: WireError::new(
                ErrorCode::BatchTooLarge,
                format!(
                    "batch of {len} queries exceeds the {}-query limit",
                    self.config.max_batch
                ),
            ),
        }
    }
}

impl ServeHandler for RouterHandler {
    /// Version-check locally, then authenticate the credential against
    /// the first reachable member — the router holds no credential store
    /// of its own, so upstream acceptance *is* the authentication.
    fn handshake(
        &self,
        version: u32,
        user_id: u64,
        credential: [u8; 32],
    ) -> Result<(UserHandle, ServerInfo), Response> {
        if version != PROTOCOL_VERSION {
            return Err(Response::Error {
                id: CONNECTION_LEVEL_ID,
                error: WireError::new(
                    ErrorCode::UnsupportedVersion,
                    format!("router speaks protocol {PROTOCOL_VERSION}, client sent {version}"),
                ),
            });
        }
        let user = UserHandle {
            user_id: concealer_core::UserId(user_id),
            credential: concealer_core::Credential(credential),
        };
        let mut last_unreachable: Option<String> = None;
        for set in &self.sets {
            for member in &set.members {
                if member.in_backoff() {
                    last_unreachable = Some(format!(
                        "shard {} ({}) backing off",
                        member.shard, member.addr
                    ));
                    continue;
                }
                member.requests_forwarded.fetch_add(1, Ordering::Relaxed);
                match self.dial(member, &user) {
                    Ok(conn) => {
                        let upstream_info = conn.server_info().clone();
                        member.checkin(user_id, conn);
                        member.mark_up();
                        let info = ServerInfo {
                            protocol_version: PROTOCOL_VERSION,
                            server_name: self.config.router_name.clone(),
                            backend: upstream_info.backend,
                            max_batch: self.config.max_batch as u64,
                            max_frame_len: DEFAULT_MAX_FRAME_LEN as u64,
                            ingest_allowed: upstream_info.ingest_allowed,
                        };
                        return Ok((user, info));
                    }
                    Err(ClientError::Handshake(e)) => {
                        // The member answered and refused: the credential
                        // (or version) is bad, and every member shares the
                        // same enclave registry — propagate instead of
                        // retrying.
                        return Err(Response::Error {
                            id: CONNECTION_LEVEL_ID,
                            error: WireError::new(
                                ErrorCode::AuthFailed,
                                format!("upstream shard {} refused: {e}", member.shard),
                            ),
                        });
                    }
                    Err(e) => {
                        member.errors.fetch_add(1, Ordering::Relaxed);
                        member.mark_down(&self.config);
                        last_unreachable =
                            Some(format!("shard {} ({}): {e}", member.shard, member.addr));
                    }
                }
            }
        }
        Err(Response::Error {
            id: CONNECTION_LEVEL_ID,
            error: WireError::new(
                ErrorCode::ShardUnavailable,
                format!(
                    "no shard reachable to authenticate against (last: {})",
                    last_unreachable.unwrap_or_else(|| "none tried".to_string())
                ),
            ),
        })
    }

    fn execute(&self, user: &UserHandle, request: Request) -> Response {
        match request {
            Request::Execute { id, query, options } => {
                let outcomes = self.fan(
                    user,
                    &|conn| conn.submit_partial(&query, options),
                    &|conn, pending| conn.wait_partial(pending),
                );
                let result =
                    Self::combine_partials(outcomes).and_then(|p| Self::merge_answer(&query, p));
                match result {
                    Ok(answer) => Response::Answer { id, answer },
                    Err(error) => Response::Error { id, error },
                }
            }
            Request::ExecuteBatch {
                id,
                queries,
                options,
            } => {
                if queries.len() > self.config.max_batch {
                    return self.batch_too_large(id, queries.len());
                }
                let per_shard = self.fan(
                    user,
                    &|conn| conn.submit_batch_partial(&queries, options),
                    &|conn, pending| conn.wait_batch_partial(pending),
                );
                let per_query = split_batch(per_shard, queries.len());
                let results = queries
                    .iter()
                    .zip(per_query)
                    .map(|(query, outcomes)| {
                        match Self::combine_partials(outcomes)
                            .and_then(|p| Self::merge_answer(query, p))
                        {
                            Ok(answer) => WireResult::Ok(answer),
                            Err(e) => WireResult::Err(e),
                        }
                    })
                    .collect();
                Response::BatchAnswer { id, results }
            }
            Request::ExecutePartial { id, query, options } => {
                let outcomes = self.fan(
                    user,
                    &|conn| conn.submit_partial(&query, options),
                    &|conn, pending| conn.wait_partial(pending),
                );
                let result = match Self::combine_partials(outcomes) {
                    Ok(partials) => WirePartialResult::Ok(partials),
                    Err(e) => WirePartialResult::Err(e),
                };
                Response::PartialAnswer { id, result }
            }
            Request::ExecuteBatchPartial {
                id,
                queries,
                options,
            } => {
                if queries.len() > self.config.max_batch {
                    return self.batch_too_large(id, queries.len());
                }
                let per_shard = self.fan(
                    user,
                    &|conn| conn.submit_batch_partial(&queries, options),
                    &|conn, pending| conn.wait_batch_partial(pending),
                );
                let results = split_batch(per_shard, queries.len())
                    .into_iter()
                    .map(|outcomes| match Self::combine_partials(outcomes) {
                        Ok(partials) => WirePartialResult::Ok(partials),
                        Err(e) => WirePartialResult::Err(e),
                    })
                    .collect();
                Response::BatchPartialAnswer { id, results }
            }
            Request::IngestEpoch {
                id,
                epoch_start,
                records,
            } => {
                // Epoch ownership is a partition: exactly one shard may
                // take this epoch, so route there — and within the set,
                // to the writer (with promote-on-death failover).
                let owner = shard_of_epoch(epoch_start, self.sets.len());
                let set = &self.sets[owner];
                match self.call_set_ingest(set, user, epoch_start, &records) {
                    Ok(rows_stored) => Response::IngestOk {
                        id,
                        epoch_id: epoch_start,
                        rows_stored,
                    },
                    Err(ShardFailure::Server(error)) => Response::Error { id, error },
                    Err(ShardFailure::Unavailable(msg)) => Response::Error {
                        id,
                        error: WireError::new(ErrorCode::ShardUnavailable, msg),
                    },
                }
            }
            Request::Promote { id } => {
                // Promotion is member-addressed: the wire carries no way
                // to say *which* member of *which* set should take over,
                // and the router already promotes automatically when an
                // ingest finds the writer dead. Operators doing a planned
                // handover connect to the chosen replica directly (see
                // OPERATIONS.md § "Planned writer handover").
                Response::Error {
                    id,
                    error: WireError::new(
                        ErrorCode::InvalidConfig,
                        "the router does not forward Promote; connect directly to the replica \
                         member that should become the writer",
                    ),
                }
            }
            Request::Stats { id } => {
                // Aggregate the backend profile across the deployment:
                // counters sum, the security properties hold only if
                // every slice upholds them. One member per set answers —
                // replicas serve the same committed epochs, so any
                // member's numbers stand for the shard.
                let mut merged: Option<WireStats> = None;
                for set in &self.sets {
                    let stats = match self.call_set_read(set, user, &mut |conn| conn.stats()) {
                        Ok(stats) => stats,
                        Err(ShardFailure::Server(error)) => return Response::Error { id, error },
                        Err(ShardFailure::Unavailable(msg)) => {
                            return Response::Error {
                                id,
                                error: WireError::new(ErrorCode::ShardUnavailable, msg),
                            }
                        }
                    };
                    merged = Some(match merged {
                        None => stats,
                        Some(acc) => WireStats {
                            backend: acc.backend,
                            epochs: acc.epochs + stats.epochs,
                            rows_stored: acc.rows_stored + stats.rows_stored,
                            volume_hiding: acc.volume_hiding && stats.volume_hiding,
                            verifiable: acc.verifiable && stats.verifiable,
                        },
                    });
                }
                match merged {
                    Some(stats) => Response::StatsOk { id, stats },
                    None => Response::Error {
                        id,
                        error: WireError::new(ErrorCode::ShardUnavailable, "no shards configured"),
                    },
                }
            }
            Request::Hello { .. }
            | Request::Goodbye
            | Request::Shutdown { .. }
            | Request::ServeStats { .. }
            | Request::ShardInfo { .. }
            | Request::Attest { .. }
            | Request::RouterStats { .. } => {
                unreachable!("connection-level requests never reach the handler executor")
            }
        }
    }

    /// Forward the client's attestation challenge to every replica-set
    /// member and relay the signed quotes verbatim, retagging only the
    /// shard/member labels to the router's own configuration (a shard
    /// server cannot know its position in a replica set). The router
    /// dials fresh probe sessions — pooled sessions are post-handshake,
    /// where `Attest` is a protocol violation — and skips members that
    /// are unreachable or backing off: attestation needs proof that the
    /// enclaves *serving* are genuine, and a dead member is not serving.
    /// Zero reachable members means the client can verify nothing, which
    /// is a structured `attestation_failed`, never an empty `AttestOk`.
    fn attest(&self, id: u64, nonce: [u8; 32]) -> Response {
        let mut quotes: Vec<WireQuote> = Vec::new();
        let mut last_failure: Option<String> = None;
        for set in &self.sets {
            for member in &set.members {
                if member.in_backoff() {
                    last_failure = Some(format!(
                        "shard {} ({}) backing off",
                        member.shard, member.addr
                    ));
                    continue;
                }
                member.requests_forwarded.fetch_add(1, Ordering::Relaxed);
                match upstream_builder(&self.config, &member.addr)
                    .attest_nonce(nonce)
                    .probe()
                {
                    Ok(session) => {
                        quotes.extend(session.quotes().iter().map(|quote| WireQuote {
                            shard_index: member.shard,
                            member: member.member,
                            ..quote.clone()
                        }));
                        let _ = session.close();
                    }
                    Err(e) => {
                        member.errors.fetch_add(1, Ordering::Relaxed);
                        last_failure =
                            Some(format!("shard {} ({}): {e}", member.shard, member.addr));
                    }
                }
            }
        }
        if quotes.is_empty() {
            return Response::Error {
                id,
                error: WireError::new(
                    ErrorCode::AttestationFailed,
                    format!(
                        "no upstream enclave produced a quote (last: {})",
                        last_failure.unwrap_or_else(|| "none tried".to_string())
                    ),
                ),
            };
        }
        Response::AttestOk { id, quotes }
    }

    /// The router presents itself as the whole map (`0/1`) and reports
    /// the probe-time union of its shards' epochs — a topology snapshot,
    /// not a live inventory. It reports the writer role: clients route
    /// ingest through it, and it is never itself a read replica.
    fn shard_info(&self, id: u64) -> Response {
        Response::ShardInfoOk {
            id,
            shard: ShardDescriptor {
                shard_index: 0,
                shard_total: 1,
                epoch_duration: self.epoch_duration,
                epochs: self.probed_epochs.clone(),
                role: ShardRole::Writer,
                store_generation: self.probed_generation,
            },
        }
    }

    fn router_stats(&self, id: u64) -> Response {
        Response::RouterStatsOk {
            id,
            stats: RouterStats {
                shards: self
                    .sets
                    .iter()
                    .flat_map(|set| {
                        let writer = set.writer.load(Ordering::Acquire);
                        set.members.iter().enumerate().map(move |(m, u)| ShardLoad {
                            shard_index: u.shard,
                            addr: u.addr.clone(),
                            requests_forwarded: u.requests_forwarded.load(Ordering::Relaxed),
                            errors: u.errors.load(Ordering::Relaxed),
                            reconnects: u.reconnects.load(Ordering::Relaxed),
                            available: !u.in_backoff(),
                            member: u.member,
                            writer: m == writer,
                        })
                    })
                    .collect(),
            },
        }
    }

    /// A wire shutdown at the router drains the whole deployment:
    /// forward it to every member of every set (tolerating members that
    /// are already gone), then let the serving core drain the router
    /// itself.
    fn on_wire_shutdown(&self, user: &UserHandle) {
        for set in &self.sets {
            for member in &set.members {
                let _ = self.call_shard(member, user, false, &mut |conn| conn.shutdown_server());
            }
        }
    }
}

/// Transpose per-shard batch replies into per-query outcome lists for
/// positional merging. A shard whose reply does not line up with the
/// submitted batch is treated as unavailable — a length mismatch means
/// the upstream is not speaking the protocol we validated at probe time.
#[allow(clippy::type_complexity)]
fn split_batch(
    per_shard: Vec<Result<Vec<Result<Vec<WirePartial>, WireError>>, ShardFailure>>,
    queries: usize,
) -> Vec<Vec<Result<Result<Vec<WirePartial>, WireError>, ShardFailure>>> {
    let mut per_query: Vec<Vec<Result<Result<Vec<WirePartial>, WireError>, ShardFailure>>> =
        (0..queries).map(|_| Vec::new()).collect();
    for (shard_index, outcome) in per_shard.into_iter().enumerate() {
        match outcome {
            Ok(results) if results.len() == queries => {
                for (slot, result) in per_query.iter_mut().zip(results) {
                    slot.push(Ok(result));
                }
            }
            Ok(results) => {
                let msg = format!(
                    "shard {shard_index} answered {} results for a {queries}-query batch",
                    results.len()
                );
                for slot in &mut per_query {
                    slot.push(Err(ShardFailure::Unavailable(msg.clone())));
                }
            }
            Err(ShardFailure::Server(e)) => {
                for slot in &mut per_query {
                    slot.push(Err(ShardFailure::Server(e.clone())));
                }
            }
            Err(ShardFailure::Unavailable(msg)) => {
                for slot in &mut per_query {
                    slot.push(Err(ShardFailure::Unavailable(msg.clone())));
                }
            }
        }
    }
    per_query
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_refuses_empty_shard_list() {
        let err = RouterHandler::probe(RouterConfig::default()).unwrap_err();
        assert!(err.to_string().contains("no shards"));
    }

    #[test]
    fn probe_refuses_unreachable_shard() {
        // A bound-then-dropped listener leaves a port nothing listens on.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("local addr").port()
        };
        let config = RouterConfig {
            shards: vec![format!("127.0.0.1:{port}")],
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(250),
            ..RouterConfig::default()
        };
        let err = RouterHandler::probe(config).unwrap_err();
        assert!(
            err.to_string().contains("probing shard 0"),
            "unexpected probe error: {err}"
        );
    }

    #[test]
    fn split_members_drops_empty_segments() {
        assert_eq!(
            split_members("127.0.0.1:7000,127.0.0.1:7001"),
            vec!["127.0.0.1:7000".to_string(), "127.0.0.1:7001".to_string()]
        );
        assert_eq!(
            split_members(" 127.0.0.1:7000 , ,127.0.0.1:7001,"),
            vec!["127.0.0.1:7000".to_string(), "127.0.0.1:7001".to_string()]
        );
        assert!(split_members(",,").is_empty());
    }

    #[test]
    fn round_robin_cursor_cycles_members() {
        let set = ShardSet {
            members: vec![
                Upstream::new(0, 0, "127.0.0.1:1".to_string()),
                Upstream::new(0, 1, "127.0.0.1:2".to_string()),
                Upstream::new(0, 2, "127.0.0.1:3".to_string()),
            ],
            writer: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
        };
        let picks: Vec<usize> = (0..6).map(|_| set.next_read()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let config = RouterConfig {
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_millis(350),
            ..RouterConfig::default()
        };
        let upstream = Upstream::new(0, 0, "127.0.0.1:1".to_string());
        assert!(!upstream.in_backoff());
        upstream.mark_down(&config);
        assert!(upstream.in_backoff());
        let first = upstream.lock().down_until.expect("backed off");
        upstream.mark_down(&config);
        let second = upstream.lock().down_until.expect("backed off");
        assert!(second >= first, "backoff must not shrink under failures");
        // After many failures the backoff saturates at the cap.
        for _ in 0..20 {
            upstream.mark_down(&config);
        }
        let capped = upstream.lock().down_until.expect("backed off");
        assert!(capped.saturating_duration_since(Instant::now()) <= Duration::from_millis(400));
        upstream.mark_up();
        assert!(!upstream.in_backoff());
    }

    #[test]
    fn split_batch_propagates_shard_failures_positionally() {
        let per_shard = vec![
            Ok(vec![Ok(vec![]), Ok(vec![])]),
            Err(ShardFailure::Unavailable("shard 1 down".to_string())),
        ];
        let per_query = split_batch(per_shard, 2);
        assert_eq!(per_query.len(), 2);
        for outcomes in &per_query {
            assert_eq!(outcomes.len(), 2);
            assert!(matches!(outcomes[0], Ok(Ok(_))));
            assert!(matches!(outcomes[1], Err(ShardFailure::Unavailable(_))));
        }
    }

    #[test]
    fn split_batch_turns_length_mismatch_into_unavailable() {
        let per_shard = vec![Ok(vec![Ok(Vec::<WirePartial>::new())])];
        let per_query = split_batch(per_shard, 2);
        assert_eq!(per_query.len(), 2);
        assert!(matches!(per_query[1][0], Err(ShardFailure::Unavailable(_))));
    }
}
