//! An in-memory B+Tree over byte-string keys.
//!
//! This plays the role MySQL's secondary B-tree index plays in the paper:
//! the data provider ships tuples whose `Index` column holds the
//! deterministic ciphertext `E_k(cid || counter)`, the DBMS indexes that
//! column, and every query the enclave issues is an exact-match lookup of a
//! trapdoor against this index. Leaves are chained so ordered iteration and
//! range scans are cheap (used by the baselines and by table statistics).
//!
//! The tree is arena-allocated (nodes live in a `Vec`, children are
//! indices). Keys are unique — the `Index` ciphertexts are unique by
//! construction because the per-cell counter is part of the plaintext.

use crate::{Result, StorageError};

/// Maximum number of keys per node. Chosen so interior nodes stay a few
/// cache lines wide; correctness does not depend on the exact value and the
/// property tests run with several orders.
const ORDER: usize = 32;
const MIN_KEYS: usize = ORDER / 2;

type NodeId = usize;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Separator keys; `children.len() == keys.len() + 1`.
        keys: Vec<Vec<u8>>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<Vec<u8>>,
        values: Vec<u64>,
        /// Next leaf in key order, forming the leaf chain.
        next: Option<NodeId>,
    },
}

/// A B+Tree mapping byte-string keys to `u64` row locators.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: NodeId,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

enum InsertResult {
    Done,
    Split { sep: Vec<u8>, right: NodeId },
    Duplicate,
}

impl BPlusTree {
    /// Create an empty tree.
    #[must_use]
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of key/value pairs stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (a single leaf has height 1).
    #[must_use]
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Number of nodes currently allocated (leaves + internal).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Insert a key/value pair. Returns an error if the key already exists.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Result<()> {
        match self.insert_rec(self.root, key, value) {
            InsertResult::Done => {
                self.len += 1;
                Ok(())
            }
            InsertResult::Duplicate => Err(StorageError::DuplicateKey),
            InsertResult::Split { sep, right } => {
                // Root split: create a new root.
                let new_root = self.nodes.len();
                let old_root = self.root;
                self.nodes.push(Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                });
                self.root = new_root;
                self.len += 1;
                Ok(())
            }
        }
    }

    fn insert_rec(&mut self, node: NodeId, key: &[u8], value: u64) -> InsertResult {
        match &self.nodes[node] {
            Node::Leaf { keys, .. } => {
                let pos = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(_) => return InsertResult::Duplicate,
                    Err(pos) => pos,
                };
                if let Node::Leaf { keys, values, .. } = &mut self.nodes[node] {
                    keys.insert(pos, key.to_vec());
                    values.insert(pos, value);
                }
                self.maybe_split_leaf(node)
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let child = children[idx];
                match self.insert_rec(child, key, value) {
                    InsertResult::Done => InsertResult::Done,
                    InsertResult::Duplicate => InsertResult::Duplicate,
                    InsertResult::Split { sep, right } => {
                        if let Node::Internal { keys, children } = &mut self.nodes[node] {
                            keys.insert(idx, sep);
                            children.insert(idx + 1, right);
                        }
                        self.maybe_split_internal(node)
                    }
                }
            }
        }
    }

    fn maybe_split_leaf(&mut self, node: NodeId) -> InsertResult {
        let needs_split =
            matches!(&self.nodes[node], Node::Leaf { keys, .. } if keys.len() > ORDER);
        if !needs_split {
            return InsertResult::Done;
        }
        let new_id = self.nodes.len();
        let (sep, right) = if let Node::Leaf { keys, values, next } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid);
            let right_values = values.split_off(mid);
            let sep = right_keys[0].clone();
            let right = Node::Leaf {
                keys: right_keys,
                values: right_values,
                next: *next,
            };
            *next = Some(new_id);
            (sep, right)
        } else {
            unreachable!("maybe_split_leaf called on internal node")
        };
        self.nodes.push(right);
        InsertResult::Split { sep, right: new_id }
    }

    fn maybe_split_internal(&mut self, node: NodeId) -> InsertResult {
        let needs_split =
            matches!(&self.nodes[node], Node::Internal { keys, .. } if keys.len() > ORDER);
        if !needs_split {
            return InsertResult::Done;
        }
        let new_id = self.nodes.len();
        let (sep, right) = if let Node::Internal { keys, children } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            // Separator moves up; right node gets keys after it.
            let right_keys = keys.split_off(mid + 1);
            let sep = keys.pop().expect("non-empty after split point");
            let right_children = children.split_off(mid + 1);
            let right = Node::Internal {
                keys: right_keys,
                children: right_children,
            };
            (sep, right)
        } else {
            unreachable!("maybe_split_internal called on leaf")
        };
        self.nodes.push(right);
        InsertResult::Split { sep, right: new_id }
    }

    /// Exact-match lookup.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = children[idx];
                }
                Node::Leaf { keys, values, .. } => {
                    return keys
                        .binary_search_by(|k| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| values[i]);
                }
            }
        }
    }

    /// Whether the tree contains `key`.
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over all `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], u64)> + '_ {
        BTreeIter {
            tree: self,
            leaf: Some(self.first_leaf()),
            pos: 0,
        }
    }

    /// All values whose keys lie in `[lo, hi]` (inclusive), in key order.
    #[must_use]
    pub fn range_inclusive(&self, lo: &[u8], hi: &[u8]) -> Vec<u64> {
        let mut out = Vec::new();
        for (k, v) in self.iter() {
            if k > hi {
                break;
            }
            if k >= lo {
                out.push(v);
            }
        }
        out
    }

    fn first_leaf(&self) -> NodeId {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Internal { children, .. } => node = children[0],
            }
        }
    }

    /// Check structural invariants; used by tests.
    ///
    /// Verifies that (1) leaf keys are globally sorted and unique, (2) the
    /// number of keys equals `len()`, (3) every internal node has
    /// `children = keys + 1`, and (4) no non-root node underflows its
    /// minimum occupancy after pure insertion workloads (no deletions are
    /// supported, matching the append-only usage in Concealer).
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        // 1 & 2: sorted unique leaf chain covering all entries.
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0usize;
        for (k, _) in self.iter() {
            if let Some(p) = &prev {
                if p.as_slice() >= k {
                    return false;
                }
            }
            prev = Some(k.to_vec());
            count += 1;
        }
        if count != self.len {
            return false;
        }
        // 3 & 4: node shape.
        self.check_node(self.root, true)
    }

    fn check_node(&self, node: NodeId, is_root: bool) -> bool {
        match &self.nodes[node] {
            Node::Leaf { keys, values, .. } => {
                if keys.len() != values.len() {
                    return false;
                }
                if keys.len() > ORDER + 1 {
                    return false;
                }
                true
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return false;
                }
                if !is_root && keys.len() < MIN_KEYS / 2 {
                    // Under pure insertion nodes are at least half of half full.
                    return false;
                }
                children.iter().all(|c| self.check_node(*c, false))
            }
        }
    }
}

struct BTreeIter<'a> {
    tree: &'a BPlusTree,
    leaf: Option<NodeId>,
    pos: usize,
}

impl<'a> Iterator for BTreeIter<'a> {
    type Item = (&'a [u8], u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf_id = self.leaf?;
            match &self.tree.nodes[leaf_id] {
                Node::Leaf { keys, values, next } => {
                    if self.pos < keys.len() {
                        let item = (keys[self.pos].as_slice(), values[self.pos]);
                        self.pos += 1;
                        return Some(item);
                    }
                    self.leaf = *next;
                    self.pos = 0;
                }
                Node::Internal { .. } => unreachable!("leaf chain points at internal node"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(b"anything"), None);
        assert_eq!(t.height(), 1);
        assert!(t.check_invariants());
    }

    #[test]
    fn insert_and_get_small() {
        let mut t = BPlusTree::new();
        t.insert(b"b", 2).unwrap();
        t.insert(b"a", 1).unwrap();
        t.insert(b"c", 3).unwrap();
        assert_eq!(t.get(b"a"), Some(1));
        assert_eq!(t.get(b"b"), Some(2));
        assert_eq!(t.get(b"c"), Some(3));
        assert_eq!(t.get(b"d"), None);
        assert_eq!(t.len(), 3);
        assert!(t.check_invariants());
    }

    #[test]
    fn duplicate_rejected() {
        let mut t = BPlusTree::new();
        t.insert(b"k", 1).unwrap();
        assert_eq!(t.insert(b"k", 2), Err(StorageError::DuplicateKey));
        assert_eq!(t.get(b"k"), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_sequential_inserts() {
        let mut t = BPlusTree::new();
        let n = 10_000u64;
        for i in 0..n {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.height() > 1, "tree should have split");
        for i in 0..n {
            assert_eq!(t.get(&i.to_be_bytes()), Some(i));
        }
        assert!(t.check_invariants());
    }

    #[test]
    fn many_random_order_inserts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut keys: Vec<u64> = (0..5000).collect();
        keys.shuffle(&mut rng);
        let mut t = BPlusTree::new();
        for &k in &keys {
            t.insert(&k.to_be_bytes(), k * 10).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.get(&k.to_be_bytes()), Some(k * 10));
        }
        assert!(t.check_invariants());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = BPlusTree::new();
        for i in [5u64, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        let values: Vec<u64> = t.iter().map(|(_, v)| v).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn range_inclusive_scan() {
        let mut t = BPlusTree::new();
        for i in 0..100u64 {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        let vals = t.range_inclusive(&10u64.to_be_bytes(), &20u64.to_be_bytes());
        assert_eq!(vals, (10..=20).collect::<Vec<_>>());
        // Empty range.
        let vals = t.range_inclusive(&200u64.to_be_bytes(), &300u64.to_be_bytes());
        assert!(vals.is_empty());
    }

    #[test]
    fn variable_length_keys() {
        let mut t = BPlusTree::new();
        let keys: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"aa".to_vec(),
            b"aaa".to_vec(),
            b"ab".to_vec(),
            vec![0xff; 100],
        ];
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64));
        }
        assert!(t.check_invariants());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_matches_std_btreemap(entries in proptest::collection::btree_map(
            proptest::collection::vec(any::<u8>(), 0..24), any::<u64>(), 0..600)) {
            let mut t = BPlusTree::new();
            for (k, v) in &entries {
                t.insert(k, *v).unwrap();
            }
            prop_assert_eq!(t.len(), entries.len());
            for (k, v) in &entries {
                prop_assert_eq!(t.get(k), Some(*v));
            }
            // Iteration order matches the reference map.
            let ours: Vec<(Vec<u8>, u64)> = t.iter().map(|(k, v)| (k.to_vec(), v)).collect();
            let reference: Vec<(Vec<u8>, u64)> = entries.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(ours, reference);
            prop_assert!(t.check_invariants());
        }

        #[test]
        fn prop_absent_keys_return_none(
            present in proptest::collection::btree_set(any::<u32>(), 1..200),
            probe in any::<u32>(),
        ) {
            let mut t = BPlusTree::new();
            for k in &present {
                t.insert(&k.to_be_bytes(), u64::from(*k)).unwrap();
            }
            let expect = present.contains(&probe).then(|| u64::from(probe));
            prop_assert_eq!(t.get(&probe.to_be_bytes()), expect);
        }
    }
}
