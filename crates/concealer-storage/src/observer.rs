//! The adversary's view of the storage layer.
//!
//! Concealer's security argument is about what the untrusted service
//! provider *observes*: the trapdoors submitted to the DBMS, the physical
//! rows returned, and the sizes of every transfer. [`AccessObserver`]
//! records exactly that trace so the test-suite and benchmarks can check the
//! paper's claims mechanically:
//!
//! * **volume hiding** — every point query on an epoch causes the same
//!   number of rows to be fetched (§4, bins of identical size);
//! * **partial access-pattern hiding** — the set of fetched rows depends
//!   only on the bin, never on which predicate inside the bin was queried;
//! * **workload-attack mitigation** (§8) — with super-bins enabled the
//!   retrieval frequency of the fetched units is near-uniform under a
//!   uniform query workload.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One observable storage-level event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessEvent {
    /// A trapdoor (exact-match key) was submitted to the index.
    TrapdoorIssued {
        /// Epoch the lookup targeted.
        epoch_id: u64,
        /// Length in bytes of the trapdoor (ciphertext length, not content).
        trapdoor_len: usize,
        /// Whether the index found a matching row.
        hit: bool,
    },
    /// A physical row was returned to the enclave.
    RowFetched {
        /// Epoch the row belongs to.
        epoch_id: u64,
        /// Physical row id within the epoch segment.
        row_id: u64,
        /// Bytes transferred for this row.
        bytes: usize,
    },
    /// A full segment scan was performed (baseline systems).
    FullScan {
        /// Epoch scanned.
        epoch_id: u64,
        /// Rows read.
        rows: usize,
        /// Bytes transferred.
        bytes: usize,
    },
    /// A whole epoch segment was ingested.
    EpochIngested {
        /// Epoch id.
        epoch_id: u64,
        /// Number of rows in the shipment (real + fake; the adversary cannot
        /// tell them apart).
        rows: usize,
        /// Bytes received.
        bytes: usize,
    },
    /// An epoch segment was replaced (dynamic-insertion re-encryption).
    EpochRewritten {
        /// Epoch id.
        epoch_id: u64,
        /// Number of rows in the replacement.
        rows: usize,
    },
    /// A query session boundary marker; lets analyses group events per query.
    QueryBoundary,
}

/// Aggregate statistics derived from an access trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObserverSummary {
    /// Trapdoors issued.
    pub trapdoors: usize,
    /// Rows fetched via the index.
    pub rows_fetched: usize,
    /// Bytes moved from storage to the enclave via index fetches.
    pub bytes_fetched: usize,
    /// Full scans performed.
    pub full_scans: usize,
    /// Rows read by full scans.
    pub scanned_rows: usize,
    /// Number of distinct physical rows touched (per epoch, row id).
    pub distinct_rows_touched: usize,
    /// Per-row fetch frequency, keyed by `(epoch_id, row_id)`.
    pub fetch_frequency: BTreeMap<(u64, u64), usize>,
}

/// Thread-safe recorder of [`AccessEvent`]s. Cloning shares the underlying
/// trace (it is an `Arc`), so the storage layer, the enclave and the test
/// harness can all hold handles to the same observer.
#[derive(Debug, Clone, Default)]
pub struct AccessObserver {
    events: Arc<Mutex<Vec<AccessEvent>>>,
}

impl AccessObserver {
    /// Create a fresh, empty observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event.
    pub fn record(&self, event: AccessEvent) {
        self.events.lock().push(event);
    }

    /// Record a query boundary marker.
    pub fn mark_query_boundary(&self) {
        self.record(AccessEvent::QueryBoundary);
    }

    /// Append a pre-ordered batch of events under a single lock
    /// acquisition, so no event from another thread can interleave inside
    /// the batch.
    ///
    /// This is the merge half of the parallel execution protocol: worker
    /// tasks record into task-local observers (one per `(epoch, bin)`
    /// fetch), and the engine concatenates the buffers **in ascending bin
    /// order** before appending them here. The resulting trace is
    /// byte-identical to a sequential execution of the same batch — the
    /// union-of-per-query-traces invariant holds exactly, not just up to
    /// reordering.
    pub fn record_batch(&self, events: Vec<AccessEvent>) {
        self.events.lock().extend(events);
    }

    /// Drain all recorded events, leaving the observer empty. Used to move
    /// a task-local trace into the shared observer via
    /// [`AccessObserver::record_batch`].
    #[must_use]
    pub fn take_events(&self) -> Vec<AccessEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Snapshot the full trace.
    #[must_use]
    pub fn trace(&self) -> Vec<AccessEvent> {
        self.events.lock().clone()
    }

    /// Clear the trace (between experiments).
    pub fn reset(&self) {
        self.events.lock().clear();
    }

    /// Summarize the whole trace.
    #[must_use]
    pub fn summary(&self) -> ObserverSummary {
        Self::summarize(&self.trace())
    }

    /// Summarize an arbitrary slice of events.
    #[must_use]
    pub fn summarize(events: &[AccessEvent]) -> ObserverSummary {
        let mut s = ObserverSummary::default();
        for e in events {
            match e {
                AccessEvent::TrapdoorIssued { .. } => s.trapdoors += 1,
                AccessEvent::RowFetched {
                    epoch_id,
                    row_id,
                    bytes,
                } => {
                    s.rows_fetched += 1;
                    s.bytes_fetched += bytes;
                    *s.fetch_frequency.entry((*epoch_id, *row_id)).or_insert(0) += 1;
                }
                AccessEvent::FullScan { rows, bytes, .. } => {
                    s.full_scans += 1;
                    s.scanned_rows += rows;
                    s.bytes_fetched += bytes;
                }
                AccessEvent::EpochIngested { .. }
                | AccessEvent::EpochRewritten { .. }
                | AccessEvent::QueryBoundary => {}
            }
        }
        s.distinct_rows_touched = s.fetch_frequency.len();
        s
    }

    /// Split the trace into per-query segments using [`AccessEvent::QueryBoundary`]
    /// markers, and summarize each. The boundary event closes the preceding
    /// segment.
    #[must_use]
    pub fn per_query_summaries(&self) -> Vec<ObserverSummary> {
        let trace = self.trace();
        let mut out = Vec::new();
        let mut current = Vec::new();
        for e in trace {
            if matches!(e, AccessEvent::QueryBoundary) {
                if !current.is_empty() {
                    out.push(Self::summarize(&current));
                    current.clear();
                }
            } else {
                current.push(e);
            }
        }
        if !current.is_empty() {
            out.push(Self::summarize(&current));
        }
        out
    }

    /// The multiset of rows fetched in each query segment, as sorted vectors
    /// of `(epoch, row_id)`. Used to assert that different predicates inside
    /// the same bin produce *identical* fetch sets.
    #[must_use]
    pub fn per_query_fetch_sets(&self) -> Vec<Vec<(u64, u64)>> {
        let trace = self.trace();
        let mut out = Vec::new();
        let mut current = Vec::new();
        for e in trace {
            match e {
                AccessEvent::QueryBoundary if !current.is_empty() => {
                    let mut set: Vec<(u64, u64)> = std::mem::take(&mut current);
                    set.sort_unstable();
                    out.push(set);
                }
                AccessEvent::RowFetched {
                    epoch_id, row_id, ..
                } => {
                    current.push((epoch_id, row_id));
                }
                _ => {}
            }
        }
        if !current.is_empty() {
            current.sort_unstable();
            out.push(current);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetched(epoch: u64, row: u64) -> AccessEvent {
        AccessEvent::RowFetched {
            epoch_id: epoch,
            row_id: row,
            bytes: 100,
        }
    }

    #[test]
    fn records_and_summarizes() {
        let obs = AccessObserver::new();
        obs.record(AccessEvent::TrapdoorIssued {
            epoch_id: 1,
            trapdoor_len: 24,
            hit: true,
        });
        obs.record(fetched(1, 10));
        obs.record(fetched(1, 10));
        obs.record(fetched(1, 11));
        let s = obs.summary();
        assert_eq!(s.trapdoors, 1);
        assert_eq!(s.rows_fetched, 3);
        assert_eq!(s.bytes_fetched, 300);
        assert_eq!(s.distinct_rows_touched, 2);
        assert_eq!(s.fetch_frequency[&(1, 10)], 2);
    }

    #[test]
    fn per_query_segmentation() {
        let obs = AccessObserver::new();
        obs.record(fetched(1, 1));
        obs.record(fetched(1, 2));
        obs.mark_query_boundary();
        obs.record(fetched(1, 2));
        obs.record(fetched(1, 1));
        obs.mark_query_boundary();

        let summaries = obs.per_query_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].rows_fetched, 2);
        assert_eq!(summaries[1].rows_fetched, 2);

        let sets = obs.per_query_fetch_sets();
        assert_eq!(sets[0], sets[1], "same rows regardless of order");
    }

    #[test]
    fn reset_clears_trace() {
        let obs = AccessObserver::new();
        obs.record(fetched(1, 1));
        assert!(!obs.is_empty());
        obs.reset();
        assert!(obs.is_empty());
        assert_eq!(obs.summary(), ObserverSummary::default());
    }

    #[test]
    fn clones_share_the_trace() {
        let obs = AccessObserver::new();
        let handle = obs.clone();
        handle.record(fetched(3, 7));
        assert_eq!(obs.len(), 1);
        assert_eq!(obs.trace(), handle.trace());
    }

    #[test]
    fn record_batch_appends_in_order_and_take_events_drains() {
        let obs = AccessObserver::new();
        obs.record(fetched(1, 1));
        obs.record_batch(vec![fetched(2, 2), fetched(3, 3)]);
        assert_eq!(
            obs.trace(),
            vec![fetched(1, 1), fetched(2, 2), fetched(3, 3)]
        );
        let drained = obs.take_events();
        assert_eq!(drained.len(), 3);
        assert!(obs.is_empty());
    }

    #[test]
    fn full_scan_counted() {
        let obs = AccessObserver::new();
        obs.record(AccessEvent::FullScan {
            epoch_id: 1,
            rows: 1000,
            bytes: 50_000,
        });
        let s = obs.summary();
        assert_eq!(s.full_scans, 1);
        assert_eq!(s.scanned_rows, 1000);
        assert_eq!(s.bytes_fetched, 50_000);
    }

    #[test]
    fn trailing_segment_without_boundary_is_included() {
        let obs = AccessObserver::new();
        obs.record(fetched(1, 1));
        obs.mark_query_boundary();
        obs.record(fetched(1, 2));
        // no trailing boundary
        assert_eq!(obs.per_query_summaries().len(), 2);
        assert_eq!(obs.per_query_fetch_sets().len(), 2);
    }
}
