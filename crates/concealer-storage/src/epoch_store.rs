//! The service provider's database: one encrypted table segment per
//! epoch/round, plus the encrypted metadata the data provider ships with it.
//!
//! Phase 1 of the paper has DP send, per epoch: the permuted encrypted
//! tuples, the encrypted `cell_id[]` and `c_tuple[]` vectors, and the
//! encrypted hash-chain tags. The store keeps all of that, lets the enclave
//! fetch rows by trapdoor (recording every access in the
//! [`AccessObserver`]), and supports atomically replacing an epoch's rows
//! when the §6 dynamic-insertion protocol re-encrypts them.

use crate::observer::{AccessEvent, AccessObserver};
use crate::table::{EncryptedRow, EncryptedTable};
use crate::{Result, StorageError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Opaque encrypted metadata shipped with an epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochMetadata {
    /// Encrypted `cell_id[x*y]` vector (non-deterministic encryption).
    pub enc_cell_id: Vec<u8>,
    /// Encrypted `c_tuple[u]` vector (non-deterministic encryption).
    pub enc_c_tuple: Vec<u8>,
    /// Encrypted per-cell-id verifiable tags (hash-chain heads), in cell-id
    /// order. Empty when DP skipped the optional verification step.
    pub enc_tags: Vec<Vec<u8>>,
    /// Number of rows DP claims to have shipped (real + fake). Public.
    pub advertised_rows: usize,
}

/// One stored epoch: the table segment and its metadata.
#[derive(Debug, Clone)]
pub struct StoredEpoch {
    /// Encrypted tuples with the B+Tree index over the `Index` column.
    pub table: EncryptedTable,
    /// Encrypted metadata vectors and tags.
    pub metadata: EpochMetadata,
    /// How many times this epoch has been rewritten by the dynamic-insertion
    /// protocol (the adversary can count rewrites; the paper accepts this).
    pub rewrite_count: u64,
}

/// Number of independently locked epoch shards. Epochs hash to a fixed
/// shard, so queries touching different epochs never contend on one lock
/// and parallel batch fetches scale with the shard count rather than
/// serializing on a single store-wide `RwLock`.
const EPOCH_SHARDS: usize = 16;

/// The epoch map, split into [`EPOCH_SHARDS`] independently locked shards.
#[derive(Debug)]
struct ShardedEpochs {
    shards: Vec<RwLock<BTreeMap<u64, StoredEpoch>>>,
}

impl Default for ShardedEpochs {
    fn default() -> Self {
        ShardedEpochs {
            shards: (0..EPOCH_SHARDS).map(|_| RwLock::default()).collect(),
        }
    }
}

impl ShardedEpochs {
    /// The shard owning `epoch_id`. Epoch ids are epoch *start times*
    /// (multiples of the epoch duration), so they are mixed before
    /// reduction — a plain modulo would park every epoch of a deployment
    /// whose duration is divisible by the shard count on one shard.
    fn shard(&self, epoch_id: u64) -> &RwLock<BTreeMap<u64, StoredEpoch>> {
        let mixed = epoch_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }
}

/// The untrusted service provider's storage engine.
///
/// Cloning shares the underlying store (it is an `Arc`): the data provider
/// handle, the enclave handle and the test harness all talk to one store.
///
/// Internally the epoch map is split into [`EpochStore::shard_count`]
/// independently locked shards keyed by epoch id, so concurrent fetches against different
/// epochs — and concurrent ingest of new epochs — do not serialize on one
/// store-wide lock.
#[derive(Debug, Clone, Default)]
pub struct EpochStore {
    inner: Arc<ShardedEpochs>,
    observer: AccessObserver,
}

impl EpochStore {
    /// Create an empty store with a fresh observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store that reports accesses to an existing observer.
    #[must_use]
    pub fn with_observer(observer: AccessObserver) -> Self {
        EpochStore {
            inner: Arc::default(),
            observer,
        }
    }

    /// A handle on the *same* stored data that reports accesses to a
    /// different observer. The parallel batch path hands each worker task a
    /// handle bound to a task-local observer, then merges the task traces
    /// into the shared observer in deterministic (bin) order — see
    /// [`AccessObserver::record_batch`].
    #[must_use]
    pub fn observed_by(&self, observer: AccessObserver) -> EpochStore {
        EpochStore {
            inner: Arc::clone(&self.inner),
            observer,
        }
    }

    /// The adversary's view of this store.
    #[must_use]
    pub fn observer(&self) -> &AccessObserver {
        &self.observer
    }

    /// Number of independently locked epoch shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Ingest a new epoch shipment. Replaces any previous segment for the
    /// same epoch id (the paper never re-ships an epoch, but tests do).
    pub fn ingest_epoch(
        &self,
        epoch_id: u64,
        rows: Vec<EncryptedRow>,
        metadata: EpochMetadata,
    ) -> Result<()> {
        let bytes: usize = rows.iter().map(EncryptedRow::byte_size).sum();
        let row_count = rows.len();
        let table = EncryptedTable::bulk_load(rows)?;
        self.observer.record(AccessEvent::EpochIngested {
            epoch_id,
            rows: row_count,
            bytes,
        });
        self.inner.shard(epoch_id).write().insert(
            epoch_id,
            StoredEpoch {
                table,
                metadata,
                rewrite_count: 0,
            },
        );
        Ok(())
    }

    /// Epoch ids currently stored, ascending.
    #[must_use]
    pub fn epoch_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .shards
            .iter()
            .flat_map(|shard| shard.read().keys().copied().collect::<Vec<u64>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of epochs stored.
    #[must_use]
    pub fn epoch_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|shard| shard.read().len())
            .sum()
    }

    /// Total rows across all epochs (real + fake; indistinguishable here).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|shard| shard.read().values().map(|e| e.table.len()).sum::<usize>())
            .sum()
    }

    /// Fetch the encrypted metadata for an epoch (the enclave decrypts it).
    pub fn metadata(&self, epoch_id: u64) -> Result<EpochMetadata> {
        self.inner
            .shard(epoch_id)
            .read()
            .get(&epoch_id)
            .map(|e| e.metadata.clone())
            .ok_or(StorageError::UnknownEpoch { epoch_id })
    }

    /// Number of rows in one epoch segment.
    pub fn epoch_rows(&self, epoch_id: u64) -> Result<usize> {
        self.inner
            .shard(epoch_id)
            .read()
            .get(&epoch_id)
            .map(|e| e.table.len())
            .ok_or(StorageError::UnknownEpoch { epoch_id })
    }

    /// Execute one exact-match trapdoor against an epoch's index, recording
    /// what the adversary observes. Returns the matching row, if any.
    pub fn fetch_by_trapdoor(
        &self,
        epoch_id: u64,
        trapdoor: &[u8],
    ) -> Result<Option<EncryptedRow>> {
        let guard = self.inner.shard(epoch_id).read();
        let epoch = guard
            .get(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        let hit = epoch.table.lookup(trapdoor);
        self.observer.record(AccessEvent::TrapdoorIssued {
            epoch_id,
            trapdoor_len: trapdoor.len(),
            hit: hit.is_some(),
        });
        if let Some((row_id, row)) = hit {
            self.observer.record(AccessEvent::RowFetched {
                epoch_id,
                row_id,
                bytes: row.byte_size(),
            });
            Ok(Some(row.clone()))
        } else {
            Ok(None)
        }
    }

    /// Execute a batch of trapdoors (one bin fetch). Rows are returned in
    /// trapdoor order; misses are silently skipped, as a DBMS `IN (...)`
    /// predicate would.
    pub fn fetch_batch(&self, epoch_id: u64, trapdoors: &[Vec<u8>]) -> Result<Vec<EncryptedRow>> {
        let mut out = Vec::with_capacity(trapdoors.len());
        for t in trapdoors {
            if let Some(row) = self.fetch_by_trapdoor(epoch_id, t)? {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Read an entire epoch segment (full scan), as the Opaque-style
    /// baseline must.
    pub fn full_scan(&self, epoch_id: u64) -> Result<Vec<EncryptedRow>> {
        let guard = self.inner.shard(epoch_id).read();
        let epoch = guard
            .get(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        let rows: Vec<EncryptedRow> = epoch.table.scan().map(|(_, r)| r.clone()).collect();
        self.observer.record(AccessEvent::FullScan {
            epoch_id,
            rows: rows.len(),
            bytes: rows.iter().map(EncryptedRow::byte_size).sum(),
        });
        Ok(rows)
    }

    /// Mark a query boundary on the shared observer.
    pub fn mark_query_boundary(&self) {
        self.observer.mark_query_boundary();
    }

    /// Replace an epoch's rows after the enclave re-encrypted them (§6).
    ///
    /// The replacement must contain the same number of rows — the dynamic
    /// insertion protocol rewrites bins in place and must not change the
    /// observable cardinality.
    pub fn replace_epoch_rows(
        &self,
        epoch_id: u64,
        rows: Vec<EncryptedRow>,
        metadata: Option<EpochMetadata>,
    ) -> Result<()> {
        let mut guard = self.inner.shard(epoch_id).write();
        let epoch = guard
            .get_mut(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        if rows.len() != epoch.table.len() {
            return Err(StorageError::CardinalityMismatch {
                expected: epoch.table.len(),
                got: rows.len(),
            });
        }
        let row_count = rows.len();
        epoch.table = EncryptedTable::bulk_load(rows)?;
        if let Some(m) = metadata {
            epoch.metadata = m;
        }
        epoch.rewrite_count += 1;
        self.observer.record(AccessEvent::EpochRewritten {
            epoch_id,
            rows: row_count,
        });
        Ok(())
    }

    /// Replace a *subset* of an epoch's rows in place, keyed by their old
    /// `Index` values. Used by the dynamic-insertion protocol (§6 of the
    /// paper): the enclave re-encrypts exactly the rows it fetched and the
    /// service provider swaps them in, leaving the rest of the segment
    /// untouched. The segment's cardinality never changes.
    pub fn rewrite_rows(
        &self,
        epoch_id: u64,
        replacements: Vec<(Vec<u8>, EncryptedRow)>,
    ) -> Result<()> {
        if replacements.is_empty() {
            return Ok(());
        }
        let mut guard = self.inner.shard(epoch_id).write();
        let epoch = guard
            .get_mut(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;

        let mut rows: Vec<EncryptedRow> = epoch.table.scan().map(|(_, r)| r.clone()).collect();
        let mut by_old_key: std::collections::HashMap<Vec<u8>, EncryptedRow> =
            replacements.into_iter().collect();
        let replaced_total = by_old_key.len();
        let mut replaced = 0usize;
        for row in &mut rows {
            if let Some(new_row) = by_old_key.remove(&row.index_key) {
                *row = new_row;
                replaced += 1;
            }
        }
        if replaced != replaced_total {
            return Err(StorageError::CardinalityMismatch {
                expected: replaced_total,
                got: replaced,
            });
        }
        let row_count = rows.len();
        epoch.table = EncryptedTable::bulk_load(rows)?;
        epoch.rewrite_count += 1;
        self.observer.record(AccessEvent::EpochRewritten {
            epoch_id,
            rows: row_count,
        });
        Ok(())
    }

    /// Update a subset of an epoch's verifiable tags (the enclave refreshes
    /// them after re-encrypting rows).
    pub fn update_tags(&self, epoch_id: u64, updates: Vec<(usize, Vec<u8>)>) -> Result<()> {
        let mut guard = self.inner.shard(epoch_id).write();
        let epoch = guard
            .get_mut(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        for (cell_id, tag) in updates {
            if let Some(slot) = epoch.metadata.enc_tags.get_mut(cell_id) {
                *slot = tag;
            }
        }
        Ok(())
    }

    /// How many times an epoch has been rewritten.
    pub fn rewrite_count(&self, epoch_id: u64) -> Result<u64> {
        self.inner
            .shard(epoch_id)
            .read()
            .get(&epoch_id)
            .map(|e| e.rewrite_count)
            .ok_or(StorageError::UnknownEpoch { epoch_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(key: &[u8], tag: u8) -> EncryptedRow {
        EncryptedRow {
            index_key: key.to_vec(),
            filters: vec![vec![tag; 16]],
            payload: vec![tag; 48],
        }
    }

    fn sample_epoch(n: u64, salt: u8) -> Vec<EncryptedRow> {
        (0..n)
            .map(|i| row(&[salt, (i >> 8) as u8, i as u8], (i % 251) as u8))
            .collect()
    }

    #[test]
    fn ingest_and_fetch() {
        let store = EpochStore::new();
        store
            .ingest_epoch(1, sample_epoch(100, 1), EpochMetadata::default())
            .unwrap();
        assert_eq!(store.epoch_count(), 1);
        assert_eq!(store.total_rows(), 100);

        let hit = store.fetch_by_trapdoor(1, &[1, 0, 5]).unwrap();
        assert!(hit.is_some());
        let miss = store.fetch_by_trapdoor(1, &[9, 9, 9]).unwrap();
        assert!(miss.is_none());

        let s = store.observer().summary();
        assert_eq!(s.trapdoors, 2);
        assert_eq!(s.rows_fetched, 1);
    }

    #[test]
    fn unknown_epoch_errors() {
        let store = EpochStore::new();
        assert!(matches!(
            store.fetch_by_trapdoor(7, b"x"),
            Err(StorageError::UnknownEpoch { epoch_id: 7 })
        ));
        assert!(store.metadata(7).is_err());
        assert!(store.full_scan(7).is_err());
        assert!(store.rewrite_count(7).is_err());
        assert!(store.epoch_rows(7).is_err());
    }

    #[test]
    fn fetch_batch_skips_misses() {
        let store = EpochStore::new();
        store
            .ingest_epoch(1, sample_epoch(10, 1), EpochMetadata::default())
            .unwrap();
        let trapdoors = vec![vec![1, 0, 2], vec![8, 8, 8], vec![1, 0, 3]];
        let rows = store.fetch_batch(1, &trapdoors).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn full_scan_reads_everything() {
        let store = EpochStore::new();
        store
            .ingest_epoch(2, sample_epoch(64, 2), EpochMetadata::default())
            .unwrap();
        let rows = store.full_scan(2).unwrap();
        assert_eq!(rows.len(), 64);
        assert_eq!(store.observer().summary().scanned_rows, 64);
    }

    #[test]
    fn replace_epoch_enforces_cardinality() {
        let store = EpochStore::new();
        store
            .ingest_epoch(3, sample_epoch(20, 3), EpochMetadata::default())
            .unwrap();
        let err = store.replace_epoch_rows(3, sample_epoch(19, 4), None);
        assert!(matches!(
            err,
            Err(StorageError::CardinalityMismatch {
                expected: 20,
                got: 19
            })
        ));

        store
            .replace_epoch_rows(3, sample_epoch(20, 4), None)
            .unwrap();
        assert_eq!(store.rewrite_count(3).unwrap(), 1);
        // New rows are findable, old rows are gone.
        assert!(store.fetch_by_trapdoor(3, &[4, 0, 1]).unwrap().is_some());
        assert!(store.fetch_by_trapdoor(3, &[3, 0, 1]).unwrap().is_none());
    }

    #[test]
    fn metadata_roundtrip() {
        let store = EpochStore::new();
        let meta = EpochMetadata {
            enc_cell_id: vec![1, 2, 3],
            enc_c_tuple: vec![4, 5],
            enc_tags: vec![vec![6], vec![7]],
            advertised_rows: 12,
        };
        store
            .ingest_epoch(9, sample_epoch(12, 9), meta.clone())
            .unwrap();
        assert_eq!(store.metadata(9).unwrap(), meta);
        assert_eq!(store.epoch_rows(9).unwrap(), 12);
        assert_eq!(store.epoch_ids(), vec![9]);
    }

    #[test]
    fn rewrite_rows_swaps_in_place() {
        let store = EpochStore::new();
        store
            .ingest_epoch(5, sample_epoch(30, 5), EpochMetadata::default())
            .unwrap();
        // Replace two rows, keeping the same index keys for one and changing
        // the other's key.
        let replacements = vec![
            (vec![5, 0, 3], row(&[5, 0, 3], 0xAA)),
            (vec![5, 0, 7], row(&[9, 9, 9], 0xBB)),
        ];
        store.rewrite_rows(5, replacements).unwrap();
        assert_eq!(store.epoch_rows(5).unwrap(), 30, "cardinality unchanged");
        let r = store.fetch_by_trapdoor(5, &[5, 0, 3]).unwrap().unwrap();
        assert_eq!(r.payload, vec![0xAA; 48]);
        assert!(store.fetch_by_trapdoor(5, &[5, 0, 7]).unwrap().is_none());
        assert!(store.fetch_by_trapdoor(5, &[9, 9, 9]).unwrap().is_some());
        assert_eq!(store.rewrite_count(5).unwrap(), 1);
    }

    #[test]
    fn rewrite_rows_with_unknown_old_key_fails() {
        let store = EpochStore::new();
        store
            .ingest_epoch(6, sample_epoch(10, 6), EpochMetadata::default())
            .unwrap();
        let err = store.rewrite_rows(6, vec![(vec![1, 2, 3], row(&[1, 2, 3], 1))]);
        assert!(err.is_err());
        // Empty replacement list is a no-op.
        store.rewrite_rows(6, vec![]).unwrap();
        assert_eq!(store.rewrite_count(6).unwrap(), 0);
    }

    #[test]
    fn update_tags_in_place() {
        let store = EpochStore::new();
        let meta = EpochMetadata {
            enc_tags: vec![vec![1], vec![2], vec![3]],
            ..Default::default()
        };
        store.ingest_epoch(7, sample_epoch(3, 7), meta).unwrap();
        store
            .update_tags(7, vec![(1, vec![9, 9]), (5, vec![0])])
            .unwrap();
        let m = store.metadata(7).unwrap();
        assert_eq!(m.enc_tags, vec![vec![1], vec![9, 9], vec![3]]);
        assert!(store.update_tags(99, vec![]).is_err());
    }

    #[test]
    fn multiple_epochs_isolated() {
        let store = EpochStore::new();
        store
            .ingest_epoch(1, sample_epoch(10, 1), EpochMetadata::default())
            .unwrap();
        store
            .ingest_epoch(2, sample_epoch(10, 2), EpochMetadata::default())
            .unwrap();
        // A key from epoch 1 is not findable in epoch 2.
        assert!(store.fetch_by_trapdoor(2, &[1, 0, 1]).unwrap().is_none());
        assert!(store.fetch_by_trapdoor(1, &[1, 0, 1]).unwrap().is_some());
        assert_eq!(store.epoch_ids(), vec![1, 2]);
    }
}
