//! The service provider's database: one encrypted table segment per
//! epoch/round, plus the encrypted metadata the data provider ships with it.
//!
//! Phase 1 of the paper has DP send, per epoch: the permuted encrypted
//! tuples, the encrypted `cell_id[]` and `c_tuple[]` vectors, and the
//! encrypted hash-chain tags. The store keeps all of that, lets the enclave
//! fetch rows by trapdoor (recording every access in the
//! [`AccessObserver`]), and supports atomically replacing an epoch's rows
//! when the §6 dynamic-insertion protocol re-encrypts them.
//!
//! Where the sealed segments live is pluggable: [`EpochStore`] drives a
//! [`StorageBackend`] — the in-memory [`crate::MemoryBackend`] by default,
//! or the crash-safe [`crate::DiskEpochStore`] for deployments that must
//! survive a restart. The query path, observer instrumentation and every
//! invariant the security tests assert are backend-agnostic: answers and
//! adversary-observable traces are identical across backends.

use crate::backend::{MemoryBackend, StorageBackend};
use crate::observer::{AccessEvent, AccessObserver};
use crate::table::{EncryptedRow, EncryptedTable};
use crate::{Result, StorageError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Opaque encrypted metadata shipped with an epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochMetadata {
    /// Encrypted `cell_id[x*y]` vector (non-deterministic encryption).
    pub enc_cell_id: Vec<u8>,
    /// Encrypted `c_tuple[u]` vector (non-deterministic encryption).
    pub enc_c_tuple: Vec<u8>,
    /// Encrypted per-cell-id verifiable tags (hash-chain heads), in cell-id
    /// order. Empty when DP skipped the optional verification step.
    pub enc_tags: Vec<Vec<u8>>,
    /// Number of rows DP claims to have shipped (real + fake). Public.
    pub advertised_rows: usize,
}

/// One stored epoch: the table segment and its metadata.
#[derive(Debug, Clone)]
pub struct StoredEpoch {
    /// Encrypted tuples with the B+Tree index over the `Index` column.
    pub table: EncryptedTable,
    /// Encrypted metadata vectors and tags.
    pub metadata: EpochMetadata,
    /// How many times this epoch has been rewritten by the dynamic-insertion
    /// protocol (the adversary can count rewrites; the paper accepts this).
    pub rewrite_count: u64,
}

/// The untrusted service provider's storage engine.
///
/// Cloning shares the underlying backend (it is an `Arc`): the data
/// provider handle, the enclave handle and the test harness all talk to one
/// store.
///
/// Epoch segments are held by a pluggable [`StorageBackend`]; the default
/// is the in-memory [`MemoryBackend`], whose epoch map is split into
/// [`EpochStore::shard_count`] independently locked shards keyed by epoch
/// id, so concurrent fetches against different epochs — and concurrent
/// ingest of new epochs — do not serialize on one store-wide lock. The
/// on-disk backend keeps the same shard discipline over its resident cache.
#[derive(Debug, Clone)]
pub struct EpochStore {
    backend: Arc<dyn StorageBackend>,
    observer: AccessObserver,
}

impl Default for EpochStore {
    fn default() -> Self {
        EpochStore {
            backend: Arc::new(MemoryBackend::new()),
            observer: AccessObserver::default(),
        }
    }
}

impl EpochStore {
    /// Create an empty in-memory store with a fresh observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an in-memory store that reports accesses to an existing
    /// observer.
    #[must_use]
    pub fn with_observer(observer: AccessObserver) -> Self {
        EpochStore {
            backend: Arc::new(MemoryBackend::new()),
            observer,
        }
    }

    /// Create a store over an explicit [`StorageBackend`] (e.g. a
    /// [`crate::DiskEpochStore`]) with a fresh observer. Epochs already
    /// committed in the backend — a reopened on-disk store — are
    /// immediately visible.
    #[must_use]
    pub fn with_backend(backend: Arc<dyn StorageBackend>) -> Self {
        EpochStore {
            backend,
            observer: AccessObserver::default(),
        }
    }

    /// A handle on the *same* stored data that reports accesses to a
    /// different observer. The parallel batch path hands each worker task a
    /// handle bound to a task-local observer, then merges the task traces
    /// into the shared observer in deterministic (bin) order — see
    /// [`AccessObserver::record_batch`].
    #[must_use]
    pub fn observed_by(&self, observer: AccessObserver) -> EpochStore {
        EpochStore {
            backend: Arc::clone(&self.backend),
            observer,
        }
    }

    /// The adversary's view of this store.
    #[must_use]
    pub fn observer(&self) -> &AccessObserver {
        &self.observer
    }

    /// The backend holding the sealed segments.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The backend's short identifier (`"memory"`, `"disk"`, …).
    #[must_use]
    pub fn backend_kind(&self) -> &'static str {
        self.backend.kind()
    }

    /// Number of independently locked epoch shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.backend.shard_count()
    }

    /// Whether the backend was opened as a read-only replica (see
    /// [`StorageBackend::read_only`]).
    #[must_use]
    pub fn read_only(&self) -> bool {
        self.backend.read_only()
    }

    /// Pull in epochs committed to shared durable state by another process
    /// since the last look; returns the newly visible epoch ids (see
    /// [`StorageBackend::refresh`]).
    pub fn refresh(&self) -> Result<Vec<u64>> {
        self.backend.refresh()
    }

    /// Promote a read-only replica backend to writer (see
    /// [`StorageBackend::promote`]).
    pub fn promote(&self) -> Result<()> {
        self.backend.promote()
    }

    /// The backend's monotonic durable commit-point version (see
    /// [`StorageBackend::store_generation`]).
    #[must_use]
    pub fn store_generation(&self) -> u64 {
        self.backend.store_generation()
    }

    /// Ingest a new epoch shipment. Replaces any previous segment for the
    /// same epoch id (the paper never re-ships an epoch, but tests do).
    pub fn ingest_epoch(
        &self,
        epoch_id: u64,
        rows: Vec<EncryptedRow>,
        metadata: EpochMetadata,
    ) -> Result<()> {
        let bytes: usize = rows.iter().map(EncryptedRow::byte_size).sum();
        let row_count = rows.len();
        let table = EncryptedTable::bulk_load(rows)?;
        self.observer.record(AccessEvent::EpochIngested {
            epoch_id,
            rows: row_count,
            bytes,
        });
        self.backend.put_epoch(
            epoch_id,
            StoredEpoch {
                table,
                metadata,
                rewrite_count: 0,
            },
        )
    }

    /// Epoch ids currently stored, ascending.
    #[must_use]
    pub fn epoch_ids(&self) -> Vec<u64> {
        self.backend.epoch_ids()
    }

    /// Number of epochs stored.
    #[must_use]
    pub fn epoch_count(&self) -> usize {
        self.backend.epoch_count()
    }

    /// Total rows across all epochs (real + fake; indistinguishable here).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.backend.total_rows()
    }

    /// Fetch the encrypted metadata for an epoch (the enclave decrypts it).
    pub fn metadata(&self, epoch_id: u64) -> Result<EpochMetadata> {
        let mut out = None;
        self.backend
            .with_epoch(epoch_id, &mut |e| out = Some(e.metadata.clone()))?;
        Ok(out.expect("with_epoch ran the closure"))
    }

    /// Number of rows in one epoch segment.
    pub fn epoch_rows(&self, epoch_id: u64) -> Result<usize> {
        let mut out = 0;
        self.backend
            .with_epoch(epoch_id, &mut |e| out = e.table.len())?;
        Ok(out)
    }

    /// Execute one exact-match trapdoor against an epoch's index, recording
    /// what the adversary observes. Returns the matching row, if any.
    pub fn fetch_by_trapdoor(
        &self,
        epoch_id: u64,
        trapdoor: &[u8],
    ) -> Result<Option<EncryptedRow>> {
        let mut out = None;
        self.backend.with_epoch(epoch_id, &mut |epoch| {
            let hit = epoch.table.lookup(trapdoor);
            self.observer.record(AccessEvent::TrapdoorIssued {
                epoch_id,
                trapdoor_len: trapdoor.len(),
                hit: hit.is_some(),
            });
            if let Some((row_id, row)) = hit {
                self.observer.record(AccessEvent::RowFetched {
                    epoch_id,
                    row_id,
                    bytes: row.byte_size(),
                });
                out = Some(row.clone());
            }
        })?;
        Ok(out)
    }

    /// Execute a batch of trapdoors (one bin fetch). Rows are returned in
    /// trapdoor order; misses are silently skipped, as a DBMS `IN (...)`
    /// predicate would.
    ///
    /// The whole batch runs under a single backend access and its events
    /// are appended to the observer in one [`AccessObserver::record_batch`]
    /// call — per trapdoor this is the same event sequence
    /// [`Self::fetch_by_trapdoor`] records (`TrapdoorIssued`, then
    /// `RowFetched` on a hit), just without re-locking per row.
    pub fn fetch_batch(&self, epoch_id: u64, trapdoors: &[Vec<u8>]) -> Result<Vec<EncryptedRow>> {
        let mut out = Vec::with_capacity(trapdoors.len());
        let mut events = Vec::with_capacity(trapdoors.len() * 2);
        self.backend.with_epoch(epoch_id, &mut |epoch| {
            for t in trapdoors {
                let hit = epoch.table.lookup(t);
                events.push(AccessEvent::TrapdoorIssued {
                    epoch_id,
                    trapdoor_len: t.len(),
                    hit: hit.is_some(),
                });
                if let Some((row_id, row)) = hit {
                    events.push(AccessEvent::RowFetched {
                        epoch_id,
                        row_id,
                        bytes: row.byte_size(),
                    });
                    out.push(row.clone());
                }
            }
        })?;
        self.observer.record_batch(events);
        Ok(out)
    }

    /// Re-execute a batch of trapdoors and compare the hits against
    /// `expected` **without cloning any row**. The adversary-observable
    /// events are exactly those of [`Self::fetch_batch`] with the same
    /// trapdoors; only the enclave-side copy is skipped. Returns `true`
    /// when the fetched rows equal `expected` exactly (same rows, same
    /// order, same count).
    ///
    /// This is the warm half of the engine's decrypted-bin cache: a cache
    /// hit still drives the full fetch through the untrusted store — so the
    /// trace cannot reveal the cache — and only reuses the enclave-side
    /// plaintext when the provider returned bit-identical rows.
    pub fn fetch_batch_matches(
        &self,
        epoch_id: u64,
        trapdoors: &[Vec<u8>],
        expected: &[EncryptedRow],
    ) -> Result<bool> {
        let mut events = Vec::with_capacity(trapdoors.len() * 2);
        let mut matched = 0usize;
        let mut same = true;
        self.backend.with_epoch(epoch_id, &mut |epoch| {
            for t in trapdoors {
                let hit = epoch.table.lookup(t);
                events.push(AccessEvent::TrapdoorIssued {
                    epoch_id,
                    trapdoor_len: t.len(),
                    hit: hit.is_some(),
                });
                if let Some((row_id, row)) = hit {
                    events.push(AccessEvent::RowFetched {
                        epoch_id,
                        row_id,
                        bytes: row.byte_size(),
                    });
                    same = same && expected.get(matched) == Some(row);
                    matched += 1;
                }
            }
        })?;
        self.observer.record_batch(events);
        Ok(same && matched == expected.len())
    }

    /// Read an entire epoch segment (full scan), as the Opaque-style
    /// baseline must.
    pub fn full_scan(&self, epoch_id: u64) -> Result<Vec<EncryptedRow>> {
        let mut rows: Vec<EncryptedRow> = Vec::new();
        self.backend.with_epoch(epoch_id, &mut |epoch| {
            rows = epoch.table.scan().map(|(_, r)| r.clone()).collect();
        })?;
        self.observer.record(AccessEvent::FullScan {
            epoch_id,
            rows: rows.len(),
            bytes: rows.iter().map(EncryptedRow::byte_size).sum(),
        });
        Ok(rows)
    }

    /// Mark a query boundary on the shared observer.
    pub fn mark_query_boundary(&self) {
        self.observer.mark_query_boundary();
    }

    /// Replace an epoch's rows after the enclave re-encrypted them (§6).
    ///
    /// The replacement must contain the same number of rows — the dynamic
    /// insertion protocol rewrites bins in place and must not change the
    /// observable cardinality.
    pub fn replace_epoch_rows(
        &self,
        epoch_id: u64,
        rows: Vec<EncryptedRow>,
        metadata: Option<EpochMetadata>,
    ) -> Result<()> {
        let mut rows = Some(rows);
        let mut metadata = metadata;
        let mut row_count = 0;
        self.backend.update_epoch(epoch_id, &mut |epoch| {
            let rows = rows.take().expect("update closure runs once");
            if rows.len() != epoch.table.len() {
                return Err(StorageError::CardinalityMismatch {
                    expected: epoch.table.len(),
                    got: rows.len(),
                });
            }
            row_count = rows.len();
            epoch.table = EncryptedTable::bulk_load(rows)?;
            if let Some(m) = metadata.take() {
                epoch.metadata = m;
            }
            epoch.rewrite_count += 1;
            Ok(())
        })?;
        self.observer.record(AccessEvent::EpochRewritten {
            epoch_id,
            rows: row_count,
        });
        Ok(())
    }

    /// Replace a *subset* of an epoch's rows in place, keyed by their old
    /// `Index` values. Used by the dynamic-insertion protocol (§6 of the
    /// paper): the enclave re-encrypts exactly the rows it fetched and the
    /// service provider swaps them in, leaving the rest of the segment
    /// untouched. The segment's cardinality never changes.
    pub fn rewrite_rows(
        &self,
        epoch_id: u64,
        replacements: Vec<(Vec<u8>, EncryptedRow)>,
    ) -> Result<()> {
        self.rewrite_bin(epoch_id, replacements, Vec::new())
    }

    /// Apply a full §6 bin rewrite atomically: swap re-encrypted rows in
    /// place (keyed by old `Index` values, as [`EpochStore::rewrite_rows`])
    /// *and* refresh the affected verifiable tags in one backend commit —
    /// on the durable backend this persists a single new segment generation
    /// instead of one per call. The rewrite counter advances (and the
    /// rewrite is observable) only when rows were actually replaced.
    pub fn rewrite_bin(
        &self,
        epoch_id: u64,
        replacements: Vec<(Vec<u8>, EncryptedRow)>,
        tag_updates: Vec<(usize, Vec<u8>)>,
    ) -> Result<()> {
        if replacements.is_empty() && tag_updates.is_empty() {
            return Ok(());
        }
        let rows_replaced = !replacements.is_empty();
        let mut replacements = Some(replacements);
        let mut tag_updates = Some(tag_updates);
        let mut row_count = 0;
        self.backend.update_epoch(epoch_id, &mut |epoch| {
            let replacements = replacements.take().expect("update closure runs once");
            if !replacements.is_empty() {
                let mut rows: Vec<EncryptedRow> =
                    epoch.table.scan().map(|(_, r)| r.clone()).collect();
                let mut by_old_key: std::collections::HashMap<Vec<u8>, EncryptedRow> =
                    replacements.into_iter().collect();
                let replaced_total = by_old_key.len();
                let mut replaced = 0usize;
                for row in &mut rows {
                    if let Some(new_row) = by_old_key.remove(&row.index_key) {
                        *row = new_row;
                        replaced += 1;
                    }
                }
                if replaced != replaced_total {
                    return Err(StorageError::CardinalityMismatch {
                        expected: replaced_total,
                        got: replaced,
                    });
                }
                row_count = rows.len();
                epoch.table = EncryptedTable::bulk_load(rows)?;
                epoch.rewrite_count += 1;
            }
            for (cell_id, tag) in tag_updates.take().expect("update closure runs once") {
                if let Some(slot) = epoch.metadata.enc_tags.get_mut(cell_id) {
                    *slot = tag;
                }
            }
            Ok(())
        })?;
        if rows_replaced {
            self.observer.record(AccessEvent::EpochRewritten {
                epoch_id,
                rows: row_count,
            });
        }
        Ok(())
    }

    /// Update a subset of an epoch's verifiable tags (the enclave refreshes
    /// them after re-encrypting rows).
    pub fn update_tags(&self, epoch_id: u64, updates: Vec<(usize, Vec<u8>)>) -> Result<()> {
        let mut updates = Some(updates);
        self.backend.update_epoch(epoch_id, &mut |epoch| {
            let updates = updates.take().expect("update closure runs once");
            for (cell_id, tag) in updates {
                if let Some(slot) = epoch.metadata.enc_tags.get_mut(cell_id) {
                    *slot = tag;
                }
            }
            Ok(())
        })
    }

    /// How many times an epoch has been rewritten.
    pub fn rewrite_count(&self, epoch_id: u64) -> Result<u64> {
        let mut out = 0;
        self.backend
            .with_epoch(epoch_id, &mut |e| out = e.rewrite_count)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(key: &[u8], tag: u8) -> EncryptedRow {
        EncryptedRow {
            index_key: key.to_vec(),
            filters: vec![vec![tag; 16]],
            payload: vec![tag; 48],
        }
    }

    fn sample_epoch(n: u64, salt: u8) -> Vec<EncryptedRow> {
        (0..n)
            .map(|i| row(&[salt, (i >> 8) as u8, i as u8], (i % 251) as u8))
            .collect()
    }

    #[test]
    fn ingest_and_fetch() {
        let store = EpochStore::new();
        assert_eq!(store.backend_kind(), "memory");
        store
            .ingest_epoch(1, sample_epoch(100, 1), EpochMetadata::default())
            .unwrap();
        assert_eq!(store.epoch_count(), 1);
        assert_eq!(store.total_rows(), 100);

        let hit = store.fetch_by_trapdoor(1, &[1, 0, 5]).unwrap();
        assert!(hit.is_some());
        let miss = store.fetch_by_trapdoor(1, &[9, 9, 9]).unwrap();
        assert!(miss.is_none());

        let s = store.observer().summary();
        assert_eq!(s.trapdoors, 2);
        assert_eq!(s.rows_fetched, 1);
    }

    #[test]
    fn unknown_epoch_errors() {
        let store = EpochStore::new();
        assert!(matches!(
            store.fetch_by_trapdoor(7, b"x"),
            Err(StorageError::UnknownEpoch { epoch_id: 7 })
        ));
        assert!(store.metadata(7).is_err());
        assert!(store.full_scan(7).is_err());
        assert!(store.rewrite_count(7).is_err());
        assert!(store.epoch_rows(7).is_err());
    }

    #[test]
    fn fetch_batch_skips_misses() {
        let store = EpochStore::new();
        store
            .ingest_epoch(1, sample_epoch(10, 1), EpochMetadata::default())
            .unwrap();
        let trapdoors = vec![vec![1, 0, 2], vec![8, 8, 8], vec![1, 0, 3]];
        let rows = store.fetch_batch(1, &trapdoors).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn fetch_batch_events_equal_per_trapdoor_fetches() {
        let trapdoors = vec![vec![1, 0, 2], vec![8, 8, 8], vec![1, 0, 3]];

        let per_row = EpochStore::new();
        per_row
            .ingest_epoch(1, sample_epoch(10, 1), EpochMetadata::default())
            .unwrap();
        per_row.observer().reset();
        for t in &trapdoors {
            let _ = per_row.fetch_by_trapdoor(1, t).unwrap();
        }

        let batched = EpochStore::new();
        batched
            .ingest_epoch(1, sample_epoch(10, 1), EpochMetadata::default())
            .unwrap();
        batched.observer().reset();
        batched.fetch_batch(1, &trapdoors).unwrap();

        assert_eq!(batched.observer().trace(), per_row.observer().trace());
    }

    #[test]
    fn fetch_batch_matches_replays_the_exact_fetch_trace() {
        let store = EpochStore::new();
        store
            .ingest_epoch(1, sample_epoch(10, 1), EpochMetadata::default())
            .unwrap();
        let trapdoors = vec![vec![1, 0, 2], vec![8, 8, 8], vec![1, 0, 3]];
        store.observer().reset();
        let rows = store.fetch_batch(1, &trapdoors).unwrap();
        let cold_trace = store.observer().take_events();

        assert!(store.fetch_batch_matches(1, &trapdoors, &rows).unwrap());
        assert_eq!(
            store.observer().take_events(),
            cold_trace,
            "warm replay must be event-for-event identical to the cold fetch"
        );

        // Any divergence between stored rows and the expectation is flagged.
        let mut tampered = rows.clone();
        tampered[0].payload[0] ^= 1;
        assert!(!store.fetch_batch_matches(1, &trapdoors, &tampered).unwrap());
        assert!(!store
            .fetch_batch_matches(1, &trapdoors, &rows[..1])
            .unwrap());
        let mut extra = rows.clone();
        extra.push(row(&[9, 9, 9], 9));
        assert!(!store.fetch_batch_matches(1, &trapdoors, &extra).unwrap());
    }

    #[test]
    fn full_scan_reads_everything() {
        let store = EpochStore::new();
        store
            .ingest_epoch(2, sample_epoch(64, 2), EpochMetadata::default())
            .unwrap();
        let rows = store.full_scan(2).unwrap();
        assert_eq!(rows.len(), 64);
        assert_eq!(store.observer().summary().scanned_rows, 64);
    }

    #[test]
    fn replace_epoch_enforces_cardinality() {
        let store = EpochStore::new();
        store
            .ingest_epoch(3, sample_epoch(20, 3), EpochMetadata::default())
            .unwrap();
        let err = store.replace_epoch_rows(3, sample_epoch(19, 4), None);
        assert!(matches!(
            err,
            Err(StorageError::CardinalityMismatch {
                expected: 20,
                got: 19
            })
        ));

        store
            .replace_epoch_rows(3, sample_epoch(20, 4), None)
            .unwrap();
        assert_eq!(store.rewrite_count(3).unwrap(), 1);
        // New rows are findable, old rows are gone.
        assert!(store.fetch_by_trapdoor(3, &[4, 0, 1]).unwrap().is_some());
        assert!(store.fetch_by_trapdoor(3, &[3, 0, 1]).unwrap().is_none());
    }

    #[test]
    fn metadata_roundtrip() {
        let store = EpochStore::new();
        let meta = EpochMetadata {
            enc_cell_id: vec![1, 2, 3],
            enc_c_tuple: vec![4, 5],
            enc_tags: vec![vec![6], vec![7]],
            advertised_rows: 12,
        };
        store
            .ingest_epoch(9, sample_epoch(12, 9), meta.clone())
            .unwrap();
        assert_eq!(store.metadata(9).unwrap(), meta);
        assert_eq!(store.epoch_rows(9).unwrap(), 12);
        assert_eq!(store.epoch_ids(), vec![9]);
    }

    #[test]
    fn epoch_metadata_serde_round_trip() {
        let meta = EpochMetadata {
            enc_cell_id: vec![1, 2, 3],
            enc_c_tuple: vec![4, 5],
            enc_tags: vec![vec![6], vec![], vec![7, 8]],
            advertised_rows: 99,
        };
        let bytes = serde::bin::to_bytes(&meta);
        assert_eq!(serde::bin::from_bytes::<EpochMetadata>(&bytes), Ok(meta));
    }

    #[test]
    fn rewrite_rows_swaps_in_place() {
        let store = EpochStore::new();
        store
            .ingest_epoch(5, sample_epoch(30, 5), EpochMetadata::default())
            .unwrap();
        // Replace two rows, keeping the same index keys for one and changing
        // the other's key.
        let replacements = vec![
            (vec![5, 0, 3], row(&[5, 0, 3], 0xAA)),
            (vec![5, 0, 7], row(&[9, 9, 9], 0xBB)),
        ];
        store.rewrite_rows(5, replacements).unwrap();
        assert_eq!(store.epoch_rows(5).unwrap(), 30, "cardinality unchanged");
        let r = store.fetch_by_trapdoor(5, &[5, 0, 3]).unwrap().unwrap();
        assert_eq!(r.payload, vec![0xAA; 48]);
        assert!(store.fetch_by_trapdoor(5, &[5, 0, 7]).unwrap().is_none());
        assert!(store.fetch_by_trapdoor(5, &[9, 9, 9]).unwrap().is_some());
        assert_eq!(store.rewrite_count(5).unwrap(), 1);
    }

    #[test]
    fn rewrite_rows_with_unknown_old_key_fails() {
        let store = EpochStore::new();
        store
            .ingest_epoch(6, sample_epoch(10, 6), EpochMetadata::default())
            .unwrap();
        let err = store.rewrite_rows(6, vec![(vec![1, 2, 3], row(&[1, 2, 3], 1))]);
        assert!(err.is_err());
        // Empty replacement list is a no-op.
        store.rewrite_rows(6, vec![]).unwrap();
        assert_eq!(store.rewrite_count(6).unwrap(), 0);
    }

    #[test]
    fn update_tags_in_place() {
        let store = EpochStore::new();
        let meta = EpochMetadata {
            enc_tags: vec![vec![1], vec![2], vec![3]],
            ..Default::default()
        };
        store.ingest_epoch(7, sample_epoch(3, 7), meta).unwrap();
        store
            .update_tags(7, vec![(1, vec![9, 9]), (5, vec![0])])
            .unwrap();
        let m = store.metadata(7).unwrap();
        assert_eq!(m.enc_tags, vec![vec![1], vec![9, 9], vec![3]]);
        assert!(store.update_tags(99, vec![]).is_err());
    }

    #[test]
    fn multiple_epochs_isolated() {
        let store = EpochStore::new();
        store
            .ingest_epoch(1, sample_epoch(10, 1), EpochMetadata::default())
            .unwrap();
        store
            .ingest_epoch(2, sample_epoch(10, 2), EpochMetadata::default())
            .unwrap();
        // A key from epoch 1 is not findable in epoch 2.
        assert!(store.fetch_by_trapdoor(2, &[1, 0, 1]).unwrap().is_none());
        assert!(store.fetch_by_trapdoor(1, &[1, 0, 1]).unwrap().is_some());
        assert_eq!(store.epoch_ids(), vec![1, 2]);
    }
}
