//! Error type for the storage substrate.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A lookup referenced an epoch that was never ingested.
    UnknownEpoch {
        /// The raw epoch id that was requested.
        epoch_id: u64,
    },
    /// A row id was out of bounds for the table it was used against.
    InvalidRowId {
        /// The offending row id.
        row_id: u64,
        /// Number of rows actually present.
        table_len: u64,
    },
    /// An attempt was made to replace an epoch with a segment of a different
    /// cardinality without explicitly allowing it.
    CardinalityMismatch {
        /// Rows previously stored for the epoch.
        expected: usize,
        /// Rows in the replacement segment.
        got: usize,
    },
    /// Duplicate key inserted into a unique index.
    DuplicateKey,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownEpoch { epoch_id } => write!(f, "unknown epoch {epoch_id}"),
            StorageError::InvalidRowId { row_id, table_len } => {
                write!(f, "invalid row id {row_id} (table has {table_len} rows)")
            }
            StorageError::CardinalityMismatch { expected, got } => {
                write!(
                    f,
                    "cardinality mismatch: expected {expected} rows, got {got}"
                )
            }
            StorageError::DuplicateKey => write!(f, "duplicate key in unique index"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StorageError::UnknownEpoch { epoch_id: 9 }
            .to_string()
            .contains('9'));
        assert!(StorageError::InvalidRowId {
            row_id: 5,
            table_len: 2
        }
        .to_string()
        .contains('5'));
        assert!(StorageError::CardinalityMismatch {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("mismatch"));
        assert_eq!(
            StorageError::DuplicateKey.to_string(),
            "duplicate key in unique index"
        );
    }
}
