//! Error type for the storage substrate.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A lookup referenced an epoch that was never ingested.
    UnknownEpoch {
        /// The raw epoch id that was requested.
        epoch_id: u64,
    },
    /// A row id was out of bounds for the table it was used against.
    InvalidRowId {
        /// The offending row id.
        row_id: u64,
        /// Number of rows actually present.
        table_len: u64,
    },
    /// An attempt was made to replace an epoch with a segment of a different
    /// cardinality without explicitly allowing it.
    CardinalityMismatch {
        /// Rows previously stored for the epoch.
        expected: usize,
        /// Rows in the replacement segment.
        got: usize,
    },
    /// Duplicate key inserted into a unique index.
    DuplicateKey,
    /// An I/O operation against a persistent backend failed.
    Io {
        /// What the store was doing (`"write segment"`, `"sync manifest"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The underlying OS error, stringified (`std::io::Error` is not
        /// `Clone`/`PartialEq`, which this error type is).
        message: String,
    },
    /// On-disk data failed structural validation on open (a manifest whose
    /// checksum does not match, a segment naming collision, …). Torn
    /// segment *tails* are not errors — recovery truncates them; this
    /// variant covers damage recovery cannot safely interpret.
    Corrupt {
        /// The offending file.
        path: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A write reached a backend opened in replica (read-only) mode. The
    /// writer process owns the store root; replicas only ever `refresh`
    /// from it until promoted.
    ReadOnly {
        /// The store root the replica follows.
        path: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownEpoch { epoch_id } => write!(f, "unknown epoch {epoch_id}"),
            StorageError::InvalidRowId { row_id, table_len } => {
                write!(f, "invalid row id {row_id} (table has {table_len} rows)")
            }
            StorageError::CardinalityMismatch { expected, got } => {
                write!(
                    f,
                    "cardinality mismatch: expected {expected} rows, got {got}"
                )
            }
            StorageError::DuplicateKey => write!(f, "duplicate key in unique index"),
            StorageError::Io { op, path, message } => {
                write!(f, "storage i/o failure during {op} on {path}: {message}")
            }
            StorageError::Corrupt { path, reason } => {
                write!(f, "corrupt storage file {path}: {reason}")
            }
            StorageError::ReadOnly { path } => {
                write!(
                    f,
                    "store {path} is open as a read-only replica; only the writer may mutate it"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StorageError::UnknownEpoch { epoch_id: 9 }
            .to_string()
            .contains('9'));
        assert!(StorageError::InvalidRowId {
            row_id: 5,
            table_len: 2
        }
        .to_string()
        .contains('5'));
        assert!(StorageError::CardinalityMismatch {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("mismatch"));
        assert_eq!(
            StorageError::DuplicateKey.to_string(),
            "duplicate key in unique index"
        );
        assert!(StorageError::Io {
            op: "write segment",
            path: "/tmp/x".into(),
            message: "denied".into()
        }
        .to_string()
        .contains("write segment"));
        assert!(StorageError::Corrupt {
            path: "MANIFEST".into(),
            reason: "checksum mismatch"
        }
        .to_string()
        .contains("checksum mismatch"));
        assert!(StorageError::ReadOnly {
            path: "/var/lib/concealer".into()
        }
        .to_string()
        .contains("read-only replica"));
    }
}
