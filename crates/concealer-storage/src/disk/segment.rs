//! Segment files: one append-only file per epoch.
//!
//! Layout (all multi-byte integers LEB128 via the workspace `serde::bin`
//! format; the frame envelope uses the same varint encoding):
//!
//! ```text
//! "CSG1"                                  4-byte magic
//! frame*                                  header, metadata, then one
//!                                         frame per encrypted row
//! footer frame                            row count + FNV-1a64 checksum
//!                                         over every preceding byte
//!
//! frame := tag:u8  len:varint  payload:[u8; len]
//! ```
//!
//! The footer is the commit record *within* the file: a segment is complete
//! iff it ends with a footer whose checksum covers the full preceding byte
//! range and whose row count matches the rows decoded. Anything else — a
//! missing footer, a frame cut short by a crash or an external truncation,
//! a checksum mismatch — classifies the segment as *torn*, and
//! [`DecodeOutcome::Torn`] reports the byte offset of the last intact frame
//! boundary so recovery can truncate the tail.
//!
//! The checksum is a crash/corruption detector, not a security boundary:
//! disk contents are adversary-visible and adversary-writable in
//! Concealer's threat model, and deliberate tampering is caught by the
//! enclave's hash-chain verification at fetch time, exactly as for the
//! in-memory store.

use crate::epoch_store::{EpochMetadata, StoredEpoch};
use crate::table::{EncryptedRow, EncryptedTable};
use serde::{Deserialize, Serialize};

/// Magic prefix of every segment file.
pub(crate) const MAGIC: [u8; 4] = *b"CSG1";

const TAG_HEADER: u8 = 0x01;
const TAG_METADATA: u8 = 0x02;
const TAG_ROW: u8 = 0x03;
const TAG_FOOTER: u8 = 0x7F;

/// First frame of a segment: identity and totals, written before any row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SegmentHeader {
    epoch_id: u64,
    rewrite_count: u64,
    row_count: u64,
}

/// Last frame of a segment: the in-file commit record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SegmentFooter {
    row_count: u64,
    checksum: u64,
}

/// FNV-1a 64-bit over `bytes`.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint at `*pos`, advancing it. `None` on truncated or
/// over-long input.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out = 0u64;
    for shift in 0..10 {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        if shift == 9 && byte > 0x01 {
            return None; // would overflow u64
        }
        out |= u64::from(byte & 0x7f) << (shift * 7);
        if byte & 0x80 == 0 {
            return Some(out);
        }
    }
    None
}

fn push_frame(buf: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    buf.push(tag);
    push_varint(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
}

/// Serialize one epoch into the segment wire format, footer included.
pub(crate) fn encode(epoch_id: u64, epoch: &StoredEpoch) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    let header = SegmentHeader {
        epoch_id,
        rewrite_count: epoch.rewrite_count,
        row_count: epoch.table.len() as u64,
    };
    push_frame(&mut buf, TAG_HEADER, &serde::bin::to_bytes(&header));
    push_frame(
        &mut buf,
        TAG_METADATA,
        &serde::bin::to_bytes(&epoch.metadata),
    );
    // Rows in row-id order: reloading assigns identical row ids, so the
    // adversary trace (`RowFetched { row_id, .. }`) is bit-identical across
    // a restart.
    for (_, row) in epoch.table.scan() {
        push_frame(&mut buf, TAG_ROW, &serde::bin::to_bytes(row));
    }
    let footer = SegmentFooter {
        row_count: epoch.table.len() as u64,
        checksum: fnv1a(&buf),
    };
    push_frame(&mut buf, TAG_FOOTER, &serde::bin::to_bytes(&footer));
    buf
}

/// The result of parsing a segment file.
#[derive(Debug)]
pub(crate) enum DecodeOutcome {
    /// A complete, checksummed segment.
    Complete {
        /// Epoch id recorded in the segment header.
        epoch_id: u64,
        /// The reconstructed epoch (index rebuilt from the row stream).
        epoch: StoredEpoch,
    },
    /// A torn segment: a crash (or external truncation) cut it short of a
    /// valid footer. Bytes up to `valid_len` form intact frames; everything
    /// after is the torn tail recovery truncates.
    Torn {
        /// Byte offset of the last intact frame boundary.
        valid_len: u64,
    },
}

/// Parse a segment file's bytes. Never fails: structurally damaged input
/// classifies as [`DecodeOutcome::Torn`] with the longest intact prefix.
pub(crate) fn decode(bytes: &[u8]) -> DecodeOutcome {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return DecodeOutcome::Torn { valid_len: 0 };
    }
    let mut pos = MAGIC.len();
    let mut header: Option<SegmentHeader> = None;
    let mut metadata: Option<EpochMetadata> = None;
    let mut rows: Vec<EncryptedRow> = Vec::new();
    loop {
        let frame_start = pos;
        let torn = DecodeOutcome::Torn {
            valid_len: frame_start as u64,
        };
        if pos >= bytes.len() {
            // Clean frame boundary but no footer seen: torn exactly here.
            return torn;
        }
        let tag = bytes[pos];
        pos += 1;
        let Some(len) = read_varint(bytes, &mut pos) else {
            return torn;
        };
        let Ok(len) = usize::try_from(len) else {
            return torn;
        };
        if bytes.len() - pos < len {
            return torn;
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        match tag {
            TAG_HEADER if header.is_none() && metadata.is_none() && rows.is_empty() => {
                match serde::bin::from_bytes::<SegmentHeader>(payload) {
                    Ok(h) => header = Some(h),
                    Err(_) => return torn,
                }
            }
            TAG_METADATA if header.is_some() && metadata.is_none() && rows.is_empty() => {
                match serde::bin::from_bytes::<EpochMetadata>(payload) {
                    Ok(m) => metadata = Some(m),
                    Err(_) => return torn,
                }
            }
            TAG_ROW if metadata.is_some() => {
                match serde::bin::from_bytes::<EncryptedRow>(payload) {
                    Ok(r) => rows.push(r),
                    Err(_) => return torn,
                }
            }
            TAG_FOOTER => {
                let Ok(footer) = serde::bin::from_bytes::<SegmentFooter>(payload) else {
                    return torn;
                };
                let (Some(header), Some(metadata)) = (header, metadata) else {
                    return torn;
                };
                if footer.checksum != fnv1a(&bytes[..frame_start])
                    || footer.row_count != rows.len() as u64
                    || header.row_count != rows.len() as u64
                {
                    return torn;
                }
                let Ok(table) = EncryptedTable::bulk_load(rows) else {
                    return torn;
                };
                return DecodeOutcome::Complete {
                    epoch_id: header.epoch_id,
                    epoch: StoredEpoch {
                        table,
                        metadata,
                        rewrite_count: header.rewrite_count,
                    },
                };
            }
            _ => return torn, // unknown tag or out-of-order frame
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: u64, rewrites: u64) -> StoredEpoch {
        let rows: Vec<EncryptedRow> = (0..rows)
            .map(|i| EncryptedRow {
                index_key: i.to_be_bytes().to_vec(),
                filters: vec![vec![i as u8; 4], vec![!i as u8; 4]],
                payload: vec![(i % 251) as u8; 24],
            })
            .collect();
        StoredEpoch {
            table: EncryptedTable::bulk_load(rows).unwrap(),
            metadata: EpochMetadata {
                enc_cell_id: vec![1, 2],
                enc_c_tuple: vec![3],
                enc_tags: vec![vec![4, 5], vec![]],
                advertised_rows: 9,
            },
            rewrite_count: rewrites,
        }
    }

    fn assert_complete(bytes: &[u8], want_epoch: u64, want: &StoredEpoch) {
        match decode(bytes) {
            DecodeOutcome::Complete { epoch_id, epoch } => {
                assert_eq!(epoch_id, want_epoch);
                assert_eq!(epoch.rewrite_count, want.rewrite_count);
                assert_eq!(epoch.metadata, want.metadata);
                assert_eq!(epoch.table.len(), want.table.len());
                for (id, row) in want.table.scan() {
                    assert_eq!(epoch.table.row(id).unwrap(), row);
                }
            }
            DecodeOutcome::Torn { valid_len } => {
                panic!("expected a complete segment, got torn at {valid_len}")
            }
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let epoch = sample(17, 3);
        let bytes = encode(42, &epoch);
        assert_complete(&bytes, 42, &epoch);
    }

    #[test]
    fn empty_epoch_round_trips() {
        let epoch = sample(0, 0);
        let bytes = encode(7, &epoch);
        assert_complete(&bytes, 7, &epoch);
    }

    #[test]
    fn truncation_anywhere_is_torn_with_frame_aligned_prefix() {
        let epoch = sample(9, 0);
        let bytes = encode(5, &epoch);
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                DecodeOutcome::Complete { .. } => {
                    panic!(
                        "truncated segment ({cut}/{} bytes) decoded as complete",
                        bytes.len()
                    )
                }
                DecodeOutcome::Torn { valid_len } => {
                    assert!(valid_len as usize <= cut);
                    // The reported prefix must itself re-parse as torn at
                    // exactly its own length (idempotent truncation).
                    if let DecodeOutcome::Torn { valid_len: again } =
                        decode(&bytes[..valid_len as usize])
                    {
                        assert_eq!(again, valid_len);
                    } else {
                        panic!("valid prefix decoded as complete");
                    }
                }
            }
        }
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let epoch = sample(6, 1);
        let mut bytes = encode(3, &epoch);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(
            matches!(decode(&bytes), DecodeOutcome::Torn { .. }),
            "a flipped bit must not decode as a complete segment"
        );
    }

    #[test]
    fn garbage_and_wrong_magic_are_torn_at_zero() {
        assert!(matches!(
            decode(b"NOPE-not-a-segment"),
            DecodeOutcome::Torn { valid_len: 0 }
        ));
        assert!(matches!(decode(b""), DecodeOutcome::Torn { valid_len: 0 }));
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        // Truncated varint.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
    }
}
