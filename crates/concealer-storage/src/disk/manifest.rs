//! The manifest: the store-level atomic commit point.
//!
//! `MANIFEST` maps each *committed* epoch to the generation of the segment
//! file holding it. Epoch commit order is therefore:
//!
//! 1. write + fsync the new segment file (`segments/ep-<epoch>-g<gen>.seg`),
//! 2. atomically replace `MANIFEST` (write temp, fsync, rename, fsync dir)
//!    with the entry pointing at the new generation,
//! 3. only then delete any superseded generation.
//!
//! A crash anywhere in that sequence leaves either the old manifest (the
//! new segment is an uncommitted leftover, removed on reopen) or the new
//! manifest (the old segment is a superseded leftover, removed on reopen)
//! — never a state that mixes the two.
//!
//! The manifest itself carries a checksum; because it is only ever replaced
//! via rename, a checksum failure means damage outside the crash model and
//! surfaces as [`StorageError::Corrupt`] rather than being silently
//! "recovered" into an empty store.

use super::segment::fnv1a;
use crate::{Result, StorageError};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Manifest file name within the store root.
pub(crate) const MANIFEST_FILE: &str = "MANIFEST";
/// Legacy (pre key-vault) manifest format: entries only. Still readable —
/// a CMN1 store opens at key generation 0 with an empty vault.
const MAGIC_V1: [u8; 4] = *b"CMN1";
/// Current format: entries + master-key generation + wrapped-key vault.
const MAGIC_V2: [u8; 4] = *b"CMN2";

/// Committed epochs plus the master-key lifecycle state: the current key
/// generation and the per-epoch wrapped seal secrets (the "key vault").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Manifest {
    pub(crate) entries: BTreeMap<u64, u64>,
    /// The master-key generation rotation has most recently *begun*.
    /// Bumped (durably) before any vault entry is re-wrapped, so a crash
    /// can leave entries *behind* this counter but never ahead of it.
    pub(crate) key_generation: u64,
    /// Per-epoch key vault: epoch id → (generation the blob was wrapped
    /// under, 64-byte wrapped seal secret). Epochs ingested before the
    /// vault existed have no entry and are skipped by validation.
    pub(crate) wrapped_keys: BTreeMap<u64, (u64, Vec<u8>)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&serde::bin::to_bytes(&self.entries));
        buf.extend_from_slice(&serde::bin::to_bytes(&self.key_generation));
        buf.extend_from_slice(&serde::bin::to_bytes(&self.wrapped_keys));
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    pub(crate) fn decode(bytes: &[u8]) -> Option<Manifest> {
        let body_len = bytes.len().checked_sub(8)?;
        let (body, tail) = bytes.split_at(body_len);
        let checksum = u64::from_le_bytes(tail.try_into().ok()?);
        if body.len() < 4 || fnv1a(body) != checksum {
            return None;
        }
        let (magic, payload) = body.split_at(4);
        if magic == MAGIC_V1 {
            let entries = serde::bin::from_bytes(payload).ok()?;
            return Some(Manifest {
                entries,
                key_generation: 0,
                wrapped_keys: BTreeMap::new(),
            });
        }
        if magic != MAGIC_V2 {
            return None;
        }
        let mut cursor = serde::bin::BinDeserializer::new(payload);
        let entries = serde::Deserialize::deserialize(&mut cursor).ok()?;
        let key_generation = serde::Deserialize::deserialize(&mut cursor).ok()?;
        let wrapped_keys = serde::Deserialize::deserialize(&mut cursor).ok()?;
        if cursor.remaining() != 0 {
            return None;
        }
        Some(Manifest {
            entries,
            key_generation,
            wrapped_keys,
        })
    }

    pub(crate) fn path(root: &Path) -> PathBuf {
        root.join(MANIFEST_FILE)
    }

    /// Load the manifest from `root`. A missing file is an empty (fresh)
    /// store; a present-but-invalid file is corruption.
    pub(crate) fn load(root: &Path) -> Result<Manifest> {
        let path = Self::path(root);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Manifest::default()),
            Err(e) => return Err(io_err("read manifest", &path, &e)),
        };
        Manifest::decode(&bytes).ok_or_else(|| StorageError::Corrupt {
            path: path.display().to_string(),
            reason: "manifest checksum or framing mismatch",
        })
    }

    /// Durably replace the manifest on disk: temp file, fsync, rename over
    /// the live name, fsync the directory.
    pub(crate) fn save(&self, root: &Path) -> Result<()> {
        let path = Self::path(root);
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f =
                fs::File::create(&tmp).map_err(|e| io_err("create manifest temp", &tmp, &e))?;
            f.write_all(&self.encode())
                .map_err(|e| io_err("write manifest temp", &tmp, &e))?;
            f.sync_all()
                .map_err(|e| io_err("sync manifest temp", &tmp, &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err("rename manifest", &path, &e))?;
        sync_dir(root)
    }
}

/// fsync a directory so a just-renamed file inside it survives a crash.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    let f = fs::File::open(dir).map_err(|e| io_err("open dir for sync", dir, &e))?;
    f.sync_all().map_err(|e| io_err("sync dir", dir, &e))
}

/// Wrap an `std::io::Error` (not `Clone`, so stringified) for `op` on `path`.
pub(crate) fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StorageError {
    StorageError::Io {
        op,
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("concealer-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let root = temp_root("roundtrip");
        assert_eq!(Manifest::load(&root).unwrap(), Manifest::default());

        let mut m = Manifest::default();
        m.entries.insert(0, 3);
        m.entries.insert(3600, 1);
        m.save(&root).unwrap();
        assert_eq!(Manifest::load(&root).unwrap(), m);

        // Replacing is atomic-by-rename: saving again leaves no temp file.
        m.entries.insert(7200, 9);
        m.save(&root).unwrap();
        assert_eq!(Manifest::load(&root).unwrap(), m);
        assert!(!root.join("MANIFEST.tmp").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn vault_state_round_trips() {
        let root = temp_root("vault");
        let mut m = Manifest::default();
        m.entries.insert(0, 1);
        m.key_generation = 3;
        m.wrapped_keys.insert(0, (3, vec![0xAB; 64]));
        m.wrapped_keys.insert(3600, (2, vec![0xCD; 64]));
        m.save(&root).unwrap();
        assert_eq!(Manifest::load(&root).unwrap(), m);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_cmn1_manifest_opens_at_generation_zero() {
        // A pre-vault (CMN1) manifest: magic + entries map + fnv1a footer.
        let mut entries = BTreeMap::new();
        entries.insert(7u64, 2u64);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"CMN1");
        bytes.extend_from_slice(&serde::bin::to_bytes(&entries));
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());

        let decoded = Manifest::decode(&bytes).expect("legacy manifests must stay readable");
        assert_eq!(decoded.entries, entries);
        assert_eq!(decoded.key_generation, 0);
        assert!(decoded.wrapped_keys.is_empty());
    }

    #[test]
    fn unknown_magic_is_corruption() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"CMN9");
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert!(Manifest::decode(&bytes).is_none());
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_an_empty_store() {
        let root = temp_root("corrupt");
        let mut m = Manifest::default();
        m.entries.insert(1, 1);
        m.save(&root).unwrap();

        let path = Manifest::path(&root);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Manifest::load(&root),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&root);
    }
}
