//! Crash-safe on-disk epoch storage: [`DiskEpochStore`].
//!
//! The durable counterpart of [`crate::MemoryBackend`]. Layout under the
//! store root:
//!
//! ```text
//! <root>/
//!   MANIFEST                     committed epochs → segment generation
//!   segments/ep-<epoch>-g<gen>.seg   one append-only segment per epoch
//! ```
//!
//! Writes follow write-ahead discipline — segment first (fsync), manifest
//! swap second (temp + rename + dir fsync), superseded files deleted last —
//! so every on-disk state a crash can produce maps to exactly one logical
//! store state. Recovery on [`DiskEpochStore::open`]:
//!
//! * a committed segment that parses completely serves queries again;
//! * a committed segment with a torn tail (crash or external truncation)
//!   is truncated back to its last intact frame boundary and the epoch is
//!   dropped from the manifest — a half-epoch must never serve bins, or
//!   the fixed-size-fetch volume-hiding invariant would break;
//! * segment files the manifest does not reference (crash between segment
//!   write and manifest swap, or a superseded generation) are deleted.
//!
//! All committed epochs stay resident in a 16-way sharded in-memory cache
//! (the same shard discipline as the memory backend), so the fetch path —
//! and therefore every answer and every adversary-observable trace — is
//! bit-identical across backends; the disk is only ever touched by ingest,
//! rewrite and recovery.
//!
//! Trust argument: the files are the *untrusted service provider's* disk.
//! Checksums here detect crashes and rot, not attacks — an adversary who
//! rewrites a segment consistently (valid frames, matching footer) is
//! caught by the enclave's hash-chain verification at query time, exactly
//! as with the in-memory store. Durability adds no new trust assumptions.
//!
//! # Replica mode
//!
//! [`DiskEpochStore::open_replica`] opens the same root *read-only* and
//! non-destructively: it loads committed segments that parse completely,
//! skips anything torn or in-flight (the writer may be mid-write; the next
//! refresh retries), and never deletes files, truncates tails, or saves
//! the manifest — the writer owns the root. [`StorageBackend::refresh`]
//! re-reads `MANIFEST` (with a byte-fingerprint fast path, so an idle
//! store costs one `read` per tick) and pulls in epochs committed since
//! the last look; generation changes to epochs already resident — §6
//! forward-private rewrites — do **not** replicate, matching the enclave's
//! refusal to re-register rewritten epochs after a restart.
//! [`StorageBackend::promote`] turns a replica into the writer by running
//! the destructive recovery pass above over the root, after which writes
//! are accepted; promotion moves no key material — it is exactly a store
//! reopen.

mod manifest;
mod segment;

use crate::backend::{RewrapFn, ShardedEpochs, StorageBackend};
use crate::epoch_store::StoredEpoch;
use crate::{Result, StorageError};
use manifest::{io_err, sync_dir, Manifest};
use parking_lot::Mutex;
use segment::DecodeOutcome;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const SEGMENT_DIR: &str = "segments";

/// Durable, crash-safe storage of sealed epoch segments.
///
/// Create with [`DiskEpochStore::open`] and hand to
/// [`crate::EpochStore::with_backend`] (or
/// `concealer_core::SystemBuilder::with_backend`). Opening an existing
/// root recovers every committed epoch; see the module docs for the
/// recovery rules.
#[derive(Debug)]
pub struct DiskEpochStore {
    root: PathBuf,
    /// What the cache currently holds: epoch → the generation it was
    /// loaded from. On the writer this mirrors the on-disk manifest; on a
    /// replica it may lag it (and keeps the *loaded* generation when the
    /// writer has since rewritten an epoch — rewrites do not replicate).
    cache: ShardedEpochs,
    manifest: Mutex<Manifest>,
    next_gen: AtomicU64,
    /// Scratch stores delete their root when the last handle drops.
    remove_root_on_drop: bool,
    /// Replica mode: refuse writes until promoted.
    read_only: AtomicBool,
    /// fnv1a of the `MANIFEST` bytes last fully absorbed by `refresh`;
    /// lets an idle replica's refresh tick return after one file read.
    manifest_fingerprint: AtomicU64,
}

impl Drop for DiskEpochStore {
    fn drop(&mut self) {
        if self.remove_root_on_drop {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

impl DiskEpochStore {
    /// Open (or initialize) a store rooted at `root`, running crash
    /// recovery: committed epochs are loaded and verified, torn segment
    /// tails are truncated, uncommitted and superseded segment files are
    /// removed.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        let cache = ShardedEpochs::default();
        let (manifest, max_gen) = recover(&root, &cache, &Manifest::default())?;
        Ok(DiskEpochStore {
            root,
            cache,
            manifest: Mutex::new(manifest),
            next_gen: AtomicU64::new(max_gen + 1),
            remove_root_on_drop: false,
            read_only: AtomicBool::new(false),
            manifest_fingerprint: AtomicU64::new(0),
        })
    }

    /// Open the store rooted at `root` as a *read-only replica* of another
    /// process's writer. Non-destructive: committed segments that parse
    /// completely are loaded, anything torn or in-flight is skipped (the
    /// writer may be mid-write; the next [`StorageBackend::refresh`]
    /// retries), and nothing on disk is created, deleted, truncated or
    /// rewritten. Writes are refused with [`StorageError::ReadOnly`] until
    /// [`StorageBackend::promote`] is called. A root the writer has not
    /// initialized yet opens as an empty replica and fills in on refresh.
    pub fn open_replica(root: impl Into<PathBuf>) -> Result<Self> {
        let store = DiskEpochStore {
            root: root.into(),
            cache: ShardedEpochs::default(),
            manifest: Mutex::new(Manifest::default()),
            next_gen: AtomicU64::new(1),
            remove_root_on_drop: false,
            read_only: AtomicBool::new(true),
            manifest_fingerprint: AtomicU64::new(0),
        };
        store.refresh()?;
        Ok(store)
    }

    /// Open a *scratch* store: identical to [`DiskEpochStore::open`],
    /// except the root directory is deleted when the last handle drops.
    /// For harness-created throwaway stores (the `CONCEALER_TEST_BACKEND`
    /// hook), so backend-matrix runs do not accumulate segment data in
    /// the temp dir; durable deployments use [`DiskEpochStore::open`].
    pub fn open_scratch(root: impl Into<PathBuf>) -> Result<Self> {
        let mut store = Self::open(root)?;
        store.remove_root_on_drop = true;
        Ok(store)
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The committed segment file currently backing an epoch, if the epoch
    /// is stored. (Primarily for tests and tooling — e.g. the crash
    /// recovery property test truncates this file.)
    #[must_use]
    pub fn segment_path(&self, epoch_id: u64) -> Option<PathBuf> {
        let generation = *self.manifest.lock().entries.get(&epoch_id)?;
        Some(self.segment_file(epoch_id, generation))
    }

    fn segment_file(&self, epoch_id: u64, generation: u64) -> PathBuf {
        self.root
            .join(SEGMENT_DIR)
            .join(format!("ep-{epoch_id}-g{generation}.seg"))
    }

    /// Write + fsync a new segment generation for `epoch_id`; returns the
    /// generation. Not yet committed — that is the manifest swap.
    fn write_segment(&self, epoch_id: u64, epoch: &StoredEpoch) -> Result<u64> {
        let generation = self.next_gen.fetch_add(1, Ordering::Relaxed);
        let path = self.segment_file(epoch_id, generation);
        let bytes = segment::encode(epoch_id, epoch);
        let mut f = fs::File::create(&path).map_err(|e| io_err("create segment", &path, &e))?;
        f.write_all(&bytes)
            .map_err(|e| io_err("write segment", &path, &e))?;
        f.sync_all()
            .map_err(|e| io_err("sync segment", &path, &e))?;
        sync_dir(&self.root.join(SEGMENT_DIR))?;
        Ok(generation)
    }

    /// Swap the manifest to point `epoch_id` at `generation`; returns the
    /// superseded generation. The in-memory manifest only advances when the
    /// on-disk swap succeeded.
    fn commit(&self, epoch_id: u64, generation: u64) -> Result<Option<u64>> {
        let mut m = self.manifest.lock();
        let mut next = m.clone();
        let old = next.entries.insert(epoch_id, generation);
        next.save(&self.root)?;
        *m = next;
        Ok(old)
    }

    fn remove_superseded(&self, epoch_id: u64, old_gen: Option<u64>) {
        if let Some(generation) = old_gen {
            // Best effort: a leftover is harmless (reopen deletes it).
            let _ = fs::remove_file(self.segment_file(epoch_id, generation));
        }
    }

    fn check_writable(&self) -> Result<()> {
        if self.read_only.load(Ordering::Acquire) {
            return Err(StorageError::ReadOnly {
                path: self.root.display().to_string(),
            });
        }
        Ok(())
    }
}

/// Parse `ep-<epoch>-g<gen>.seg`.
fn parse_segment_name(path: &Path) -> Option<(u64, u64)> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_prefix("ep-")?.strip_suffix(".seg")?;
    let (epoch, generation) = stem.split_once("-g")?;
    Some((epoch.parse().ok()?, generation.parse().ok()?))
}

/// The writer's destructive recovery pass, shared by [`DiskEpochStore::open`]
/// and [`StorageBackend::promote`]: load committed epochs into `cache`,
/// truncate torn tails (dropping those epochs from the committed set),
/// delete uncommitted and superseded segment files, prune manifest entries
/// whose segment vanished, and persist the manifest if it changed.
///
/// `loaded` names the epochs (and the generations) already resident in
/// `cache` — empty on a fresh open; a promoting replica passes what it has
/// absorbed so only changed or missing epochs are re-read. Returns the
/// recovered manifest and the highest generation seen on disk.
fn recover(root: &Path, cache: &ShardedEpochs, loaded: &Manifest) -> Result<(Manifest, u64)> {
    let seg_dir = root.join(SEGMENT_DIR);
    fs::create_dir_all(&seg_dir).map_err(|e| io_err("create segment dir", &seg_dir, &e))?;

    let mut manifest = Manifest::load(root)?;
    // Vault invariant: `begin_key_rotation` durably bumps the generation
    // counter *before* any entry is re-wrapped, so no crash can leave an
    // entry wrapped under a generation the store never began. An entry
    // ahead of the counter is damage outside the crash model.
    if manifest
        .wrapped_keys
        .values()
        .any(|(generation, _)| *generation > manifest.key_generation)
    {
        return Err(StorageError::Corrupt {
            path: Manifest::path(root).display().to_string(),
            reason: "key vault entry wrapped under a generation the store never began",
        });
    }
    let mut manifest_dirty = false;
    let mut max_gen = 0u64;

    // Every segment file present, committed or not.
    let mut on_disk: Vec<(u64, u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(&seg_dir).map_err(|e| io_err("scan segment dir", &seg_dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("scan segment dir", &seg_dir, &e))?;
        let path = entry.path();
        let Some((epoch_id, generation)) = parse_segment_name(&path) else {
            continue; // not ours; leave unknown files alone
        };
        max_gen = max_gen.max(generation);
        on_disk.push((epoch_id, generation, path));
    }

    for (epoch_id, generation, path) in on_disk {
        if manifest.entries.get(&epoch_id) != Some(&generation) {
            // Uncommitted leftover (crash before manifest swap) or a
            // superseded generation (crash before cleanup): the ingest
            // or rewrite it belonged to was never acknowledged.
            fs::remove_file(&path).map_err(|e| io_err("remove stale segment", &path, &e))?;
            continue;
        }
        if loaded.entries.get(&epoch_id) == Some(&generation) {
            continue; // already resident at exactly this generation
        }
        let bytes = fs::read(&path).map_err(|e| io_err("read segment", &path, &e))?;
        match segment::decode(&bytes) {
            DecodeOutcome::Complete {
                epoch_id: stored,
                epoch,
            } if stored == epoch_id => {
                cache.shard(epoch_id).write().insert(epoch_id, epoch);
            }
            DecodeOutcome::Complete { .. } => {
                return Err(StorageError::Corrupt {
                    path: path.display().to_string(),
                    reason: "segment header epoch does not match its file name",
                });
            }
            DecodeOutcome::Torn { valid_len } => {
                // Truncate the torn tail; without a footer the epoch is
                // not servable, so it leaves the committed set.
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("open torn segment", &path, &e))?;
                f.set_len(valid_len)
                    .map_err(|e| io_err("truncate torn segment", &path, &e))?;
                f.sync_all()
                    .map_err(|e| io_err("sync truncated segment", &path, &e))?;
                manifest.entries.remove(&epoch_id);
                manifest.wrapped_keys.remove(&epoch_id);
                manifest_dirty = true;
                // A promoting replica may hold a stale copy loaded from an
                // older generation; a half-epoch must never serve bins.
                cache.shard(epoch_id).write().remove(&epoch_id);
            }
        }
    }

    // Committed epochs whose segment file vanished entirely cannot be
    // served either.
    let missing: Vec<u64> = manifest
        .entries
        .iter()
        .filter(|(epoch_id, _)| cache.with_epoch(**epoch_id, &mut |_| {}).is_err())
        .map(|(epoch_id, _)| *epoch_id)
        .collect();
    for epoch_id in missing {
        manifest.entries.remove(&epoch_id);
        manifest.wrapped_keys.remove(&epoch_id);
        manifest_dirty = true;
    }

    if manifest_dirty {
        manifest.save(root)?;
    }
    Ok((manifest, max_gen))
}

impl StorageBackend for DiskEpochStore {
    fn kind(&self) -> &'static str {
        "disk"
    }

    fn put_epoch(&self, epoch_id: u64, epoch: StoredEpoch) -> Result<()> {
        self.check_writable()?;
        // Segment first; commit + cache insert under the shard lock so a
        // concurrent reader never sees a committed-but-uncached epoch.
        let generation = self.write_segment(epoch_id, &epoch)?;
        let shard = self.cache.shard(epoch_id);
        let mut guard = shard.write();
        let old = self.commit(epoch_id, generation)?;
        guard.insert(epoch_id, epoch);
        drop(guard);
        self.remove_superseded(epoch_id, old);
        Ok(())
    }

    fn with_epoch(&self, epoch_id: u64, f: &mut dyn FnMut(&StoredEpoch)) -> Result<()> {
        self.cache.with_epoch(epoch_id, f)
    }

    fn update_epoch(
        &self,
        epoch_id: u64,
        f: &mut dyn FnMut(&mut StoredEpoch) -> Result<()>,
    ) -> Result<()> {
        self.check_writable()?;
        let shard = self.cache.shard(epoch_id);
        let mut guard = shard.write();
        let current = guard
            .get_mut(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        // Mutate a copy so cache and disk advance together or not at all —
        // a failed persist must not leave the cache ahead of the disk.
        let mut updated = current.clone();
        f(&mut updated)?;
        let generation = self.write_segment(epoch_id, &updated)?;
        let old = self.commit(epoch_id, generation)?;
        *current = updated;
        drop(guard);
        self.remove_superseded(epoch_id, old);
        Ok(())
    }

    fn epoch_ids(&self) -> Vec<u64> {
        self.cache.epoch_ids()
    }

    fn epoch_count(&self) -> usize {
        self.cache.epoch_count()
    }

    fn total_rows(&self) -> usize {
        self.cache.total_rows()
    }

    fn shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    fn read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    fn refresh(&self) -> Result<Vec<u64>> {
        if !self.read_only.load(Ordering::Acquire) {
            // The writer's own commits are already resident; nothing else
            // may legally write this root.
            return Ok(Vec::new());
        }
        let path = Manifest::path(&self.root);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            // Writer has not initialized the root yet; nothing to absorb.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err("read manifest", &path, &e)),
        };
        let fingerprint = segment::fnv1a(&bytes);
        if fingerprint == self.manifest_fingerprint.load(Ordering::Acquire) {
            return Ok(Vec::new()); // unchanged since last fully absorbed look
        }
        let disk_manifest = Manifest::decode(&bytes).ok_or_else(|| StorageError::Corrupt {
            path: path.display().to_string(),
            reason: "manifest checksum or framing mismatch",
        })?;

        let mut loaded = self.manifest.lock();
        let mut new_epochs = Vec::new();
        let mut fully_absorbed = true;
        for (&epoch_id, &generation) in &disk_manifest.entries {
            if loaded.entries.contains_key(&epoch_id) {
                // Generation changes to resident epochs are §6 rewrites;
                // they do not replicate (the enclave likewise refuses to
                // re-register rewritten epochs after a restart).
                continue;
            }
            let seg = self.segment_file(epoch_id, generation);
            let Ok(seg_bytes) = fs::read(&seg) else {
                // Racing the writer (supersede-delete or slow publish):
                // leave the fingerprint stale so the next tick retries.
                fully_absorbed = false;
                continue;
            };
            match segment::decode(&seg_bytes) {
                DecodeOutcome::Complete {
                    epoch_id: stored,
                    epoch,
                } if stored == epoch_id => {
                    self.cache.shard(epoch_id).write().insert(epoch_id, epoch);
                    loaded.entries.insert(epoch_id, generation);
                    new_epochs.push(epoch_id);
                }
                // Torn or mislabeled mid-write state: skip, retry next tick.
                _ => fully_absorbed = false,
            }
        }
        // Master-key lifecycle state replicates unconditionally: a
        // rotation only rewrites the vault, adds no epochs, and the
        // replica's own master validates entries at registration time —
        // so a refresh across a rotation boundary just adopts the
        // writer's counter and blobs.
        loaded.key_generation = disk_manifest.key_generation;
        loaded.wrapped_keys = disk_manifest.wrapped_keys;
        if fully_absorbed {
            self.manifest_fingerprint
                .store(fingerprint, Ordering::Release);
        }
        Ok(new_epochs)
    }

    fn promote(&self) -> Result<()> {
        if !self.read_only.load(Ordering::Acquire) {
            return Ok(()); // already the writer
        }
        // Serialize against refresh, then take ownership of the root by
        // running the writer's destructive recovery pass over it. Epochs
        // the replica already absorbed at the manifest's generation are
        // trusted resident; changed or missing ones are (re)read.
        let mut loaded = self.manifest.lock();
        let (recovered, max_gen) = recover(&self.root, &self.cache, &loaded)?;
        *loaded = recovered;
        self.next_gen.store(max_gen + 1, Ordering::Release);
        self.read_only.store(false, Ordering::Release);
        Ok(())
    }

    fn store_generation(&self) -> u64 {
        self.manifest
            .lock()
            .entries
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn seal_key(&self, epoch_id: u64, generation: u64, wrapped: Vec<u8>) -> Result<()> {
        // The generation is recorded as given — `recover` enforces the
        // never-ahead-of-the-counter invariant on reopen, which is also
        // what lets torn-state tests plant an impossible entry.
        self.check_writable()?;
        let mut m = self.manifest.lock();
        let mut next = m.clone();
        next.wrapped_keys.insert(epoch_id, (generation, wrapped));
        next.save(&self.root)?;
        *m = next;
        Ok(())
    }

    fn sealed_key(&self, epoch_id: u64) -> Option<(u64, Vec<u8>)> {
        self.manifest.lock().wrapped_keys.get(&epoch_id).cloned()
    }

    fn key_generation(&self) -> u64 {
        self.manifest.lock().key_generation
    }

    fn begin_key_rotation(&self, new_generation: u64) -> Result<()> {
        self.check_writable()?;
        let mut m = self.manifest.lock();
        if new_generation <= m.key_generation {
            return Ok(()); // idempotent resume / stale request
        }
        let mut next = m.clone();
        next.key_generation = new_generation;
        next.save(&self.root)?;
        *m = next;
        Ok(())
    }

    fn rewrap_keys(&self, rewrap: &mut RewrapFn<'_>, limit: usize) -> Result<usize> {
        self.check_writable()?;
        let mut done = 0;
        while done < limit {
            // One entry per lock hold: each re-wrap is its own durable
            // manifest commit, so ingest never waits behind a long batch
            // and a crash between entries loses at most nothing (entries
            // already committed stay committed; the rest stay resumable).
            let mut m = self.manifest.lock();
            let target_generation = m.key_generation;
            let Some((&epoch_id, (_, old_blob))) = m
                .wrapped_keys
                .iter()
                .find(|(_, (generation, _))| *generation < target_generation)
            else {
                return Ok(done);
            };
            let new_blob = rewrap(epoch_id, target_generation, old_blob)?;
            let mut next = m.clone();
            next.wrapped_keys
                .insert(epoch_id, (target_generation, new_blob));
            next.save(&self.root)?;
            *m = next;
            done += 1;
        }
        Ok(done)
    }

    fn rotation_pending(&self) -> usize {
        let m = self.manifest.lock();
        m.wrapped_keys
            .values()
            .filter(|(generation, _)| *generation < m.key_generation)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch_store::{EpochMetadata, EpochStore};
    use crate::table::EncryptedRow;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch root; removed on drop.
    struct ScratchRoot(PathBuf);

    impl ScratchRoot {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "concealer-disk-{tag}-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            ScratchRoot(dir)
        }
    }

    impl Drop for ScratchRoot {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn row(key: &[u8], tag: u8) -> EncryptedRow {
        EncryptedRow {
            index_key: key.to_vec(),
            filters: vec![vec![tag; 16]],
            payload: vec![tag; 48],
        }
    }

    fn sample_rows(n: u64, salt: u8) -> Vec<EncryptedRow> {
        (0..n)
            .map(|i| row(&[salt, (i >> 8) as u8, i as u8], (i % 251) as u8))
            .collect()
    }

    fn sample_meta(salt: u8) -> EpochMetadata {
        EpochMetadata {
            enc_cell_id: vec![salt, 1, 2],
            enc_c_tuple: vec![salt, 3],
            enc_tags: vec![vec![salt], vec![salt, salt]],
            advertised_rows: 40,
        }
    }

    fn disk_store(root: &Path) -> EpochStore {
        EpochStore::with_backend(Arc::new(DiskEpochStore::open(root).unwrap()))
    }

    #[test]
    fn survives_drop_and_reopen() {
        let scratch = ScratchRoot::new("reopen");
        {
            let store = disk_store(&scratch.0);
            assert_eq!(store.backend_kind(), "disk");
            store
                .ingest_epoch(0, sample_rows(40, 1), sample_meta(1))
                .unwrap();
            store
                .ingest_epoch(3600, sample_rows(25, 2), sample_meta(2))
                .unwrap();
        }
        let store = disk_store(&scratch.0);
        assert_eq!(store.epoch_ids(), vec![0, 3600]);
        assert_eq!(store.total_rows(), 65);
        assert_eq!(store.metadata(3600).unwrap(), sample_meta(2));
        // Row ids (and thus the adversary trace) survive the reload.
        let hit = store.fetch_by_trapdoor(0, &[1, 0, 5]).unwrap();
        assert!(hit.is_some());
        let summary = store.observer().summary();
        assert_eq!(summary.fetch_frequency.keys().next(), Some(&(0, 5)));
    }

    #[test]
    fn rewrites_persist_across_reopen() {
        let scratch = ScratchRoot::new("rewrite");
        {
            let store = disk_store(&scratch.0);
            store
                .ingest_epoch(7, sample_rows(10, 3), sample_meta(3))
                .unwrap();
            store
                .rewrite_rows(7, vec![(vec![3, 0, 4], row(&[9, 9, 9], 0xEE))])
                .unwrap();
            store.update_tags(7, vec![(0, vec![0xAB])]).unwrap();
        }
        let store = disk_store(&scratch.0);
        assert_eq!(store.rewrite_count(7).unwrap(), 1);
        assert!(store.fetch_by_trapdoor(7, &[9, 9, 9]).unwrap().is_some());
        assert!(store.fetch_by_trapdoor(7, &[3, 0, 4]).unwrap().is_none());
        assert_eq!(store.metadata(7).unwrap().enc_tags[0], vec![0xAB]);
        // Exactly one live segment file per epoch (superseded gens removed).
        let live: Vec<_> = fs::read_dir(scratch.0.join(SEGMENT_DIR)).unwrap().collect();
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn failed_update_leaves_store_unchanged() {
        let scratch = ScratchRoot::new("failedupdate");
        let store = disk_store(&scratch.0);
        store
            .ingest_epoch(1, sample_rows(10, 1), sample_meta(1))
            .unwrap();
        let err = store.replace_epoch_rows(1, sample_rows(9, 2), None);
        assert!(matches!(err, Err(StorageError::CardinalityMismatch { .. })));
        assert_eq!(store.rewrite_count(1).unwrap(), 0);
        assert!(store.fetch_by_trapdoor(1, &[1, 0, 1]).unwrap().is_some());
    }

    #[test]
    fn torn_committed_segment_is_truncated_and_dropped() {
        let scratch = ScratchRoot::new("torn");
        let seg_path;
        {
            let disk = Arc::new(DiskEpochStore::open(&scratch.0).unwrap());
            seg_path = {
                let store = EpochStore::with_backend(disk.clone());
                store
                    .ingest_epoch(0, sample_rows(30, 1), sample_meta(1))
                    .unwrap();
                store
                    .ingest_epoch(3600, sample_rows(30, 2), sample_meta(2))
                    .unwrap();
                disk.segment_path(3600).unwrap()
            };
        }
        // Tear the committed segment mid-file, as a crash or disk fault
        // would.
        let full = fs::read(&seg_path).unwrap();
        let cut = full.len() * 2 / 3;
        let f = fs::OpenOptions::new().write(true).open(&seg_path).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        let disk = DiskEpochStore::open(&scratch.0).unwrap();
        let store = EpochStore::with_backend(Arc::new(disk));
        assert_eq!(
            store.epoch_ids(),
            vec![0],
            "the torn epoch must be dropped, the intact one recovered"
        );
        // The torn tail was truncated back to a frame boundary.
        let remaining = fs::read(&seg_path).unwrap();
        assert!(remaining.len() <= cut);
        assert!(matches!(
            segment::decode(&remaining),
            DecodeOutcome::Torn { valid_len } if valid_len as usize == remaining.len()
        ));
        // Reopening again is stable: same surviving epochs.
        drop(store);
        let store = disk_store(&scratch.0);
        assert_eq!(store.epoch_ids(), vec![0]);
        assert!(store.fetch_by_trapdoor(0, &[1, 0, 1]).unwrap().is_some());
    }

    #[test]
    fn uncommitted_segment_file_is_removed_on_open() {
        let scratch = ScratchRoot::new("uncommitted");
        {
            let store = disk_store(&scratch.0);
            store
                .ingest_epoch(0, sample_rows(5, 1), sample_meta(1))
                .unwrap();
        }
        // Simulate a crash between segment write and manifest swap: a
        // complete segment file for an epoch the manifest never committed.
        let stray = scratch.0.join(SEGMENT_DIR).join("ep-9999-g77.seg");
        fs::write(&stray, b"CSG1 not really a segment").unwrap();
        let store = disk_store(&scratch.0);
        assert_eq!(store.epoch_ids(), vec![0]);
        assert!(!stray.exists(), "stray uncommitted segment must be removed");
    }

    #[test]
    fn replica_follows_writer_commits_and_refuses_writes() {
        let scratch = ScratchRoot::new("replica");
        let writer = disk_store(&scratch.0);
        writer
            .ingest_epoch(0, sample_rows(20, 1), sample_meta(1))
            .unwrap();

        let replica = DiskEpochStore::open_replica(&scratch.0).unwrap();
        assert!(StorageBackend::read_only(&replica));
        assert_eq!(
            replica.epoch_ids(),
            vec![0],
            "open_replica loads committed epochs"
        );
        assert_eq!(
            replica.store_generation(),
            writer.backend().store_generation()
        );

        // The writer commits another epoch; one refresh absorbs it.
        writer
            .ingest_epoch(3600, sample_rows(25, 2), sample_meta(2))
            .unwrap();
        assert_eq!(replica.refresh().unwrap(), vec![3600]);
        assert_eq!(replica.epoch_ids(), vec![0, 3600]);
        // Nothing changed: the fingerprint fast path reports nothing new.
        assert_eq!(replica.refresh().unwrap(), Vec::<u64>::new());
        // The replica serves the same bytes the writer does.
        let mut rows = (0, 0);
        replica
            .with_epoch(3600, &mut |e| rows.0 = e.table.len())
            .unwrap();
        writer
            .backend()
            .with_epoch(3600, &mut |e| rows.1 = e.table.len())
            .unwrap();
        assert_eq!(rows.0, rows.1);

        // Writes are refused until promotion.
        let err = EpochStore::with_backend(Arc::new(replica)).ingest_epoch(
            7200,
            sample_rows(5, 3),
            sample_meta(3),
        );
        assert!(matches!(err, Err(StorageError::ReadOnly { .. })));
        // The writer is never read-only and its refresh is a no-op.
        assert!(!writer.backend().read_only());
        assert_eq!(writer.backend().refresh().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn rewrites_do_not_replicate_to_a_live_replica() {
        let scratch = ScratchRoot::new("replica-rewrite");
        let writer = disk_store(&scratch.0);
        writer
            .ingest_epoch(7, sample_rows(10, 3), sample_meta(3))
            .unwrap();
        let replica = DiskEpochStore::open_replica(&scratch.0).unwrap();
        assert!(replica.with_epoch(7, &mut |_| {}).is_ok());

        // A §6 rewrite bumps the epoch's generation on disk; the replica
        // keeps serving the generation it absorbed.
        writer
            .rewrite_rows(7, vec![(vec![3, 0, 4], row(&[9, 9, 9], 0xEE))])
            .unwrap();
        assert_eq!(replica.refresh().unwrap(), Vec::<u64>::new());
        let mut count = u64::MAX;
        replica
            .with_epoch(7, &mut |e| count = e.rewrite_count)
            .unwrap();
        assert_eq!(count, 0, "rewrites must not replicate");
        assert!(replica.store_generation() < writer.backend().store_generation());
    }

    #[test]
    fn promote_takes_ownership_and_enables_writes() {
        let scratch = ScratchRoot::new("promote");
        {
            let writer = disk_store(&scratch.0);
            writer
                .ingest_epoch(0, sample_rows(20, 1), sample_meta(1))
                .unwrap();
            writer
                .ingest_epoch(3600, sample_rows(25, 2), sample_meta(2))
                .unwrap();
        }
        // Simulate the dead writer's crash leftover: a complete-looking
        // segment file the manifest never committed.
        let stray = scratch.0.join(SEGMENT_DIR).join("ep-9999-g77.seg");
        fs::write(&stray, b"CSG1 not really a segment").unwrap();

        let replica = Arc::new(DiskEpochStore::open_replica(&scratch.0).unwrap());
        assert_eq!(replica.epoch_ids(), vec![0, 3600]);
        assert!(stray.exists(), "replicas never delete the writer's files");

        replica.promote().unwrap();
        assert!(!StorageBackend::read_only(&*replica));
        assert!(!stray.exists(), "promotion runs the writer's recovery pass");
        // Promotion is idempotent and the store now accepts writes whose
        // generations continue past everything already on disk.
        replica.promote().unwrap();
        let pre_gen = replica.store_generation();
        let store = EpochStore::with_backend(replica);
        store
            .ingest_epoch(7200, sample_rows(5, 3), sample_meta(3))
            .unwrap();
        assert_eq!(store.epoch_ids(), vec![0, 3600, 7200]);
        assert!(store.backend().store_generation() > pre_gen);
        // The promoted store is a valid writer root: reopen recovers all.
        drop(store);
        let store = disk_store(&scratch.0);
        assert_eq!(store.epoch_ids(), vec![0, 3600, 7200]);
    }

    #[test]
    fn refresh_skips_inflight_segments_and_retries() {
        let scratch = ScratchRoot::new("inflight");
        let disk = Arc::new(DiskEpochStore::open(&scratch.0).unwrap());
        let writer = EpochStore::with_backend(disk.clone());
        writer
            .ingest_epoch(0, sample_rows(10, 1), sample_meta(1))
            .unwrap();
        let replica = DiskEpochStore::open_replica(&scratch.0).unwrap();

        // Commit an epoch, then hide its segment file: to the replica this
        // looks like racing the writer mid-publish.
        writer
            .ingest_epoch(3600, sample_rows(10, 2), sample_meta(2))
            .unwrap();
        let seg = disk.segment_path(3600).unwrap();
        let hidden = seg.with_extension("seg.hidden");
        fs::rename(&seg, &hidden).unwrap();
        assert_eq!(replica.refresh().unwrap(), Vec::<u64>::new());
        assert_eq!(
            replica.epoch_ids(),
            vec![0],
            "half-published epochs must not serve"
        );

        // Once the segment is visible, the next tick absorbs it even though
        // the manifest bytes have not changed since the skipped look.
        fs::rename(&hidden, &seg).unwrap();
        assert_eq!(replica.refresh().unwrap(), vec![3600]);
        assert_eq!(replica.epoch_ids(), vec![0, 3600]);
    }

    #[test]
    fn key_vault_rotation_is_resumable_across_reopen() {
        let scratch = ScratchRoot::new("vault");
        let disk = DiskEpochStore::open(&scratch.0).unwrap();
        for epoch in [0u64, 3600, 7200] {
            disk.seal_key(epoch, 0, vec![epoch as u8; 64]).unwrap();
        }
        assert_eq!(disk.key_generation(), 0);
        assert_eq!(disk.rotation_pending(), 0);
        assert_eq!(disk.sealed_key(3600), Some((0, vec![3600u64 as u8; 64])));

        disk.begin_key_rotation(1).unwrap();
        assert_eq!(disk.key_generation(), 1);
        assert_eq!(disk.rotation_pending(), 3);
        // Bounded batch: two entries re-wrapped, one left behind.
        let n = disk
            .rewrap_keys(
                &mut |_e, generation, old| {
                    assert_eq!(generation, 1);
                    Ok(old.iter().map(|b| b ^ 0xFF).collect())
                },
                2,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(disk.rotation_pending(), 1);
        drop(disk);

        // Crash mid-rotation: reopen resumes exactly where it stopped.
        let disk = DiskEpochStore::open(&scratch.0).unwrap();
        assert_eq!(disk.key_generation(), 1);
        assert_eq!(disk.rotation_pending(), 1);
        assert_eq!(
            disk.rewrap_keys(&mut |_e, _g, old| Ok(old.to_vec()), 8)
                .unwrap(),
            1
        );
        assert_eq!(disk.rotation_pending(), 0);
        // Re-beginning a finished (or older) generation is a no-op.
        disk.begin_key_rotation(1).unwrap();
        disk.begin_key_rotation(0).unwrap();
        assert_eq!(disk.key_generation(), 1);
    }

    #[test]
    fn vault_entry_ahead_of_the_counter_is_corruption_on_reopen() {
        let scratch = ScratchRoot::new("vault-torn");
        {
            let disk = DiskEpochStore::open(&scratch.0).unwrap();
            // A generation the store never began: impossible under the
            // crash model, so reopen must refuse rather than "resume".
            disk.seal_key(0, 7, vec![0u8; 64]).unwrap();
        }
        assert!(matches!(
            DiskEpochStore::open(&scratch.0),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn replica_refresh_adopts_rotation_state() {
        let scratch = ScratchRoot::new("vault-replica");
        let writer = disk_store(&scratch.0);
        writer
            .ingest_epoch(0, sample_rows(10, 1), sample_meta(1))
            .unwrap();
        writer.backend().seal_key(0, 0, vec![1u8; 64]).unwrap();

        let replica = DiskEpochStore::open_replica(&scratch.0).unwrap();
        assert_eq!(StorageBackend::key_generation(&replica), 0);

        writer.backend().begin_key_rotation(1).unwrap();
        writer
            .backend()
            .rewrap_keys(&mut |_e, _g, _old| Ok(vec![2u8; 64]), 8)
            .unwrap();
        // A rotation adds no epochs — the refresh returns nothing new but
        // still adopts the writer's lifecycle state.
        assert_eq!(replica.refresh().unwrap(), Vec::<u64>::new());
        assert_eq!(StorageBackend::key_generation(&replica), 1);
        assert_eq!(replica.sealed_key(0), Some((1, vec![2u8; 64])));
        // Epochs committed after the rotation still absorb normally.
        writer
            .ingest_epoch(3600, sample_rows(10, 2), sample_meta(2))
            .unwrap();
        assert_eq!(replica.refresh().unwrap(), vec![3600]);
    }

    #[test]
    fn segment_name_parsing() {
        assert_eq!(
            parse_segment_name(Path::new("/x/ep-3600-g12.seg")),
            Some((3600, 12))
        );
        assert_eq!(parse_segment_name(Path::new("/x/ep-3600.seg")), None);
        assert_eq!(parse_segment_name(Path::new("/x/MANIFEST")), None);
    }
}
