//! Crash-safe on-disk epoch storage: [`DiskEpochStore`].
//!
//! The durable counterpart of [`crate::MemoryBackend`]. Layout under the
//! store root:
//!
//! ```text
//! <root>/
//!   MANIFEST                     committed epochs → segment generation
//!   segments/ep-<epoch>-g<gen>.seg   one append-only segment per epoch
//! ```
//!
//! Writes follow write-ahead discipline — segment first (fsync), manifest
//! swap second (temp + rename + dir fsync), superseded files deleted last —
//! so every on-disk state a crash can produce maps to exactly one logical
//! store state. Recovery on [`DiskEpochStore::open`]:
//!
//! * a committed segment that parses completely serves queries again;
//! * a committed segment with a torn tail (crash or external truncation)
//!   is truncated back to its last intact frame boundary and the epoch is
//!   dropped from the manifest — a half-epoch must never serve bins, or
//!   the fixed-size-fetch volume-hiding invariant would break;
//! * segment files the manifest does not reference (crash between segment
//!   write and manifest swap, or a superseded generation) are deleted.
//!
//! All committed epochs stay resident in a 16-way sharded in-memory cache
//! (the same shard discipline as the memory backend), so the fetch path —
//! and therefore every answer and every adversary-observable trace — is
//! bit-identical across backends; the disk is only ever touched by ingest,
//! rewrite and recovery.
//!
//! Trust argument: the files are the *untrusted service provider's* disk.
//! Checksums here detect crashes and rot, not attacks — an adversary who
//! rewrites a segment consistently (valid frames, matching footer) is
//! caught by the enclave's hash-chain verification at query time, exactly
//! as with the in-memory store. Durability adds no new trust assumptions.

mod manifest;
mod segment;

use crate::backend::{ShardedEpochs, StorageBackend};
use crate::epoch_store::StoredEpoch;
use crate::{Result, StorageError};
use manifest::{io_err, sync_dir, Manifest};
use parking_lot::Mutex;
use segment::DecodeOutcome;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SEGMENT_DIR: &str = "segments";

/// Durable, crash-safe storage of sealed epoch segments.
///
/// Create with [`DiskEpochStore::open`] and hand to
/// [`crate::EpochStore::with_backend`] (or
/// `concealer_core::SystemBuilder::with_backend`). Opening an existing
/// root recovers every committed epoch; see the module docs for the
/// recovery rules.
#[derive(Debug)]
pub struct DiskEpochStore {
    root: PathBuf,
    cache: ShardedEpochs,
    manifest: Mutex<Manifest>,
    next_gen: AtomicU64,
    /// Scratch stores delete their root when the last handle drops.
    remove_root_on_drop: bool,
}

impl Drop for DiskEpochStore {
    fn drop(&mut self) {
        if self.remove_root_on_drop {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

impl DiskEpochStore {
    /// Open (or initialize) a store rooted at `root`, running crash
    /// recovery: committed epochs are loaded and verified, torn segment
    /// tails are truncated, uncommitted and superseded segment files are
    /// removed.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        let seg_dir = root.join(SEGMENT_DIR);
        fs::create_dir_all(&seg_dir).map_err(|e| io_err("create segment dir", &seg_dir, &e))?;

        let mut manifest = Manifest::load(&root)?;
        let mut manifest_dirty = false;
        let mut max_gen = 0u64;
        let cache = ShardedEpochs::default();

        // Every segment file present, committed or not.
        let mut on_disk: Vec<(u64, u64, PathBuf)> = Vec::new();
        let entries =
            fs::read_dir(&seg_dir).map_err(|e| io_err("scan segment dir", &seg_dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan segment dir", &seg_dir, &e))?;
            let path = entry.path();
            let Some((epoch_id, generation)) = parse_segment_name(&path) else {
                continue; // not ours; leave unknown files alone
            };
            max_gen = max_gen.max(generation);
            on_disk.push((epoch_id, generation, path));
        }

        for (epoch_id, generation, path) in on_disk {
            if manifest.entries.get(&epoch_id) != Some(&generation) {
                // Uncommitted leftover (crash before manifest swap) or a
                // superseded generation (crash before cleanup): the ingest
                // or rewrite it belonged to was never acknowledged.
                fs::remove_file(&path).map_err(|e| io_err("remove stale segment", &path, &e))?;
                continue;
            }
            let bytes = fs::read(&path).map_err(|e| io_err("read segment", &path, &e))?;
            match segment::decode(&bytes) {
                DecodeOutcome::Complete {
                    epoch_id: stored,
                    epoch,
                } if stored == epoch_id => {
                    cache.shard(epoch_id).write().insert(epoch_id, epoch);
                }
                DecodeOutcome::Complete { .. } => {
                    return Err(StorageError::Corrupt {
                        path: path.display().to_string(),
                        reason: "segment header epoch does not match its file name",
                    });
                }
                DecodeOutcome::Torn { valid_len } => {
                    // Truncate the torn tail; without a footer the epoch is
                    // not servable, so it leaves the committed set.
                    let f = fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| io_err("open torn segment", &path, &e))?;
                    f.set_len(valid_len)
                        .map_err(|e| io_err("truncate torn segment", &path, &e))?;
                    f.sync_all()
                        .map_err(|e| io_err("sync truncated segment", &path, &e))?;
                    manifest.entries.remove(&epoch_id);
                    manifest_dirty = true;
                }
            }
        }

        // Committed epochs whose segment file vanished entirely cannot be
        // served either.
        let missing: Vec<u64> = manifest
            .entries
            .iter()
            .filter(|(epoch_id, _)| cache.with_epoch(**epoch_id, &mut |_| {}).is_err())
            .map(|(epoch_id, _)| *epoch_id)
            .collect();
        for epoch_id in missing {
            manifest.entries.remove(&epoch_id);
            manifest_dirty = true;
        }

        if manifest_dirty {
            manifest.save(&root)?;
        }
        Ok(DiskEpochStore {
            root,
            cache,
            manifest: Mutex::new(manifest),
            next_gen: AtomicU64::new(max_gen + 1),
            remove_root_on_drop: false,
        })
    }

    /// Open a *scratch* store: identical to [`DiskEpochStore::open`],
    /// except the root directory is deleted when the last handle drops.
    /// For harness-created throwaway stores (the `CONCEALER_TEST_BACKEND`
    /// hook), so backend-matrix runs do not accumulate segment data in
    /// the temp dir; durable deployments use [`DiskEpochStore::open`].
    pub fn open_scratch(root: impl Into<PathBuf>) -> Result<Self> {
        let mut store = Self::open(root)?;
        store.remove_root_on_drop = true;
        Ok(store)
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The committed segment file currently backing an epoch, if the epoch
    /// is stored. (Primarily for tests and tooling — e.g. the crash
    /// recovery property test truncates this file.)
    #[must_use]
    pub fn segment_path(&self, epoch_id: u64) -> Option<PathBuf> {
        let generation = *self.manifest.lock().entries.get(&epoch_id)?;
        Some(self.segment_file(epoch_id, generation))
    }

    fn segment_file(&self, epoch_id: u64, generation: u64) -> PathBuf {
        self.root
            .join(SEGMENT_DIR)
            .join(format!("ep-{epoch_id}-g{generation}.seg"))
    }

    /// Write + fsync a new segment generation for `epoch_id`; returns the
    /// generation. Not yet committed — that is the manifest swap.
    fn write_segment(&self, epoch_id: u64, epoch: &StoredEpoch) -> Result<u64> {
        let generation = self.next_gen.fetch_add(1, Ordering::Relaxed);
        let path = self.segment_file(epoch_id, generation);
        let bytes = segment::encode(epoch_id, epoch);
        let mut f = fs::File::create(&path).map_err(|e| io_err("create segment", &path, &e))?;
        f.write_all(&bytes)
            .map_err(|e| io_err("write segment", &path, &e))?;
        f.sync_all()
            .map_err(|e| io_err("sync segment", &path, &e))?;
        sync_dir(&self.root.join(SEGMENT_DIR))?;
        Ok(generation)
    }

    /// Swap the manifest to point `epoch_id` at `generation`; returns the
    /// superseded generation. The in-memory manifest only advances when the
    /// on-disk swap succeeded.
    fn commit(&self, epoch_id: u64, generation: u64) -> Result<Option<u64>> {
        let mut m = self.manifest.lock();
        let mut next = m.clone();
        let old = next.entries.insert(epoch_id, generation);
        next.save(&self.root)?;
        *m = next;
        Ok(old)
    }

    fn remove_superseded(&self, epoch_id: u64, old_gen: Option<u64>) {
        if let Some(generation) = old_gen {
            // Best effort: a leftover is harmless (reopen deletes it).
            let _ = fs::remove_file(self.segment_file(epoch_id, generation));
        }
    }
}

/// Parse `ep-<epoch>-g<gen>.seg`.
fn parse_segment_name(path: &Path) -> Option<(u64, u64)> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_prefix("ep-")?.strip_suffix(".seg")?;
    let (epoch, generation) = stem.split_once("-g")?;
    Some((epoch.parse().ok()?, generation.parse().ok()?))
}

impl StorageBackend for DiskEpochStore {
    fn kind(&self) -> &'static str {
        "disk"
    }

    fn put_epoch(&self, epoch_id: u64, epoch: StoredEpoch) -> Result<()> {
        // Segment first; commit + cache insert under the shard lock so a
        // concurrent reader never sees a committed-but-uncached epoch.
        let generation = self.write_segment(epoch_id, &epoch)?;
        let shard = self.cache.shard(epoch_id);
        let mut guard = shard.write();
        let old = self.commit(epoch_id, generation)?;
        guard.insert(epoch_id, epoch);
        drop(guard);
        self.remove_superseded(epoch_id, old);
        Ok(())
    }

    fn with_epoch(&self, epoch_id: u64, f: &mut dyn FnMut(&StoredEpoch)) -> Result<()> {
        self.cache.with_epoch(epoch_id, f)
    }

    fn update_epoch(
        &self,
        epoch_id: u64,
        f: &mut dyn FnMut(&mut StoredEpoch) -> Result<()>,
    ) -> Result<()> {
        let shard = self.cache.shard(epoch_id);
        let mut guard = shard.write();
        let current = guard
            .get_mut(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        // Mutate a copy so cache and disk advance together or not at all —
        // a failed persist must not leave the cache ahead of the disk.
        let mut updated = current.clone();
        f(&mut updated)?;
        let generation = self.write_segment(epoch_id, &updated)?;
        let old = self.commit(epoch_id, generation)?;
        *current = updated;
        drop(guard);
        self.remove_superseded(epoch_id, old);
        Ok(())
    }

    fn epoch_ids(&self) -> Vec<u64> {
        self.cache.epoch_ids()
    }

    fn epoch_count(&self) -> usize {
        self.cache.epoch_count()
    }

    fn total_rows(&self) -> usize {
        self.cache.total_rows()
    }

    fn shard_count(&self) -> usize {
        self.cache.shard_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch_store::{EpochMetadata, EpochStore};
    use crate::table::EncryptedRow;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch root; removed on drop.
    struct ScratchRoot(PathBuf);

    impl ScratchRoot {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "concealer-disk-{tag}-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            ScratchRoot(dir)
        }
    }

    impl Drop for ScratchRoot {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn row(key: &[u8], tag: u8) -> EncryptedRow {
        EncryptedRow {
            index_key: key.to_vec(),
            filters: vec![vec![tag; 16]],
            payload: vec![tag; 48],
        }
    }

    fn sample_rows(n: u64, salt: u8) -> Vec<EncryptedRow> {
        (0..n)
            .map(|i| row(&[salt, (i >> 8) as u8, i as u8], (i % 251) as u8))
            .collect()
    }

    fn sample_meta(salt: u8) -> EpochMetadata {
        EpochMetadata {
            enc_cell_id: vec![salt, 1, 2],
            enc_c_tuple: vec![salt, 3],
            enc_tags: vec![vec![salt], vec![salt, salt]],
            advertised_rows: 40,
        }
    }

    fn disk_store(root: &Path) -> EpochStore {
        EpochStore::with_backend(Arc::new(DiskEpochStore::open(root).unwrap()))
    }

    #[test]
    fn survives_drop_and_reopen() {
        let scratch = ScratchRoot::new("reopen");
        {
            let store = disk_store(&scratch.0);
            assert_eq!(store.backend_kind(), "disk");
            store
                .ingest_epoch(0, sample_rows(40, 1), sample_meta(1))
                .unwrap();
            store
                .ingest_epoch(3600, sample_rows(25, 2), sample_meta(2))
                .unwrap();
        }
        let store = disk_store(&scratch.0);
        assert_eq!(store.epoch_ids(), vec![0, 3600]);
        assert_eq!(store.total_rows(), 65);
        assert_eq!(store.metadata(3600).unwrap(), sample_meta(2));
        // Row ids (and thus the adversary trace) survive the reload.
        let hit = store.fetch_by_trapdoor(0, &[1, 0, 5]).unwrap();
        assert!(hit.is_some());
        let summary = store.observer().summary();
        assert_eq!(summary.fetch_frequency.keys().next(), Some(&(0, 5)));
    }

    #[test]
    fn rewrites_persist_across_reopen() {
        let scratch = ScratchRoot::new("rewrite");
        {
            let store = disk_store(&scratch.0);
            store
                .ingest_epoch(7, sample_rows(10, 3), sample_meta(3))
                .unwrap();
            store
                .rewrite_rows(7, vec![(vec![3, 0, 4], row(&[9, 9, 9], 0xEE))])
                .unwrap();
            store.update_tags(7, vec![(0, vec![0xAB])]).unwrap();
        }
        let store = disk_store(&scratch.0);
        assert_eq!(store.rewrite_count(7).unwrap(), 1);
        assert!(store.fetch_by_trapdoor(7, &[9, 9, 9]).unwrap().is_some());
        assert!(store.fetch_by_trapdoor(7, &[3, 0, 4]).unwrap().is_none());
        assert_eq!(store.metadata(7).unwrap().enc_tags[0], vec![0xAB]);
        // Exactly one live segment file per epoch (superseded gens removed).
        let live: Vec<_> = fs::read_dir(scratch.0.join(SEGMENT_DIR)).unwrap().collect();
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn failed_update_leaves_store_unchanged() {
        let scratch = ScratchRoot::new("failedupdate");
        let store = disk_store(&scratch.0);
        store
            .ingest_epoch(1, sample_rows(10, 1), sample_meta(1))
            .unwrap();
        let err = store.replace_epoch_rows(1, sample_rows(9, 2), None);
        assert!(matches!(err, Err(StorageError::CardinalityMismatch { .. })));
        assert_eq!(store.rewrite_count(1).unwrap(), 0);
        assert!(store.fetch_by_trapdoor(1, &[1, 0, 1]).unwrap().is_some());
    }

    #[test]
    fn torn_committed_segment_is_truncated_and_dropped() {
        let scratch = ScratchRoot::new("torn");
        let seg_path;
        {
            let disk = Arc::new(DiskEpochStore::open(&scratch.0).unwrap());
            seg_path = {
                let store = EpochStore::with_backend(disk.clone());
                store
                    .ingest_epoch(0, sample_rows(30, 1), sample_meta(1))
                    .unwrap();
                store
                    .ingest_epoch(3600, sample_rows(30, 2), sample_meta(2))
                    .unwrap();
                disk.segment_path(3600).unwrap()
            };
        }
        // Tear the committed segment mid-file, as a crash or disk fault
        // would.
        let full = fs::read(&seg_path).unwrap();
        let cut = full.len() * 2 / 3;
        let f = fs::OpenOptions::new().write(true).open(&seg_path).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        let disk = DiskEpochStore::open(&scratch.0).unwrap();
        let store = EpochStore::with_backend(Arc::new(disk));
        assert_eq!(
            store.epoch_ids(),
            vec![0],
            "the torn epoch must be dropped, the intact one recovered"
        );
        // The torn tail was truncated back to a frame boundary.
        let remaining = fs::read(&seg_path).unwrap();
        assert!(remaining.len() <= cut);
        assert!(matches!(
            segment::decode(&remaining),
            DecodeOutcome::Torn { valid_len } if valid_len as usize == remaining.len()
        ));
        // Reopening again is stable: same surviving epochs.
        drop(store);
        let store = disk_store(&scratch.0);
        assert_eq!(store.epoch_ids(), vec![0]);
        assert!(store.fetch_by_trapdoor(0, &[1, 0, 1]).unwrap().is_some());
    }

    #[test]
    fn uncommitted_segment_file_is_removed_on_open() {
        let scratch = ScratchRoot::new("uncommitted");
        {
            let store = disk_store(&scratch.0);
            store
                .ingest_epoch(0, sample_rows(5, 1), sample_meta(1))
                .unwrap();
        }
        // Simulate a crash between segment write and manifest swap: a
        // complete segment file for an epoch the manifest never committed.
        let stray = scratch.0.join(SEGMENT_DIR).join("ep-9999-g77.seg");
        fs::write(&stray, b"CSG1 not really a segment").unwrap();
        let store = disk_store(&scratch.0);
        assert_eq!(store.epoch_ids(), vec![0]);
        assert!(!stray.exists(), "stray uncommitted segment must be removed");
    }

    #[test]
    fn segment_name_parsing() {
        assert_eq!(
            parse_segment_name(Path::new("/x/ep-3600-g12.seg")),
            Some((3600, 12))
        );
        assert_eq!(parse_segment_name(Path::new("/x/ep-3600.seg")), None);
        assert_eq!(parse_segment_name(Path::new("/x/MANIFEST")), None);
    }
}
