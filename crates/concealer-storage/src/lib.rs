//! Storage substrate for the Concealer system.
//!
//! The paper stores the encrypted relation in MySQL and relies on the
//! DBMS's ordinary B-tree index over the `Index(L,T)` column — this is one
//! of Concealer's headline advantages over specialized SSE index structures
//! (PB-tree, IB-tree): *no custom index traversal protocol is needed at the
//! server*. This crate provides the equivalent embedded substrate:
//!
//! * [`btree`] — a from-scratch B+Tree mapping arbitrary byte keys (the
//!   deterministic `Index` ciphertexts) to row locations, with bulk load,
//!   point lookup and ordered iteration. It plays the role of the MySQL
//!   index.
//! * [`table`] — [`table::EncryptedTable`], the encrypted relation: an
//!   append-only heap of [`table::EncryptedRow`]s plus the B+Tree index over
//!   the `Index` column.
//! * [`epoch_store`] — [`epoch_store::EpochStore`], the service provider's
//!   database: one table segment per epoch/round plus the encrypted
//!   metadata blobs (`Ecell_id[]`, `Ec_tuple[]`, verifiable tags) DP ships
//!   alongside the tuples, with support for atomically replacing an epoch's
//!   rows (needed by the §6 dynamic-insertion re-encryption protocol).
//! * [`backend`] — [`backend::StorageBackend`], the pluggable persistence
//!   seam behind the store: the in-memory [`backend::MemoryBackend`]
//!   (default) and the crash-safe on-disk [`disk::DiskEpochStore`] serve
//!   the same query path with bit-identical answers and traces.
//! * [`disk`] — the durable backend: one append-only segment file per
//!   epoch (LEB128 frames, footer checksum), a manifest for atomic epoch
//!   commit, and reopen-time recovery that truncates torn tails.
//! * [`observer`] — [`observer::AccessObserver`]: everything the untrusted
//!   service provider can see (which trapdoors were issued, which rows were
//!   fetched, how many bytes were transferred). The security tests assert
//!   volume-hiding and partial access-pattern-hiding directly against this
//!   trace, which is a stronger evaluation hook than the paper's informal
//!   argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod btree;
pub mod disk;
pub mod epoch_store;
pub mod observer;
pub mod table;

mod error;

pub use backend::{shard_of_epoch, MemoryBackend, RewrapFn, StorageBackend};
pub use btree::BPlusTree;
pub use disk::DiskEpochStore;
pub use epoch_store::{EpochMetadata, EpochStore, StoredEpoch};
pub use error::StorageError;
pub use observer::{AccessEvent, AccessObserver, ObserverSummary};
pub use table::{EncryptedRow, EncryptedTable, RowId};

/// Convenience alias for fallible storage calls.
pub type Result<T> = std::result::Result<T, StorageError>;
