//! The pluggable persistence layer behind [`crate::EpochStore`].
//!
//! [`StorageBackend`] is the seam between *what the service provider
//! stores* (sealed epoch segments: encrypted rows, encrypted metadata,
//! rewrite counters) and *where it stores them*. The query path, the
//! observer instrumentation and the access-pattern guarantees all live in
//! [`crate::EpochStore`], which drives whichever backend it was built on —
//! so every backend is, by construction, adversary-visible storage whose
//! contents the hash-chain verification layer keeps honest.
//!
//! Two implementations ship:
//!
//! * [`MemoryBackend`] — the default: epochs live in a 16-way sharded
//!   in-process map and vanish with the process.
//! * [`crate::DiskEpochStore`] — crash-safe on-disk segments with a
//!   manifest for atomic epoch commit (see [`crate::disk`]).

use crate::epoch_store::StoredEpoch;
use crate::{Result, StorageError};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Number of independently locked epoch shards. Epochs hash to a fixed
/// shard, so queries touching different epochs never contend on one lock
/// and parallel batch fetches scale with the shard count rather than
/// serializing on a single store-wide `RwLock`. Every backend keeps this
/// discipline so `ingest_epoch(&self)` stays concurrent regardless of
/// where the bytes land.
pub(crate) const EPOCH_SHARDS: usize = 16;

/// The shard (out of `total`) owning `epoch_id`.
///
/// This is the repository's *one* epoch-sharding discipline: the in-process
/// lock shards below, the `--shard <i>/<t>` slice a multi-node
/// `concealer-server` process owns, and the `concealer-router`'s fan-out
/// all reduce an epoch id through this exact function, so a deployment can
/// never disagree with itself about which process holds an epoch. Epoch
/// ids are epoch *start times* (multiples of the epoch duration), so they
/// are mixed before reduction — a plain modulo would park every epoch of a
/// deployment whose duration is divisible by the shard count on one shard.
#[must_use]
pub fn shard_of_epoch(epoch_id: u64, total: usize) -> usize {
    assert!(total > 0, "shard total must be positive");
    let mixed = epoch_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 32) as usize % total
}

/// The epoch map, split into [`EPOCH_SHARDS`] independently locked shards.
/// Shared by the in-memory backend and the disk backend's resident cache.
#[derive(Debug)]
pub(crate) struct ShardedEpochs {
    shards: Vec<RwLock<BTreeMap<u64, StoredEpoch>>>,
}

impl Default for ShardedEpochs {
    fn default() -> Self {
        ShardedEpochs {
            shards: (0..EPOCH_SHARDS).map(|_| RwLock::default()).collect(),
        }
    }
}

impl ShardedEpochs {
    /// The shard owning `epoch_id`. Epoch ids are epoch *start times*
    /// (multiples of the epoch duration), so they are mixed before
    /// reduction — a plain modulo would park every epoch of a deployment
    /// whose duration is divisible by the shard count on one shard.
    pub(crate) fn shard(&self, epoch_id: u64) -> &RwLock<BTreeMap<u64, StoredEpoch>> {
        &self.shards[shard_of_epoch(epoch_id, self.shards.len())]
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn epoch_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().keys().copied().collect::<Vec<u64>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    pub(crate) fn epoch_count(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    pub(crate) fn total_rows(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().values().map(|e| e.table.len()).sum::<usize>())
            .sum()
    }

    pub(crate) fn with_epoch(&self, epoch_id: u64, f: &mut dyn FnMut(&StoredEpoch)) -> Result<()> {
        let guard = self.shard(epoch_id).read();
        let epoch = guard
            .get(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        f(epoch);
        Ok(())
    }
}

/// Pluggable storage of sealed epoch segments, keyed by epoch id.
///
/// Implementations persist whole [`StoredEpoch`] values — the encrypted
/// table, the encrypted metadata (bin vectors + verifiable tags) and the
/// rewrite counter — and must uphold two contracts the query layer relies
/// on:
///
/// * **Atomic visibility** — an epoch either is fully stored (and
///   enumerable, fetchable, durable where applicable) or absent; readers
///   never observe a half-written segment.
/// * **Shard discipline** — operations on different epochs must not
///   serialize on a single store-wide lock, so concurrent ingest and
///   parallel batch fetches scale ([`StorageBackend::shard_count`] reports
///   the concurrency the backend provides).
///
/// The re-wrap callback [`StorageBackend::rewrap_keys`] drives:
/// `(epoch_id, new_generation, old_blob)` → the blob re-wrapped under the
/// new generation.
pub type RewrapFn<'a> = dyn FnMut(u64, u64, &[u8]) -> Result<Vec<u8>> + 'a;

/// Backends store ciphertext only and are *untrusted*: nothing here is
/// security-sensitive, because tampering (on disk or in memory) is caught
/// by the enclave's hash-chain verification at fetch time.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Short identifier for diagnostics: `"memory"`, `"disk"`, …
    fn kind(&self) -> &'static str;

    /// Insert or replace a whole epoch segment. When the call returns
    /// `Ok`, the epoch is committed (durably, for persistent backends).
    fn put_epoch(&self, epoch_id: u64, epoch: StoredEpoch) -> Result<()>;

    /// Run a closure over a stored epoch under the shard's read lock.
    /// Returns [`StorageError::UnknownEpoch`] without invoking the closure
    /// when the epoch is absent.
    fn with_epoch(&self, epoch_id: u64, f: &mut dyn FnMut(&StoredEpoch)) -> Result<()>;

    /// Mutate a stored epoch under the shard's write lock. The mutation is
    /// all-or-nothing: when the closure errors, the stored epoch is
    /// unchanged; when it succeeds, the new state is committed (durably,
    /// for persistent backends) before the call returns.
    fn update_epoch(
        &self,
        epoch_id: u64,
        f: &mut dyn FnMut(&mut StoredEpoch) -> Result<()>,
    ) -> Result<()>;

    /// Epoch ids currently stored, ascending.
    fn epoch_ids(&self) -> Vec<u64>;

    /// Number of epochs stored.
    fn epoch_count(&self) -> usize;

    /// Total rows across all epochs (real + fake; indistinguishable here).
    fn total_rows(&self) -> usize;

    /// Number of independently locked epoch shards.
    fn shard_count(&self) -> usize;

    /// Whether this backend was opened as a read-only replica following
    /// another process's store. Replicas refuse `put_epoch` /
    /// `update_epoch` with [`StorageError::ReadOnly`] until
    /// [`StorageBackend::promote`]d. Backends without a replica mode are
    /// always writable.
    fn read_only(&self) -> bool {
        false
    }

    /// Re-scan durable state for epochs committed by another process
    /// since open (the replica's watch over the writer's manifest).
    /// Returns the epoch ids that became newly visible; backends without
    /// shared durable state see nothing new, ever.
    fn refresh(&self) -> Result<Vec<u64>> {
        Ok(Vec::new())
    }

    /// Promote a read-only replica to writer: take ownership of the store
    /// root (running the writer's recovery pass over it) and accept
    /// mutations from now on. A no-op on backends that are already
    /// writable.
    fn promote(&self) -> Result<()> {
        Ok(())
    }

    /// A monotonic commit-point version for the store (the durable
    /// manifest's highest committed segment generation). Replica lag is
    /// the difference between the writer's and the replica's values.
    /// Backends without a durable commit point report 0.
    fn store_generation(&self) -> u64 {
        0
    }

    /// Record a wrapped per-epoch seal secret in the store's key vault:
    /// "epoch `epoch_id`'s seal secret, wrapped under master-key
    /// generation `generation`". Backends without durable lifecycle state
    /// accept and discard it — key material never *needs* the vault; it
    /// exists so a durable store can prove which master generation its
    /// epochs are readable under and so rotation has something to re-wrap.
    fn seal_key(&self, epoch_id: u64, generation: u64, wrapped: Vec<u8>) -> Result<()> {
        let _ = (epoch_id, generation, wrapped);
        Ok(())
    }

    /// The vault entry for an epoch: `(generation, wrapped blob)`, or
    /// `None` when the epoch has no entry (ingested before the vault
    /// existed, or a backend without one).
    fn sealed_key(&self, epoch_id: u64) -> Option<(u64, Vec<u8>)> {
        let _ = epoch_id;
        None
    }

    /// The master-key generation rotation has most recently *begun* on
    /// this store. Vault entries may lag this counter mid-rotation; they
    /// may never lead it.
    fn key_generation(&self) -> u64 {
        0
    }

    /// Durably begin rotating to `new_generation`: bump the generation
    /// counter *before* any entry is re-wrapped, so a crash mid-rotation
    /// leaves entries behind the counter (a legal, resumable state) and
    /// never ahead of it. Bumping to a generation at or below the current
    /// one is a no-op (idempotent resume).
    fn begin_key_rotation(&self, new_generation: u64) -> Result<()> {
        let _ = new_generation;
        Ok(())
    }

    /// Re-wrap up to `limit` vault entries still behind the current key
    /// generation, calling `rewrap(epoch_id, new_generation, old_blob)`
    /// for each — `new_generation` is the generation the backend will
    /// record for the returned blob — and committing every new blob
    /// durably before the next. Returns how many entries were re-wrapped;
    /// `0` means the rotation is complete. Bounded batches keep each
    /// manifest commit small, so the background rotation job never holds
    /// a lock for long and queries are never blocked on it.
    fn rewrap_keys(&self, rewrap: &mut RewrapFn<'_>, limit: usize) -> Result<usize> {
        let _ = (rewrap, limit);
        Ok(0)
    }

    /// Number of vault entries still wrapped under a generation older than
    /// [`StorageBackend::key_generation`] — `0` when no rotation is in
    /// flight.
    fn rotation_pending(&self) -> usize {
        0
    }
}

/// The default backend: epochs in a sharded in-process map, gone when the
/// process exits. This is the seed implementation the paper's evaluation
/// ran against; [`crate::DiskEpochStore`] adds durability with identical
/// observable behavior.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    epochs: ShardedEpochs,
}

impl MemoryBackend {
    /// Create an empty in-memory backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn put_epoch(&self, epoch_id: u64, epoch: StoredEpoch) -> Result<()> {
        self.epochs.shard(epoch_id).write().insert(epoch_id, epoch);
        Ok(())
    }

    fn with_epoch(&self, epoch_id: u64, f: &mut dyn FnMut(&StoredEpoch)) -> Result<()> {
        self.epochs.with_epoch(epoch_id, f)
    }

    fn update_epoch(
        &self,
        epoch_id: u64,
        f: &mut dyn FnMut(&mut StoredEpoch) -> Result<()>,
    ) -> Result<()> {
        let mut guard = self.epochs.shard(epoch_id).write();
        let epoch = guard
            .get_mut(&epoch_id)
            .ok_or(StorageError::UnknownEpoch { epoch_id })?;
        f(epoch)
    }

    fn epoch_ids(&self) -> Vec<u64> {
        self.epochs.epoch_ids()
    }

    fn epoch_count(&self) -> usize {
        self.epochs.epoch_count()
    }

    fn total_rows(&self) -> usize {
        self.epochs.total_rows()
    }

    fn shard_count(&self) -> usize {
        self.epochs.shard_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch_store::EpochMetadata;
    use crate::table::{EncryptedRow, EncryptedTable};

    fn epoch(n: u64) -> StoredEpoch {
        let rows: Vec<EncryptedRow> = (0..n)
            .map(|i| EncryptedRow {
                index_key: i.to_be_bytes().to_vec(),
                filters: vec![],
                payload: vec![i as u8; 8],
            })
            .collect();
        StoredEpoch {
            table: EncryptedTable::bulk_load(rows).unwrap(),
            metadata: EpochMetadata::default(),
            rewrite_count: 0,
        }
    }

    #[test]
    fn memory_backend_round_trip() {
        let backend = MemoryBackend::new();
        assert_eq!(backend.kind(), "memory");
        assert_eq!(backend.epoch_count(), 0);
        backend.put_epoch(3, epoch(5)).unwrap();
        backend.put_epoch(9, epoch(2)).unwrap();
        assert_eq!(backend.epoch_ids(), vec![3, 9]);
        assert_eq!(backend.total_rows(), 7);

        let mut seen = 0;
        backend
            .with_epoch(3, &mut |e| seen = e.table.len())
            .unwrap();
        assert_eq!(seen, 5);
        assert!(matches!(
            backend.with_epoch(4, &mut |_| {}),
            Err(StorageError::UnknownEpoch { epoch_id: 4 })
        ));
    }

    #[test]
    fn update_epoch_is_all_or_nothing_on_closure_error() {
        let backend = MemoryBackend::new();
        backend.put_epoch(1, epoch(4)).unwrap();
        let err = backend.update_epoch(1, &mut |_| Err(StorageError::DuplicateKey));
        assert_eq!(err, Err(StorageError::DuplicateKey));
        backend
            .update_epoch(1, &mut |e| {
                e.rewrite_count += 1;
                Ok(())
            })
            .unwrap();
        let mut count = 0;
        backend
            .with_epoch(1, &mut |e| count = e.rewrite_count)
            .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn shard_mixing_spreads_epoch_multiples() {
        let sharded = ShardedEpochs::default();
        // Epoch ids that are multiples of a duration divisible by the shard
        // count must not all land on one shard.
        let shards: std::collections::BTreeSet<usize> = (0..32u64)
            .map(|i| {
                let id = i * 3600;
                sharded.shard(id) as *const _ as usize
            })
            .collect();
        assert!(shards.len() > 1);
    }
}
