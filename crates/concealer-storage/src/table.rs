//! The encrypted relation: rows of opaque ciphertext columns plus a B+Tree
//! index over the `Index` column.
//!
//! One [`EncryptedTable`] holds the tuples of a single epoch/round segment
//! (the paper sends data epoch by epoch). Rows follow the layout of Table 2c
//! of the paper: a set of encrypted *filter* columns (`E_k(l||t)`,
//! `E_k(o||t)`), an encrypted *payload* column (`E_k(o||l||t)` or, for
//! TPC-H, the concatenation of the non-indexed attributes), and the
//! *Index* column `E_k(cid||counter)` on which the DBMS builds its index.

use crate::{BPlusTree, Result, StorageError};
use serde::{Deserialize, Serialize};

/// Identifier of a row within one table segment.
pub type RowId = u64;

/// One encrypted tuple as shipped by the data provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedRow {
    /// The searchable `Index` column: `E_k(cid || counter)` for real tuples
    /// or `E_k(f || j)` for fake tuples. Unique within an epoch.
    pub index_key: Vec<u8>,
    /// Encrypted filter columns (e.g. `E_k(l||t)`, `E_k(o||t)`); the enclave
    /// string-matches trapdoor filters against these without decrypting.
    pub filters: Vec<Vec<u8>>,
    /// The encrypted full tuple payload (decrypted only when the query needs
    /// attribute values, e.g. sum/min/max).
    pub payload: Vec<u8>,
}

impl EncryptedRow {
    /// Total ciphertext bytes in this row (used for transfer accounting).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.index_key.len() + self.filters.iter().map(Vec::len).sum::<usize>() + self.payload.len()
    }
}

/// An encrypted, index-backed table segment.
#[derive(Debug, Clone, Default)]
pub struct EncryptedTable {
    rows: Vec<EncryptedRow>,
    index: BPlusTree,
}

impl EncryptedTable {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-load a batch of rows (one epoch's shipment). The DBMS builds the
    /// index on the `Index` column as part of the load, exactly as the paper
    /// describes ("SP inserts the data into DBMS that creates/modifies the
    /// index").
    pub fn bulk_load(rows: Vec<EncryptedRow>) -> Result<Self> {
        let mut table = EncryptedTable::new();
        for row in rows {
            table.insert(row)?;
        }
        Ok(table)
    }

    /// Insert a single row, updating the index.
    pub fn insert(&mut self, row: EncryptedRow) -> Result<()> {
        let row_id = self.rows.len() as RowId;
        self.index.insert(&row.index_key, row_id)?;
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Exact-match lookup by `Index` value (a trapdoor). Returns the row id
    /// and a reference to the row.
    #[must_use]
    pub fn lookup(&self, trapdoor: &[u8]) -> Option<(RowId, &EncryptedRow)> {
        let row_id = self.index.get(trapdoor)?;
        Some((row_id, &self.rows[row_id as usize]))
    }

    /// Fetch a row by id.
    pub fn row(&self, row_id: RowId) -> Result<&EncryptedRow> {
        self.rows
            .get(row_id as usize)
            .ok_or(StorageError::InvalidRowId {
                row_id,
                table_len: self.rows.len() as u64,
            })
    }

    /// Iterate over all rows (used by full-scan baselines).
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &EncryptedRow)> + '_ {
        self.rows.iter().enumerate().map(|(i, r)| (i as RowId, r))
    }

    /// Total ciphertext bytes in the segment.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.rows.iter().map(EncryptedRow::byte_size).sum()
    }

    /// Index statistics: `(height, node_count)` — a proxy for the index
    /// maintenance cost that the paper's Exp 1 throughput measurement
    /// includes implicitly.
    #[must_use]
    pub fn index_stats(&self) -> (usize, usize) {
        (self.index.height(), self.index.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(key: u64, payload: u8) -> EncryptedRow {
        EncryptedRow {
            index_key: key.to_be_bytes().to_vec(),
            filters: vec![vec![payload; 8], vec![payload ^ 0xff; 8]],
            payload: vec![payload; 32],
        }
    }

    #[test]
    fn bulk_load_and_lookup() {
        let rows: Vec<EncryptedRow> = (0..1000u64).map(|i| row(i, (i % 251) as u8)).collect();
        let table = EncryptedTable::bulk_load(rows.clone()).unwrap();
        assert_eq!(table.len(), 1000);
        for (i, r) in rows.iter().enumerate() {
            let (rid, found) = table.lookup(&r.index_key).unwrap();
            assert_eq!(rid, i as u64);
            assert_eq!(found, r);
        }
        assert!(table.lookup(b"not a key").is_none());
    }

    #[test]
    fn duplicate_index_value_rejected() {
        let mut table = EncryptedTable::new();
        table.insert(row(1, 1)).unwrap();
        assert_eq!(table.insert(row(1, 2)), Err(StorageError::DuplicateKey));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn row_by_id_bounds_checked() {
        let table = EncryptedTable::bulk_load((0..5u64).map(|i| row(i, 0)).collect()).unwrap();
        assert!(table.row(4).is_ok());
        assert!(matches!(
            table.row(5),
            Err(StorageError::InvalidRowId {
                row_id: 5,
                table_len: 5
            })
        ));
    }

    #[test]
    fn scan_visits_all_rows_in_insertion_order() {
        let rows: Vec<EncryptedRow> = (0..50u64).map(|i| row(i * 7 % 50, i as u8)).collect();
        let table = EncryptedTable::bulk_load(rows.clone()).unwrap();
        let scanned: Vec<EncryptedRow> = table.scan().map(|(_, r)| r.clone()).collect();
        assert_eq!(scanned, rows);
    }

    #[test]
    fn byte_size_accounts_all_columns() {
        let r = row(1, 3);
        assert_eq!(r.byte_size(), 8 + 8 + 8 + 32);
        let table = EncryptedTable::bulk_load(vec![row(1, 3), row(2, 4)]).unwrap();
        assert_eq!(table.byte_size(), 2 * (8 + 8 + 8 + 32));
    }

    #[test]
    fn index_stats_grow_with_table() {
        let small = EncryptedTable::bulk_load((0..10u64).map(|i| row(i, 0)).collect()).unwrap();
        let large = EncryptedTable::bulk_load((0..5000u64).map(|i| row(i, 0)).collect()).unwrap();
        assert!(large.index_stats().0 >= small.index_stats().0);
        assert!(large.index_stats().1 > small.index_stats().1);
    }
}
