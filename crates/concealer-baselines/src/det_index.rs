//! Deterministic-encryption-with-index baseline (the "DET" row of
//! Table 1).
//!
//! Systems like Always Encrypted index deterministic ciphertexts directly:
//! queries are fast (the index returns exactly the matching rows) and
//! insertion is cheap, but the number of returned rows — the output size —
//! is visible to the adversary, and the ciphertext itself reveals the data
//! distribution because equal plaintexts encrypt identically. This baseline
//! exists so the ablation benches can quantify exactly what Concealer's
//! volume hiding costs relative to "just use DET". Queries go through the
//! [`SecureIndex`] trait like every other backend; the epoch duration and
//! time granularity are fixed at construction so `execute` needs no
//! per-call deployment parameters.

use std::collections::{BTreeMap, HashMap};

use concealer_core::api::{IndexStats, SecureIndex};
use concealer_core::codec;
use concealer_core::query::QueryAnswer;
use concealer_core::{Query, Record};
use concealer_crypto::{EpochId, EpochKey, MasterKey};
use rand::RngCore;

use crate::cleartext::{aggregate_records, record_matches};

/// The DET + index baseline.
pub struct DetIndexBaseline {
    master: MasterKey,
    /// Non-unique index emulation: filter token → encrypted payloads.
    epochs: BTreeMap<u64, DetEpoch>,
    time_granularity: u64,
    epoch_duration: u64,
}

struct DetEpoch {
    index: HashMap<Vec<u8>, Vec<Vec<u8>>>,
    rows: usize,
}

impl std::fmt::Debug for DetIndexBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetIndexBaseline")
            .field("epochs", &self.epochs.len())
            .finish_non_exhaustive()
    }
}

impl DetIndexBaseline {
    /// Create a baseline with the given filter-time granularity and epoch
    /// duration (matching the Concealer deployment it is compared against).
    #[must_use]
    pub fn new(master: MasterKey, time_granularity: u64, epoch_duration: u64) -> Self {
        DetIndexBaseline {
            master,
            epochs: BTreeMap::new(),
            time_granularity: time_granularity.max(1),
            epoch_duration: epoch_duration.max(1),
        }
    }

    fn key(&self, epoch_start: u64) -> EpochKey {
        self.master.epoch_key(EpochId(epoch_start), 0)
    }

    /// Total rows stored.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.epochs.values().map(|e| e.rows).sum()
    }
}

impl SecureIndex for DetIndexBaseline {
    /// Encrypt and ingest one epoch: the index key is the deterministic
    /// ciphertext of (dims, time granule), exactly the value a query
    /// recomputes.
    fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        _rng: &mut dyn RngCore,
    ) -> concealer_core::Result<()> {
        let key = self.key(epoch_start);
        let mut index: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        for r in records {
            let granule = r.time / self.time_granularity;
            let token = key.det.encrypt(&codec::filter_dims_plain(&r.dims, granule));
            let payload = key
                .det
                .encrypt(&codec::payload_plain(&r.dims, r.time, &r.payload));
            index.entry(token).or_default().push(payload);
        }
        self.epochs.insert(
            epoch_start,
            DetEpoch {
                index,
                rows: records.len(),
            },
        );
        Ok(())
    }

    /// Execute a query with pinned dims. `rows_fetched` is the number of
    /// rows the (untrusted) index lookup returned — the leaked output size;
    /// every fetched row is also decrypted.
    fn execute(&self, query: &Query) -> concealer_core::Result<QueryAnswer> {
        let Some(dims) = query.predicate.dims() else {
            return Err(concealer_core::CoreError::InvalidQuery {
                reason: "DET baseline requires pinned indexed attributes",
            });
        };
        let (t_start, t_end) = query.predicate.time_span();
        let mut fetched = 0usize;
        let mut epochs_touched = 0usize;
        let mut matching: Vec<Record> = Vec::new();

        for (&epoch_start, epoch) in &self.epochs {
            let window_end = epoch_start + self.epoch_duration;
            if t_start >= window_end || t_end < epoch_start {
                continue;
            }
            epochs_touched += 1;
            let key = self.key(epoch_start);
            let lo = t_start.max(epoch_start) / self.time_granularity;
            let hi = t_end.min(window_end - 1) / self.time_granularity;
            for granule in lo..=hi {
                let token = key.det.encrypt(&codec::filter_dims_plain(dims, granule));
                if let Some(payloads) = epoch.index.get(&token) {
                    fetched += payloads.len();
                    for p in payloads {
                        let plain = key
                            .det
                            .decrypt(p)
                            .map_err(concealer_core::CoreError::Crypto)?;
                        let (dims, time, payload) = codec::decode_payload_plain(&plain)?;
                        let record = Record {
                            dims,
                            time,
                            payload,
                        };
                        if record_matches(&record, &query.predicate) {
                            matching.push(record);
                        }
                    }
                }
            }
        }
        Ok(QueryAnswer {
            value: aggregate_records(matching.iter(), query),
            rows_fetched: fetched,
            rows_decrypted: fetched,
            verified: false,
            epochs_touched,
        })
    }

    fn answer_stats(&self) -> IndexStats {
        IndexStats {
            backend: "det-index",
            epochs: self.epochs.len(),
            rows_stored: self.total_rows(),
            volume_hiding: false,
            verifiable: false,
            full_scan_per_query: false,
            bin_cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_core::query::AnswerValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system() -> DetIndexBaseline {
        DetIndexBaseline::new(MasterKey::from_bytes([8u8; 32]), 60, 3600)
    }

    fn records() -> Vec<Record> {
        (0..300)
            .map(|i| Record::spatial(i % 3, i * 10 % 3600, 50 + i % 7))
            .collect()
    }

    fn loaded() -> (DetIndexBaseline, Vec<Record>) {
        let mut det = system();
        let recs = records();
        det.ingest_epoch(0, &recs, &mut StdRng::seed_from_u64(1))
            .unwrap();
        (det, recs)
    }

    #[test]
    fn count_matches_cleartext_and_leaks_volume() {
        let (det, recs) = loaded();
        assert_eq!(det.total_rows(), 300);

        for loc in 0..3 {
            let expected = recs
                .iter()
                .filter(|r| r.dims == [loc] && r.time <= 1799)
                .count() as u64;
            let answer = det
                .execute(&Query::count().at_dims([loc]).between(0, 1799))
                .unwrap();
            assert_eq!(answer.value, AnswerValue::Count(expected));
            // The leak: the number of fetched rows tracks the true count.
            assert_eq!(answer.rows_fetched as u64, expected);
            assert_eq!(answer.rows_decrypted, answer.rows_fetched);
        }
    }

    #[test]
    fn unpinned_dims_rejected() {
        let det = system();
        let q = Query::count().between(0, 10);
        assert!(det.execute(&q).is_err());
    }

    #[test]
    fn point_query_single_granule() {
        let (det, recs) = loaded();
        let target = &recs[10];
        let q = Query::count().at_dims(target.dims.clone()).at(target.time);
        let answer = det.execute(&q).unwrap();
        match answer.value {
            AnswerValue::Count(c) => assert!(c >= 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(answer.rows_fetched >= 1);
    }

    #[test]
    fn stats_describe_the_backend() {
        let (det, _) = loaded();
        let stats = det.answer_stats();
        assert_eq!(stats.backend, "det-index");
        assert_eq!(stats.rows_stored, 300);
        assert!(!stats.volume_hiding, "DET leaks output sizes");
        assert!(!stats.full_scan_per_query);
    }
}
