//! Opaque-style full-scan baseline (the comparison system of Exps 9/10).
//!
//! Opaque (NSDI'17) executes analytics over encrypted data inside SGX but
//! keeps no searchable index: every query reads the *entire* relation into
//! the enclave, decrypts it, and filters there. The paper reports >10
//! minutes per query at 136M rows versus sub-second for Concealer. This
//! module reproduces that architecture against the same
//! [`concealer_storage::EpochStore`] substrate so the benchmark comparison
//! is apples-to-apples: same storage layer, same crypto, same enclave
//! simulation — the only difference is "scan everything" versus "fetch one
//! bin through the index". Queries go through the [`SecureIndex`] trait
//! like every other backend.

use concealer_core::api::{IndexStats, SecureIndex};
use concealer_core::codec;
use concealer_core::query::QueryAnswer;
use concealer_core::{Query, Record};
use concealer_crypto::{EpochId, MasterKey};
use concealer_enclave::{Enclave, EnclaveConfig, SideChannelMeter, UserRegistry};
use concealer_storage::{EncryptedRow, EpochMetadata, EpochStore};
use rand::RngCore;

use crate::cleartext::{aggregate_records, record_matches};

/// The Opaque-style baseline system.
pub struct OpaqueBaseline {
    master: MasterKey,
    enclave: Enclave,
    store: EpochStore,
    epoch_ids: Vec<u64>,
}

impl std::fmt::Debug for OpaqueBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpaqueBaseline")
            .field("epochs", &self.epoch_ids.len())
            .finish_non_exhaustive()
    }
}

impl OpaqueBaseline {
    /// Create a baseline deployment with a fresh key and store.
    #[must_use]
    pub fn new<R: RngCore>(rng: &mut R) -> Self {
        let master = MasterKey::generate(rng);
        let enclave = Enclave::provision(
            master.clone(),
            UserRegistry::new(),
            EnclaveConfig::default(),
        );
        OpaqueBaseline {
            master,
            enclave,
            store: EpochStore::new(),
            epoch_ids: Vec::new(),
        }
    }

    /// The storage observer (the adversary's view).
    #[must_use]
    pub fn store(&self) -> &EpochStore {
        &self.store
    }

    /// The enclave's side-channel meter.
    #[must_use]
    pub fn meter(&self) -> &SideChannelMeter {
        self.enclave.meter()
    }
}

impl SecureIndex for OpaqueBaseline {
    /// Encrypt and ingest one epoch. Opaque keeps no index, so the `Index`
    /// column is just a unique row counter.
    fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        _rng: &mut dyn RngCore,
    ) -> concealer_core::Result<()> {
        let key = self.master.epoch_key(EpochId(epoch_start), 0);
        let rows: Vec<EncryptedRow> = records
            .iter()
            .enumerate()
            .map(|(i, r)| EncryptedRow {
                index_key: (i as u64).to_be_bytes().to_vec(),
                filters: Vec::new(),
                payload: key
                    .det
                    .encrypt(&codec::payload_plain(&r.dims, r.time, &r.payload)),
            })
            .collect();
        self.store.ingest_epoch(
            epoch_start,
            rows,
            EpochMetadata {
                advertised_rows: records.len(),
                ..Default::default()
            },
        )?;
        self.epoch_ids.push(epoch_start);
        Ok(())
    }

    /// Execute a query: full scan of every epoch, decrypt in the enclave,
    /// filter, aggregate. `rows_fetched` and `rows_decrypted` both equal
    /// the full relation size — the leakage-free but ruinously expensive
    /// profile the paper compares against.
    fn execute(&self, query: &Query) -> concealer_core::Result<QueryAnswer> {
        let mut scanned = 0usize;
        let mut decrypted = 0usize;
        let mut matching: Vec<Record> = Vec::new();
        for &epoch_id in &self.epoch_ids {
            let key = self.enclave.epoch_key(EpochId(epoch_id), 0);
            let rows = self.store.full_scan(epoch_id)?;
            scanned += rows.len();
            for row in &rows {
                let plain = key
                    .det
                    .decrypt(&row.payload)
                    .map_err(concealer_core::CoreError::Crypto)?;
                decrypted += 1;
                self.enclave.meter().add_decryptions(1);
                let (dims, time, payload) = codec::decode_payload_plain(&plain)?;
                let record = Record {
                    dims,
                    time,
                    payload,
                };
                if record_matches(&record, &query.predicate) {
                    matching.push(record);
                }
            }
        }
        self.store.mark_query_boundary();
        Ok(QueryAnswer {
            value: aggregate_records(matching.iter(), query),
            rows_fetched: scanned,
            rows_decrypted: decrypted,
            verified: false,
            epochs_touched: self.epoch_ids.len(),
        })
    }

    fn answer_stats(&self) -> IndexStats {
        IndexStats {
            backend: "opaque",
            epochs: self.epoch_ids.len(),
            rows_stored: self.store.total_rows(),
            volume_hiding: true,
            verifiable: false,
            full_scan_per_query: true,
            bin_cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_core::query::AnswerValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<Record> {
        (0..200)
            .map(|i| Record::spatial(i % 5, i * 10, 100 + i % 3))
            .collect()
    }

    #[test]
    fn full_scan_query_is_correct_but_reads_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        let records = sample();
        opaque.ingest_epoch(0, &records, &mut rng).unwrap();

        let q = Query::count().at_dims([2]).between(0, 1000);
        let answer = opaque.execute(&q).unwrap();
        let expected = records
            .iter()
            .filter(|r| r.dims == [2] && r.time <= 1000)
            .count() as u64;
        assert_eq!(answer.value, AnswerValue::Count(expected));
        assert_eq!(
            answer.rows_fetched, 200,
            "Opaque must scan the entire relation"
        );
        assert_eq!(
            answer.rows_decrypted, 200,
            "Opaque must decrypt the entire relation"
        );
    }

    #[test]
    fn multiple_epochs_all_scanned() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        opaque.ingest_epoch(0, &sample(), &mut rng).unwrap();
        opaque.ingest_epoch(10_000, &sample(), &mut rng).unwrap();
        let q = Query::count().at_dims([1]).at(10);
        let answer = opaque.execute(&q).unwrap();
        assert_eq!(answer.rows_fetched, 400);
        assert_eq!(answer.epochs_touched, 2);
        // The adversary sees full scans, not selective fetches.
        let summary = opaque.store().observer().summary();
        assert_eq!(summary.full_scans, 2);
        assert_eq!(summary.rows_fetched, 0);
    }

    #[test]
    fn sum_query_matches_cleartext() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        let records = sample();
        opaque.ingest_epoch(0, &records, &mut rng).unwrap();
        let q = Query::sum(0).at_dims([0]).between(0, u64::MAX);
        let expected: u64 = records
            .iter()
            .filter(|r| r.dims == [0])
            .map(|r| r.payload[0])
            .sum();
        assert_eq!(
            opaque.execute(&q).unwrap().value,
            AnswerValue::Number(Some(expected))
        );
    }

    #[test]
    fn stats_describe_the_backend() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        opaque.ingest_epoch(0, &sample(), &mut rng).unwrap();
        let stats = opaque.answer_stats();
        assert_eq!(stats.backend, "opaque");
        assert_eq!(stats.rows_stored, 200);
        assert!(stats.full_scan_per_query);
        assert!(stats.volume_hiding, "a full scan leaks no volumes");
    }
}
