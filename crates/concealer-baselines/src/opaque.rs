//! Opaque-style full-scan baseline (the comparison system of Exps 9/10).
//!
//! Opaque (NSDI'17) executes analytics over encrypted data inside SGX but
//! keeps no searchable index: every query reads the *entire* relation into
//! the enclave, decrypts it, and filters there. The paper reports >10
//! minutes per query at 136M rows versus sub-second for Concealer. This
//! module reproduces that architecture against the same
//! [`concealer_storage::EpochStore`] substrate so the benchmark comparison
//! is apples-to-apples: same storage layer, same crypto, same enclave
//! simulation — the only difference is "scan everything" versus "fetch one
//! bin through the index".

use concealer_core::codec;
use concealer_core::query::{Accumulator, AnswerValue};
use concealer_core::{Query, Record};
use concealer_crypto::{EpochId, MasterKey};
use concealer_enclave::{Enclave, EnclaveConfig, SideChannelMeter, UserRegistry};
use concealer_storage::{EncryptedRow, EpochMetadata, EpochStore};
use rand::RngCore;

use crate::cleartext::{aggregate_records, record_matches};

/// The Opaque-style baseline system.
pub struct OpaqueBaseline {
    master: MasterKey,
    enclave: Enclave,
    store: EpochStore,
    epoch_ids: Vec<u64>,
}

impl std::fmt::Debug for OpaqueBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpaqueBaseline")
            .field("epochs", &self.epoch_ids.len())
            .finish_non_exhaustive()
    }
}

impl OpaqueBaseline {
    /// Create a baseline deployment with a fresh key and store.
    #[must_use]
    pub fn new<R: RngCore>(rng: &mut R) -> Self {
        let master = MasterKey::generate(rng);
        let enclave = Enclave::provision(master.clone(), UserRegistry::new(), EnclaveConfig::default());
        OpaqueBaseline {
            master,
            enclave,
            store: EpochStore::new(),
            epoch_ids: Vec::new(),
        }
    }

    /// The storage observer (the adversary's view).
    #[must_use]
    pub fn store(&self) -> &EpochStore {
        &self.store
    }

    /// The enclave's side-channel meter.
    #[must_use]
    pub fn meter(&self) -> &SideChannelMeter {
        self.enclave.meter()
    }

    /// Encrypt and ingest one epoch. Opaque keeps no index, so the `Index`
    /// column is just a unique row counter.
    pub fn ingest_epoch<R: RngCore>(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        rng: &mut R,
    ) -> concealer_core::Result<()> {
        let _ = rng;
        let key = self.master.epoch_key(EpochId(epoch_start), 0);
        let rows: Vec<EncryptedRow> = records
            .iter()
            .enumerate()
            .map(|(i, r)| EncryptedRow {
                index_key: (i as u64).to_be_bytes().to_vec(),
                filters: Vec::new(),
                payload: key
                    .det
                    .encrypt(&codec::payload_plain(&r.dims, r.time, &r.payload)),
            })
            .collect();
        self.store.ingest_epoch(
            epoch_start,
            rows,
            EpochMetadata {
                advertised_rows: records.len(),
                ..Default::default()
            },
        )?;
        self.epoch_ids.push(epoch_start);
        Ok(())
    }

    /// Execute a query: full scan of every epoch, decrypt in the enclave,
    /// filter, aggregate. Returns the answer plus the number of rows read
    /// and decrypted.
    pub fn query(&self, query: &Query) -> concealer_core::Result<(AnswerValue, usize, usize)> {
        let mut scanned = 0usize;
        let mut decrypted = 0usize;
        let mut matching: Vec<Record> = Vec::new();
        for &epoch_id in &self.epoch_ids {
            let key = self.enclave.epoch_key(EpochId(epoch_id), 0);
            let rows = self.store.full_scan(epoch_id)?;
            scanned += rows.len();
            for row in &rows {
                let plain = key
                    .det
                    .decrypt(&row.payload)
                    .map_err(concealer_core::CoreError::Crypto)?;
                decrypted += 1;
                self.enclave.meter().add_decryptions(1);
                let (dims, time, payload) = codec::decode_payload_plain(&plain)?;
                let record = Record { dims, time, payload };
                if record_matches(&record, &query.predicate) {
                    matching.push(record);
                }
            }
        }
        self.store.mark_query_boundary();
        let answer = aggregate_records(matching.iter(), query);
        Ok((answer, scanned, decrypted))
    }

    /// Merge an [`Accumulator`] API shim for parity with the core engine —
    /// exposed mainly for tests that want the intermediate state.
    #[must_use]
    pub fn empty_accumulator() -> Accumulator {
        Accumulator::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_core::{Aggregate, Predicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<Record> {
        (0..200)
            .map(|i| Record::spatial(i % 5, i * 10, 100 + i % 3))
            .collect()
    }

    #[test]
    fn full_scan_query_is_correct_but_reads_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        let records = sample();
        opaque.ingest_epoch(0, &records, &mut rng).unwrap();

        let q = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![2]),
                observation: None,
                time_start: 0,
                time_end: 1000,
            },
        };
        let (answer, scanned, decrypted) = opaque.query(&q).unwrap();
        let expected = records
            .iter()
            .filter(|r| r.dims == [2] && r.time <= 1000)
            .count() as u64;
        assert_eq!(answer, AnswerValue::Count(expected));
        assert_eq!(scanned, 200, "Opaque must scan the entire relation");
        assert_eq!(decrypted, 200, "Opaque must decrypt the entire relation");
    }

    #[test]
    fn multiple_epochs_all_scanned() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        opaque.ingest_epoch(0, &sample(), &mut rng).unwrap();
        opaque.ingest_epoch(10_000, &sample(), &mut rng).unwrap();
        let q = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Point { dims: vec![1], time: 10 },
        };
        let (_, scanned, _) = opaque.query(&q).unwrap();
        assert_eq!(scanned, 400);
        // The adversary sees full scans, not selective fetches.
        let summary = opaque.store().observer().summary();
        assert_eq!(summary.full_scans, 2);
        assert_eq!(summary.rows_fetched, 0);
    }

    #[test]
    fn sum_query_matches_cleartext() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut opaque = OpaqueBaseline::new(&mut rng);
        let records = sample();
        opaque.ingest_epoch(0, &records, &mut rng).unwrap();
        let q = Query {
            aggregate: Aggregate::Sum { attr: 0 },
            predicate: Predicate::Range {
                dims: Some(vec![0]),
                observation: None,
                time_start: 0,
                time_end: u64::MAX,
            },
        };
        let expected: u64 = records
            .iter()
            .filter(|r| r.dims == [0])
            .map(|r| r.payload[0])
            .sum();
        assert_eq!(opaque.query(&q).unwrap().0, AnswerValue::Number(Some(expected)));
    }
}
