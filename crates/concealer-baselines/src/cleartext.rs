//! Plaintext baseline: no encryption, direct evaluation over the records.
//!
//! This is the "Cleartext processing" row of Table 5 — the latency floor
//! every secure system is compared against. Queries go through the
//! [`SecureIndex`] trait like every other backend.

use concealer_core::api::{IndexStats, SecureIndex};
use concealer_core::query::{Accumulator, AnswerValue, QueryAnswer};
use concealer_core::{Predicate, Query, Record};
use rand::RngCore;
use std::collections::BTreeMap;

/// Whether a record satisfies a predicate (shared by all baselines).
#[must_use]
pub fn record_matches(record: &Record, predicate: &Predicate) -> bool {
    let (t_start, t_end) = predicate.time_span();
    if record.time < t_start || record.time > t_end {
        return false;
    }
    if let Some(dims) = predicate.dims() {
        if record.dims != dims {
            return false;
        }
    }
    if let Some(obs) = predicate.observation() {
        if record.observation() != Some(obs) {
            return false;
        }
    }
    true
}

/// Aggregate a set of matching records exactly as the Concealer enclave
/// would, producing the same [`AnswerValue`] shape.
#[must_use]
pub fn aggregate_records<'a>(
    matching: impl Iterator<Item = &'a Record>,
    query: &Query,
) -> AnswerValue {
    let mut acc = Accumulator::default();
    let attr = match query.aggregate {
        concealer_core::Aggregate::Sum { attr }
        | concealer_core::Aggregate::Min { attr }
        | concealer_core::Aggregate::Max { attr }
        | concealer_core::Aggregate::Average { attr } => attr,
        _ => 0,
    };
    let mut per_location: BTreeMap<u64, u64> = BTreeMap::new();
    for r in matching {
        acc.count += 1;
        let v = r.payload.get(attr).copied().unwrap_or(0);
        acc.sum = acc.sum.wrapping_add(v);
        acc.min = Some(acc.min.map_or(v, |m| m.min(v)));
        acc.max = Some(acc.max.map_or(v, |m| m.max(v)));
        *per_location
            .entry(r.dims.first().copied().unwrap_or(0))
            .or_insert(0) += 1;
        if matches!(query.aggregate, concealer_core::Aggregate::CollectRows) {
            acc.rows.push(r.clone());
        }
    }
    acc.per_location = per_location;
    acc.finish(&query.aggregate)
}

/// The plaintext baseline system.
#[derive(Debug, Clone, Default)]
pub struct CleartextBaseline {
    epochs: BTreeMap<u64, Vec<Record>>,
}

impl CleartextBaseline {
    /// Create an empty baseline store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total rows stored.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.epochs.values().map(Vec::len).sum()
    }
}

impl SecureIndex for CleartextBaseline {
    /// Store one epoch of records as-is (no encryption; `rng` unused).
    fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        _rng: &mut dyn RngCore,
    ) -> concealer_core::Result<()> {
        self.epochs.insert(epoch_start, records.to_vec());
        Ok(())
    }

    /// Execute a query by scanning every stored record. `rows_fetched`
    /// reports the rows examined — the baseline "reads" its whole store,
    /// but decrypts nothing.
    fn execute(&self, query: &Query) -> concealer_core::Result<QueryAnswer> {
        let mut examined = 0usize;
        let matching: Vec<&Record> = self
            .epochs
            .values()
            .flatten()
            .inspect(|_| examined += 1)
            .filter(|r| record_matches(r, &query.predicate))
            .collect();
        Ok(QueryAnswer {
            value: aggregate_records(matching.into_iter(), query),
            rows_fetched: examined,
            rows_decrypted: 0,
            verified: false,
            epochs_touched: self.epochs.len(),
        })
    }

    fn answer_stats(&self) -> IndexStats {
        IndexStats {
            backend: "cleartext",
            epochs: self.epochs.len(),
            rows_stored: self.total_rows(),
            volume_hiding: false,
            verifiable: false,
            full_scan_per_query: true,
            bin_cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_core::Aggregate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn records() -> Vec<Record> {
        vec![
            Record::spatial(1, 100, 10),
            Record::spatial(1, 200, 20),
            Record::spatial(2, 150, 30),
            Record::spatial(1, 5000, 40),
        ]
    }

    fn loaded() -> CleartextBaseline {
        let mut b = CleartextBaseline::new();
        b.ingest_epoch(0, &records(), &mut StdRng::seed_from_u64(1))
            .unwrap();
        b
    }

    #[test]
    fn count_query() {
        let b = loaded();
        let q = Query::count().at_dims([1]).between(0, 1000);
        let answer = b.execute(&q).unwrap();
        assert_eq!(answer.value, AnswerValue::Count(2));
        assert_eq!(answer.rows_fetched, 4);
        assert_eq!(answer.rows_decrypted, 0);
        assert!(!answer.verified);
        assert_eq!(b.total_rows(), 4);
    }

    #[test]
    fn sum_and_minmax() {
        let b = loaded();
        let sum = b
            .execute(&Query::sum(0).at_dims([1]).between(0, 10_000))
            .unwrap();
        assert_eq!(sum.value, AnswerValue::Number(Some(70)));
        let min = b
            .execute(&Query::min(0).at_dims([1]).between(0, 10_000))
            .unwrap();
        assert_eq!(min.value, AnswerValue::Number(Some(10)));
        let max = b
            .execute(&Query::max(0).at_dims([1]).between(0, 10_000))
            .unwrap();
        assert_eq!(max.value, AnswerValue::Number(Some(40)));
    }

    #[test]
    fn observation_predicate() {
        let b = loaded();
        let q = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: None,
                observation: Some(30),
                time_start: 0,
                time_end: 10_000,
            },
        };
        assert_eq!(b.execute(&q).unwrap().value, AnswerValue::Count(1));
    }

    #[test]
    fn record_matches_edges() {
        let r = Record::spatial(3, 500, 9);
        let p = Predicate::Range {
            dims: Some(vec![3]),
            observation: Some(9),
            time_start: 500,
            time_end: 500,
        };
        assert!(record_matches(&r, &p));
        let p2 = Predicate::Point {
            dims: vec![3],
            time: 501,
        };
        assert!(!record_matches(&r, &p2));
    }

    #[test]
    fn stats_describe_the_backend() {
        let stats = loaded().answer_stats();
        assert_eq!(stats.backend, "cleartext");
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.rows_stored, 4);
        assert!(stats.full_scan_per_query);
        assert!(!stats.volume_hiding);
    }
}
