//! Baseline systems Concealer is compared against in the paper's
//! evaluation.
//!
//! * [`opaque`] — an Opaque-style SGX analytics baseline (Exp 9/10 and
//!   Table 7): no index over the encrypted data, so every query reads the
//!   *entire* epoch into the enclave, decrypts, and filters there. This is
//!   the system the paper beats by 3–4 orders of magnitude on point
//!   queries.
//! * [`cleartext`] — plaintext execution (the "Cleartext processing" row of
//!   Table 5): the lower bound on query latency.
//! * [`det_index`] — deterministic encryption with a plain index and *no*
//!   volume hiding (the DET row of Table 1): fetches exactly the matching
//!   rows, which is fast but leaks the output size. Used by the ablation
//!   benches to quantify what volume hiding costs.
//!
//! All three implement [`concealer_core::SecureIndex`]
//! (`ingest_epoch` / `execute` / `answer_stats`) behind the normalized
//! [`concealer_core::QueryAnswer`], so tests and benchmarks drive every
//! backend — including `ConcealerSystem` itself — through one interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleartext;
pub mod det_index;
pub mod opaque;

pub use cleartext::CleartextBaseline;
pub use det_index::DetIndexBaseline;
pub use opaque::OpaqueBaseline;
