//! Per-connection state for the event core: the incremental frame
//! decoder on the read side, the pending-reply buffer on the write side,
//! and the lifecycle flags the loop steers by.

use std::net::TcpStream;
use std::time::Instant;

use concealer_core::UserHandle;
use serde::frame::FrameDecoder;

use crate::protocol::Response;

/// Protocol phase of a connection (the threaded core's states plus an
/// in-validation step, because this core validates hellos off-loop).
pub(super) enum Auth {
    /// Nothing accepted yet but `Request::Attest`, `Request::ShardInfo`
    /// or (once attested) `Request::Hello`.
    AwaitingHello,
    /// An `Attest` was dispatched to a worker (a router dials its
    /// upstreams for quotes); decoding is paused until the outcome lands,
    /// preserving request order exactly like [`Auth::HelloPending`].
    AttestPending,
    /// A `Hello` was dispatched to a worker for validation; decoding is
    /// paused until the outcome lands (pipelined frames sent behind the
    /// hello wait in the buffer, preserving request order).
    HelloPending,
    /// Handshake done; engine requests may flow.
    Ready(UserHandle),
}

/// How a connection ends once its output buffer drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Closing {
    /// Flush pending replies, then drop the socket (normal close: Bye,
    /// fatal protocol errors, drain of an idle connection).
    Drop,
    /// Flush, then shut the write half down and keep discarding the
    /// peer's bytes until it closes or a deadline passes. Used for busy
    /// refusals, where dropping a socket with unread client bytes can
    /// RST the refusal frame out of the peer's receive queue.
    Linger,
}

/// One live connection owned by the event loop.
pub(super) struct Conn {
    pub(super) stream: TcpStream,
    pub(super) decoder: FrameDecoder,
    /// Reply bytes not yet written; `out_pos` marks how far the socket
    /// has taken them.
    pub(super) out: Vec<u8>,
    pub(super) out_pos: usize,
    pub(super) auth: Auth,
    /// Whether this connection has completed a successful `Attest` (v4);
    /// `Hello` is refused until it has.
    pub(super) attested: bool,
    /// Engine requests dispatched to the worker pool and unanswered.
    pub(super) in_flight: usize,
    /// A `Goodbye` arrived: stop reading, answer `Bye` once `in_flight`
    /// hits zero (protects pipelined replies despite out-of-order
    /// completion), then close.
    pub(super) goodbye_pending: bool,
    /// Close style to apply once `out` is flushed; `None` = keep serving.
    pub(super) closing: Option<Closing>,
    /// Set once a `Linger` close has shut the write half: discard reads
    /// until the peer closes or this deadline passes.
    pub(super) discard_deadline: Option<Instant>,
    /// The peer half-closed (EOF on read). Pending replies still flush.
    pub(super) read_closed: bool,
    /// Interest currently registered with the poller (`None` =
    /// deregistered, e.g. pipeline-cap pause with nothing to write).
    pub(super) interest: Option<mio::Interest>,
    /// Whether this connection counts toward the serving cap (busy
    /// refusals do not).
    pub(super) serving: bool,
}

/// What [`Conn::flush`] left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum FlushState {
    /// Everything queued has been written.
    Drained,
    /// The socket would block; bytes remain (register WRITABLE).
    Pending,
}

impl Conn {
    pub(super) fn new(stream: TcpStream, max_frame_len: usize, serving: bool) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_frame_len),
            out: Vec::new(),
            out_pos: 0,
            auth: Auth::AwaitingHello,
            attested: false,
            in_flight: 0,
            goodbye_pending: false,
            closing: None,
            discard_deadline: None,
            read_closed: false,
            interest: None,
            serving,
        }
    }

    /// Encode a reply frame onto the output buffer (actual socket writes
    /// happen in [`Conn::flush`]).
    pub(super) fn queue_reply(&mut self, reply: &Response) {
        // Vec<u8> is an infallible Write with a no-op flush, and Response
        // encoding cannot exceed u32::MAX here (requests are already
        // frame-capped), so this cannot fail.
        serde::frame::write_frame(&mut self.out, reply).expect("encoding a reply into memory");
    }

    /// Write buffered reply bytes until done or the socket would block.
    pub(super) fn flush(&mut self) -> std::io::Result<FlushState> {
        use std::io::Write as _;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FlushState::Pending)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(FlushState::Drained)
    }

    /// Whether reply bytes are still waiting for the socket.
    pub(super) fn has_pending_output(&self) -> bool {
        self.out_pos < self.out.len()
    }
}
