//! The event core's worker pool: blocking handler work (engine requests
//! and hello validation) is executed off the readiness loop on a small
//! fixed pool (its size is the concurrency bound, the role the admission
//! gate plays in the threaded core). Completions flow back through a
//! queue the loop drains each iteration, woken by the poller's waker.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use concealer_core::UserHandle;

use crate::protocol::{Request, Response, ServerInfo};
use crate::server::ServeHandler;

/// One blocking task, tagged with the connection awaiting the outcome.
pub(super) enum Job {
    /// An authenticated engine-bound request.
    Engine {
        conn_id: u64,
        user: UserHandle,
        request: Request,
    },
    /// A `Hello` to validate. Handled on a worker because a router's
    /// handshake dials upstream shards — blocking the loop thread on
    /// that would stall every other connection.
    Hello {
        conn_id: u64,
        version: u32,
        user_id: u64,
        credential: [u8; 32],
    },
    /// A pre-auth `Attest` challenge. On a worker for the same reason as
    /// `Hello`: a router gathers quotes by dialing every upstream member.
    Attest {
        conn_id: u64,
        id: u64,
        nonce: [u8; 32],
    },
}

/// What a finished job means for its connection.
pub(super) enum Completion {
    /// Queue this reply.
    Reply(Response),
    /// The handshake outcome: `Ok` authenticates the connection and
    /// queues `HelloOk`; `Err` queues the refusal and closes.
    Hello(Result<(UserHandle, ServerInfo), Response>),
    /// The attestation outcome: `AttestOk` marks the connection attested
    /// (unlocking `Hello`); an error reply leaves it unattested but open,
    /// so the client may retry.
    Attest(Response),
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl JobQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Block until a job is available; `None` once the queue is closed
    /// *and* empty — remaining jobs are executed before workers exit, so
    /// a drain never loses dispatched requests.
    fn pop(&self) -> Option<Job> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Finished completions waiting for the event loop, plus the waker that
/// tells it to come collect them.
struct Completions {
    done: Mutex<Vec<(u64, Completion)>>,
    waker: Arc<mio::Waker>,
}

impl Completions {
    fn push(&self, conn_id: u64, completion: Completion) {
        self.done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((conn_id, completion));
        // A failed wake means the loop is already tearing down; the
        // completion still sits in the queue for the final drain.
        let _ = self.waker.wake();
    }
}

/// The pool: submit jobs from the loop thread, drain completions from the
/// loop thread, executed by `workers` background threads.
pub(super) struct WorkerPool {
    queue: Arc<JobQueue>,
    completions: Arc<Completions>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    pub(super) fn spawn(
        handler: Arc<dyn ServeHandler>,
        workers: usize,
        waker: Arc<mio::Waker>,
    ) -> WorkerPool {
        let queue = Arc::new(JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        });
        let completions = Arc::new(Completions {
            done: Mutex::new(Vec::new()),
            waker,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let completions = Arc::clone(&completions);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("concealer-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            match job {
                                Job::Engine {
                                    conn_id,
                                    user,
                                    request,
                                } => {
                                    let reply = handler.execute(&user, request);
                                    completions.push(conn_id, Completion::Reply(reply));
                                }
                                Job::Hello {
                                    conn_id,
                                    version,
                                    user_id,
                                    credential,
                                } => {
                                    let outcome = handler.handshake(version, user_id, credential);
                                    completions.push(conn_id, Completion::Hello(outcome));
                                }
                                Job::Attest { conn_id, id, nonce } => {
                                    let reply = handler.attest(id, nonce);
                                    completions.push(conn_id, Completion::Attest(reply));
                                }
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            queue,
            completions,
            handles,
        }
    }

    pub(super) fn submit(&self, job: Job) {
        let mut state = self.queue.lock();
        state.jobs.push_back(job);
        drop(state);
        self.queue.available.notify_one();
    }

    /// Jobs queued but not yet picked up by a worker (the `backlog` the
    /// stats endpoint reports).
    pub(super) fn backlog(&self) -> usize {
        self.queue.lock().jobs.len()
    }

    /// Take every completion produced since the last drain.
    pub(super) fn drain_completions(&self) -> Vec<(u64, Completion)> {
        std::mem::take(
            &mut self
                .completions
                .done
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Close the queue and join the workers; queued jobs finish first.
    /// Their completions are returned for the caller's final drain.
    pub(super) fn shutdown(mut self) -> Vec<(u64, Completion)> {
        {
            let mut state = self.queue.lock();
            state.closed = true;
        }
        self.queue.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.drain_completions()
    }
}
