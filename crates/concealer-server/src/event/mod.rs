//! The readiness-driven serving core ([`crate::ServerMode::Event`]).
//!
//! One event loop multiplexes every connection over the `mio` shim's
//! `Poll` (epoll on Linux, POSIX `poll(2)` elsewhere), so connection
//! count is decoupled from thread count — tens of thousands of mostly
//! idle clients cost file descriptors, not parked threads:
//!
//! ```text
//!             ┌───────────────────────────────────────────────┐
//!             │               event loop thread               │
//!  accept ───▶│ listener ──▶ Conn{ FrameDecoder │ out buffer }│◀── poll readiness
//!             │                   │ decoded requests          │
//!             │                   ▼                           │
//!             │              job queue ──▶ worker pool (N)    │
//!             │                   ▲              │            │
//!             │  completions ◀────┴── replies ───┘            │
//!             │  (drained every iteration; waker-notified)    │
//!             └───────────────────────────────────────────────┘
//! ```
//!
//! * **Reads** accumulate partial frames in a per-connection incremental
//!   [`FrameDecoder`](serde::frame::FrameDecoder); a request may arrive
//!   split across any number of readiness events.
//! * **Blocking handler work** — engine requests
//!   (`Execute`/`ExecuteBatch`/partials/`IngestEpoch`/`Promote`/`Stats`) and
//!   `Hello` validation — is dispatched to a small worker pool and
//!   completes out of order; cheap connection-level requests (`Goodbye`,
//!   `Shutdown`, `ServeStats`, `ShardInfo`, `RouterStats`) are answered
//!   on the loop itself. Per-connection pipelining is capped
//!   ([`ServerConfig::max_pipeline`]): at the cap the loop stops reading
//!   that socket, so TCP flow control backpressures the client.
//! * **Writes** go to a per-connection buffer flushed eagerly and then
//!   on writable readiness; interest is re-registered only when it
//!   actually changes.
//! * **Drain** (signal or wire `Shutdown`) stops accepting and reading;
//!   already-dispatched requests complete and their replies flush, idle
//!   connections close cleanly, and the loop exits gracefully once —
//!   with a grace deadline against peers that stop reading.
//!
//! Nothing here changes the trust argument: this is untrusted-zone
//! plumbing shuffling the same frames as the threaded core, bit for bit
//! (the loopback suite runs unchanged against both).

mod conn;
mod workers;

use std::collections::HashMap;
use std::net::{Shutdown, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mio::{Events, Interest, Poll, Token, Waker};
use serde::frame::FrameError;

use crate::error::ErrorCode;
use crate::protocol::{Request, Response, ServeStats, CONNECTION_LEVEL_ID};
use crate::server::{
    error_reply, reserved_id_reply, ServeHandler, ServeReport, ServerConfig, ServerMode,
};

use conn::{Auth, Closing, Conn};
use workers::{Completion, Job, WorkerPool};

/// Token of the accepting listener.
const LISTENER: usize = 0;
/// Token of the cross-thread waker (completions, shutdown signal).
const WAKER: usize = 1;
/// First connection id; ids are monotonic and never reused, so a stale
/// completion for a closed connection can never reach a new one.
const FIRST_CONN: u64 = 2;

/// Poll timeout when nothing time-based is pending (the waker covers
/// completions and shutdown, so this is only a liveness backstop).
const IDLE_POLL: Duration = Duration::from_millis(200);
/// Poll timeout while deadlines (linger, drain grace) are ticking.
const BUSY_POLL: Duration = Duration::from_millis(25);
/// How long a refused/lingering connection may take to read its last
/// frame and close before being dropped.
const LINGER_GRACE: Duration = Duration::from_millis(200);
/// How long a drain waits for in-flight replies to flush before
/// force-closing connections whose peers stopped reading.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Most bytes read from one connection per readiness event, for fairness
/// under level-triggered readiness (leftover bytes re-fire immediately).
const MAX_READ_PER_EVENT: usize = 64 * 1024;

/// Spawn the event serving thread. Returns the join handle and the wake
/// closure [`crate::ServerHandle::signal_shutdown`] uses to interrupt a
/// parked poll.
#[allow(clippy::type_complexity)]
pub(crate) fn spawn(
    handler: Arc<dyn ServeHandler>,
    config: ServerConfig,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<(
    std::thread::JoinHandle<ServeReport>,
    Option<Arc<dyn Fn() + Send + Sync>>,
)> {
    let poll = Poll::new()?;
    let waker = Arc::new(Waker::new(&poll, Token(WAKER))?);
    let wake: Arc<dyn Fn() + Send + Sync> = {
        let waker = Arc::clone(&waker);
        Arc::new(move || {
            let _ = waker.wake();
        })
    };
    let config = Arc::new(config);
    let pool = WorkerPool::spawn(
        Arc::clone(&handler),
        config.max_in_flight,
        Arc::clone(&waker),
    );
    let event_loop = EventLoop {
        handler,
        config,
        listener,
        shutdown,
        poll,
        waker,
        pool,
        conns: HashMap::new(),
        next_conn_id: FIRST_CONN,
        draining: false,
        drain_deadline: None,
        fatal: false,
        lingering: 0,
        live_serving: 0,
        peak: 0,
        total_in_flight: 0,
        loop_iterations: 0,
        connections_served: 0,
        requests_served: 0,
        rejected_busy: 0,
    };
    let thread = std::thread::Builder::new()
        .name("concealer-event".to_string())
        .spawn(move || event_loop.run())?;
    Ok((thread, Some(wake)))
}

struct EventLoop {
    handler: Arc<dyn ServeHandler>,
    config: Arc<ServerConfig>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    poll: Poll,
    waker: Arc<Waker>,
    pool: WorkerPool,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// An unrecoverable listener/poller error: exit ungracefully.
    fatal: bool,
    /// Connections in linger-discard with a deadline pending.
    lingering: usize,
    /// Connections counting toward the serving cap (excludes busy
    /// refusals).
    live_serving: usize,
    peak: usize,
    /// Engine requests dispatched and unanswered, across connections.
    total_in_flight: usize,
    loop_iterations: u64,
    connections_served: u64,
    requests_served: u64,
    rejected_busy: u64,
}

impl EventLoop {
    fn run(mut self) -> ServeReport {
        let mut events = Events::with_capacity(1024);
        if self
            .poll
            .register(&self.listener, Token(LISTENER), Interest::READABLE)
            .is_err()
        {
            self.fatal = true;
        }
        let mut graceful = false;
        while !self.fatal {
            let timeout = if self.draining || self.lingering > 0 {
                BUSY_POLL
            } else {
                IDLE_POLL
            };
            if let Err(e) = self.poll.poll(&mut events, Some(timeout)) {
                if e.kind() != std::io::ErrorKind::Interrupted {
                    break;
                }
            }
            self.loop_iterations += 1;
            for event in &events {
                match event.token().0 {
                    LISTENER => self.on_accept(),
                    WAKER => self.waker.ack(),
                    id => self.on_conn_event(id as u64, event.is_readable(), event.is_writable()),
                }
            }
            self.process_completions();
            if self.shutdown.load(Ordering::Acquire) && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                self.sweep();
            }
            self.check_deadlines();
            if self.draining && self.conns.is_empty() && self.total_in_flight == 0 {
                graceful = true;
                break;
            }
        }
        // Workers finish any queued jobs; their replies have nowhere to
        // go (all connections are closed by now), so drop them.
        drop(self.pool.shutdown());
        ServeReport {
            connections_served: self.connections_served,
            requests_served: self.requests_served,
            rejected_busy: self.rejected_busy,
            graceful,
        }
    }

    /// Accept until the listener would block.
    fn on_accept(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.draining {
                        continue; // Raced the drain; drop silently.
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn_id = self.next_conn_id;
                    self.next_conn_id += 1;
                    if self.live_serving >= self.config.max_connections {
                        self.rejected_busy += 1;
                        let mut conn = Conn::new(stream, self.config.max_frame_len, false);
                        conn.queue_reply(&error_reply(
                            CONNECTION_LEVEL_ID,
                            ErrorCode::Busy,
                            "connection cap reached; retry later",
                        ));
                        conn.closing = Some(Closing::Linger);
                        self.settle(conn_id, conn);
                        continue;
                    }
                    self.connections_served += 1;
                    self.live_serving += 1;
                    self.peak = self.peak.max(self.live_serving);
                    let conn = Conn::new(stream, self.config.max_frame_len, true);
                    self.settle(conn_id, conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.fatal = true;
                    break;
                }
            }
        }
    }

    /// Readiness on one connection: flush and/or read, then advance its
    /// state machine.
    fn on_conn_event(&mut self, conn_id: u64, readable: bool, writable: bool) {
        let Some(mut conn) = self.conns.remove(&conn_id) else {
            return; // Closed earlier this iteration; stale event.
        };
        if (writable || conn.has_pending_output()) && conn.flush().is_err() {
            self.close_conn(conn);
            return;
        }
        if readable && !self.read_ready(&mut conn) {
            self.close_conn(conn);
            return;
        }
        self.settle(conn_id, conn);
    }

    /// Pull bytes off a readable socket into the connection's decoder
    /// (or the discard sink while lingering). `false` = close now.
    fn read_ready(&mut self, conn: &mut Conn) -> bool {
        use std::io::Read as _;
        let mut buf = [0u8; 16 * 1024];
        if conn.discard_deadline.is_some() {
            // Lingering close: consume and ignore until EOF.
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => return false,
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }
        let mut taken = 0;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    return true;
                }
                Ok(n) => {
                    conn.decoder.extend_from_slice(&buf[..n]);
                    taken += n;
                    if taken >= MAX_READ_PER_EVENT {
                        // Fairness cap; leftover bytes re-fire the
                        // level-triggered readiness immediately.
                        return true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Decode and handle every complete request the pipeline cap allows.
    fn drive_decode(&mut self, conn_id: u64, conn: &mut Conn) {
        loop {
            if conn.closing.is_some() || conn.goodbye_pending {
                return;
            }
            // A hello (or attest) is resolving on a worker: hold every
            // frame behind it in the buffer so request order is preserved.
            if matches!(conn.auth, Auth::HelloPending | Auth::AttestPending) {
                return;
            }
            // Once the peer half-closed no more bytes can arrive, so the
            // cap no longer protects anything — decode out the remainder
            // so `mid_frame` means what it says.
            if !conn.read_closed && conn.in_flight >= self.config.max_pipeline {
                return;
            }
            match conn.decoder.try_decode::<Request>() {
                Ok(Some(request)) => self.handle_request(conn_id, conn, request),
                Ok(None) => return,
                Err(FrameError::TooLarge { len, max }) => {
                    // Payload already discarded; the stream is aligned and
                    // the connection survives (blocking-path parity).
                    self.reply(
                        conn,
                        &error_reply(
                            CONNECTION_LEVEL_ID,
                            ErrorCode::FrameTooLarge,
                            format!("frame of {len} bytes exceeds the {max}-byte limit"),
                        ),
                    );
                }
                Err(FrameError::Decode(e)) => {
                    self.reply(
                        conn,
                        &error_reply(
                            CONNECTION_LEVEL_ID,
                            ErrorCode::MalformedFrame,
                            format!("payload did not decode as a request: {e}"),
                        ),
                    );
                    conn.closing = Some(Closing::Drop);
                    return;
                }
                // The push decoder performs no I/O; it never returns
                // Io/Closed.
                Err(FrameError::Io(_) | FrameError::Closed) => return,
            }
        }
    }

    /// The connection state machine, mirroring the threaded core's
    /// `handle_connection` arms.
    fn handle_request(&mut self, conn_id: u64, conn: &mut Conn, request: Request) {
        match (&conn.auth, request) {
            (
                Auth::AwaitingHello,
                Request::Hello {
                    version,
                    user_id,
                    credential,
                    client_name,
                },
            ) => {
                // Validation happens on a worker (a router's handshake
                // dials upstreams); decoding pauses until the outcome
                // lands in `process_completions`.
                let _ = client_name;
                if !conn.attested {
                    // Mirrors the threaded core: no credential crosses the
                    // wire until the enclave has proven its measurement.
                    self.reply(
                        conn,
                        &error_reply(
                            CONNECTION_LEVEL_ID,
                            ErrorCode::AttestationFailed,
                            "Hello before a successful Attest; complete the \
                             attestation exchange first",
                        ),
                    );
                    conn.closing = Some(Closing::Drop);
                    return;
                }
                conn.auth = Auth::HelloPending;
                conn.in_flight += 1;
                self.total_in_flight += 1;
                self.pool.submit(Job::Hello {
                    conn_id,
                    version,
                    user_id,
                    credential,
                });
            }
            (Auth::HelloPending | Auth::AttestPending, _) => {
                unreachable!("decoding is paused while a hello or attest resolves")
            }
            // The other pre-auth request besides ShardInfo: the attestation
            // challenge. Dispatched to a worker because a router's quote
            // gathering dials every upstream member.
            (Auth::AwaitingHello, Request::Attest { id, nonce }) => {
                if id == CONNECTION_LEVEL_ID {
                    self.refuse_reserved_id(conn);
                    return;
                }
                conn.auth = Auth::AttestPending;
                conn.in_flight += 1;
                self.total_in_flight += 1;
                self.pool.submit(Job::Attest { conn_id, id, nonce });
            }
            (Auth::Ready(_), Request::Attest { .. }) => {
                self.reply(
                    conn,
                    &error_reply(
                        CONNECTION_LEVEL_ID,
                        ErrorCode::ProtocolViolation,
                        "Attest must precede authentication",
                    ),
                );
                conn.closing = Some(Closing::Drop);
            }
            // Pre-auth topology discovery, mirroring the threaded core: a
            // router probes shard slices before it holds any credential.
            (_, Request::ShardInfo { id }) => {
                if id == CONNECTION_LEVEL_ID {
                    self.refuse_reserved_id(conn);
                    return;
                }
                let reply = self.handler.shard_info(id);
                self.reply(conn, &reply);
            }
            (Auth::AwaitingHello, _) => {
                self.reply(
                    conn,
                    &error_reply(
                        CONNECTION_LEVEL_ID,
                        ErrorCode::NotAuthenticated,
                        "the first request must be Hello",
                    ),
                );
                conn.closing = Some(Closing::Drop);
            }
            (Auth::Ready(_), Request::Hello { .. }) => {
                self.reply(
                    conn,
                    &error_reply(
                        CONNECTION_LEVEL_ID,
                        ErrorCode::ProtocolViolation,
                        "connection is already authenticated",
                    ),
                );
                conn.closing = Some(Closing::Drop);
            }
            (Auth::Ready(_), Request::Goodbye) => {
                // Stop reading; `Bye` goes out once in-flight replies
                // have been written (see `advance`).
                conn.goodbye_pending = true;
            }
            (Auth::Ready(user), Request::Shutdown { id }) => {
                if id == CONNECTION_LEVEL_ID {
                    self.refuse_reserved_id(conn);
                    return;
                }
                // May block briefly (a router forwards the shutdown to
                // its upstreams) — acceptable on the loop thread because
                // the deployment is draining anyway.
                let user = user.clone();
                self.handler.on_wire_shutdown(&user);
                self.shutdown.store(true, Ordering::Release);
                self.reply(conn, &Response::ShutdownOk { id });
                conn.closing = Some(Closing::Drop);
            }
            (Auth::Ready(_), Request::ServeStats { id }) => {
                if id == CONNECTION_LEVEL_ID {
                    self.refuse_reserved_id(conn);
                    return;
                }
                let stats = self.serve_stats_snapshot();
                self.reply(conn, &Response::ServeStatsOk { id, stats });
            }
            (Auth::Ready(_), Request::RouterStats { id }) => {
                if id == CONNECTION_LEVEL_ID {
                    self.refuse_reserved_id(conn);
                    return;
                }
                let reply = self.handler.router_stats(id);
                self.reply(conn, &reply);
            }
            (
                Auth::Ready(user),
                request @ (Request::Execute { .. }
                | Request::ExecuteBatch { .. }
                | Request::ExecutePartial { .. }
                | Request::ExecuteBatchPartial { .. }
                | Request::IngestEpoch { .. }
                | Request::Promote { .. }
                | Request::Stats { .. }),
            ) => {
                if request.id() == CONNECTION_LEVEL_ID {
                    self.refuse_reserved_id(conn);
                    return;
                }
                let user = user.clone();
                conn.in_flight += 1;
                self.total_in_flight += 1;
                self.pool.submit(Job::Engine {
                    conn_id,
                    user,
                    request,
                });
            }
        }
    }

    fn refuse_reserved_id(&mut self, conn: &mut Conn) {
        self.reply(conn, &reserved_id_reply());
        conn.closing = Some(Closing::Drop);
    }

    fn serve_stats_snapshot(&self) -> ServeStats {
        ServeStats {
            mode: ServerMode::Event.name().to_string(),
            connections: self.live_serving as u64,
            peak_connections: self.peak as u64,
            connections_served: self.connections_served,
            in_flight: self.total_in_flight as u64,
            backlog: self.pool.backlog() as u64,
            loop_iterations: self.loop_iterations,
            requests_served: self.requests_served,
        }
    }

    /// Deliver finished worker completions to their connections.
    fn process_completions(&mut self) {
        for (conn_id, completion) in self.pool.drain_completions() {
            self.total_in_flight -= 1;
            self.requests_served += 1;
            let Some(mut conn) = self.conns.remove(&conn_id) else {
                continue; // Connection died while its request executed.
            };
            conn.in_flight -= 1;
            match completion {
                Completion::Reply(response) => conn.queue_reply(&response),
                Completion::Hello(Ok((user, info))) => {
                    conn.auth = Auth::Ready(user);
                    // Resuming decode of any frames pipelined behind the
                    // hello happens in `settle` → `advance`.
                    conn.queue_reply(&Response::HelloOk(info));
                }
                Completion::Hello(Err(refusal)) => {
                    conn.queue_reply(&refusal);
                    conn.closing = Some(Closing::Drop);
                }
                Completion::Attest(reply) => {
                    // Success unlocks Hello; an error reply leaves the
                    // connection open and unattested so the client may
                    // retry the challenge.
                    if matches!(reply, Response::AttestOk { .. }) {
                        conn.attested = true;
                    }
                    conn.auth = Auth::AwaitingHello;
                    conn.queue_reply(&reply);
                }
            }
            self.settle(conn_id, conn);
        }
    }

    /// Queue a loop-generated reply, counting it like the threaded
    /// core's `send`.
    fn reply(&mut self, conn: &mut Conn, response: &Response) {
        conn.queue_reply(response);
        self.requests_served += 1;
    }

    /// Run a connection's state machine forward, then either re-track it
    /// (with its poller interest updated) or close it.
    fn settle(&mut self, conn_id: u64, mut conn: Conn) {
        if self.advance(conn_id, &mut conn) {
            self.update_interest(conn_id, &mut conn);
            self.conns.insert(conn_id, conn);
        } else {
            self.close_conn(conn);
        }
    }

    /// Decode → reply bookkeeping → flush → close transitions.
    /// `false` = close the connection now.
    fn advance(&mut self, conn_id: u64, conn: &mut Conn) -> bool {
        if conn.closing.is_none() && conn.discard_deadline.is_none() {
            self.drive_decode(conn_id, conn);
        }
        if conn.goodbye_pending && conn.in_flight == 0 && conn.closing.is_none() {
            self.reply(conn, &Response::Bye);
            conn.closing = Some(Closing::Drop);
        }
        if conn.read_closed && conn.closing.is_none() && conn.decoder.mid_frame() {
            // EOF inside a frame: torn stream, close abruptly (the
            // blocking core's `FrameError::Io(UnexpectedEof)` path).
            return false;
        }
        if conn.flush().is_err() {
            return false;
        }
        if !conn.has_pending_output() {
            match conn.closing {
                Some(Closing::Drop) => return false,
                Some(Closing::Linger) => {
                    if conn.discard_deadline.is_none() {
                        // Signal end-of-stream but give the peer a moment
                        // to take the final frame before the socket dies.
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        conn.discard_deadline = Some(Instant::now() + LINGER_GRACE);
                        self.lingering += 1;
                    }
                }
                None => {
                    if conn.in_flight == 0 && (conn.read_closed || self.draining) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Compute and apply the poller interest a connection needs now,
    /// touching the poller only when it changed.
    fn update_interest(&mut self, conn_id: u64, conn: &mut Conn) {
        let readable = if conn.discard_deadline.is_some() {
            true // Keep draining the peer until it closes.
        } else {
            !conn.read_closed
                && conn.closing.is_none()
                && !conn.goodbye_pending
                && !self.draining
                && conn.in_flight < self.config.max_pipeline
        };
        let writable = conn.has_pending_output();
        let desired = match (readable, writable) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        };
        if desired == conn.interest {
            return;
        }
        let token = Token(conn_id as usize);
        let outcome = match (conn.interest, desired) {
            (None, Some(interest)) => self.poll.register(&conn.stream, token, interest),
            (Some(_), Some(interest)) => self.poll.reregister(&conn.stream, token, interest),
            (Some(_), None) => self.poll.deregister(&conn.stream),
            (None, None) => Ok(()),
        };
        conn.interest = if outcome.is_ok() { desired } else { None };
    }

    /// Deregister and drop a connection, maintaining the counters.
    fn close_conn(&mut self, conn: Conn) {
        if conn.interest.is_some() {
            let _ = self.poll.deregister(&conn.stream);
        }
        if conn.serving {
            self.live_serving -= 1;
        }
        if conn.discard_deadline.is_some() {
            self.lingering -= 1;
        }
    }

    /// Enter drain: stop accepting, stop reading, let in-flight replies
    /// flush, close idle connections.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        let _ = self.poll.deregister(&self.listener);
    }

    /// Re-advance every connection (drain mode): closes the idle ones and
    /// those whose last reply has flushed.
    fn sweep(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for conn_id in ids {
            if let Some(conn) = self.conns.remove(&conn_id) {
                self.settle(conn_id, conn);
            }
        }
    }

    /// Enforce linger and drain deadlines.
    fn check_deadlines(&mut self) {
        let now = Instant::now();
        if self.lingering > 0 {
            let expired: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, conn)| conn.discard_deadline.is_some_and(|d| now >= d))
                .map(|(&conn_id, _)| conn_id)
                .collect();
            for conn_id in expired {
                if let Some(conn) = self.conns.remove(&conn_id) {
                    self.close_conn(conn);
                }
            }
        }
        if self.draining && self.drain_deadline.is_some_and(|d| now >= d) && !self.conns.is_empty()
        {
            // Grace expired: peers holding their replies hostage get cut.
            for (_, conn) in std::mem::take(&mut self.conns) {
                self.close_conn(conn);
            }
        }
    }
}
