//! Wire-facing error mapping.
//!
//! [`concealer_core::CoreError`] carries nested crate error types and
//! `&'static str` reasons that cannot (and should not) cross the wire
//! verbatim — the reply a client sees is a stable `(code, message)` pair
//! instead: the [`ErrorCode`] is machine-matchable and versioned with the
//! protocol, the message is human-readable context. Mapping is lossy by
//! design; nothing enclave-internal (key material, row contents, storage
//! paths) ever appears in a reply.

use concealer_core::CoreError;
use serde::{Deserialize, Serialize};

/// Machine-matchable error category carried by every error reply.
///
/// Declaration order is part of the wire format — append, never reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// A frame's payload did not decode as a protocol message.
    MalformedFrame,
    /// A frame exceeded the server's size limit (the frame was discarded;
    /// the connection survives).
    FrameTooLarge,
    /// The client's protocol version is not supported.
    UnsupportedVersion,
    /// A request arrived before a successful `Hello`.
    NotAuthenticated,
    /// The message violated the connection state machine (e.g. a second
    /// `Hello`, or a reserved request id).
    ProtocolViolation,
    /// The hello credential did not authenticate.
    AuthFailed,
    /// The authenticated user is not authorized for the requested scope.
    Unauthorized,
    /// An `ExecuteBatch` exceeded the server's batch-size cap.
    BatchTooLarge,
    /// The server is at its connection cap; retry later.
    Busy,
    /// The server is shutting down and no longer serves requests.
    ShuttingDown,
    /// The query was structurally invalid.
    InvalidQuery,
    /// No ingested epoch overlaps the queried range.
    NoDataForRange,
    /// Integrity verification failed — the service provider's storage was
    /// tampered with. Surfaced to the client because detection is the
    /// whole point of the verification protocol.
    IntegrityViolation,
    /// A record's attributes did not match the configured grid.
    SchemaMismatch,
    /// An ingested record's timestamp fell outside its epoch window.
    TimeOutOfEpoch,
    /// Epoch metadata failed to decode (wrong master key or corruption).
    CorruptMetadata,
    /// The deployment is misconfigured for the request.
    InvalidConfig,
    /// A cryptographic operation failed.
    Crypto,
    /// The storage substrate failed.
    Storage,
    /// The enclave refused the operation.
    Enclave,
    /// Anything the mapping does not classify more precisely.
    Internal,
    /// A router could not reach the shard that owns part of the request's
    /// epoch slice (connect/read timeout, refused connection, or the shard
    /// is in reconnect backoff). The request may be retried; other slices
    /// keep serving.
    ShardUnavailable,
    /// An ingest (or §6 rewrite) reached a read-only replica. Only the
    /// replica set's writer mutates the shared store root; retry against
    /// the writer, or promote this member first.
    NotWriter,
    /// The attestation exchange failed (v4): a `Hello` arrived on a
    /// connection that never completed a successful `Attest`, or a router
    /// could not gather a single quote from its upstreams. Clients also
    /// raise this code locally when a received quote fails their trust
    /// policy — in every case the connection is not safe for credentials.
    AttestationFailed,
}

impl ErrorCode {
    /// Stable lower-snake-case name (used in logs and load-test output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::NotAuthenticated => "not_authenticated",
            ErrorCode::ProtocolViolation => "protocol_violation",
            ErrorCode::AuthFailed => "auth_failed",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::BatchTooLarge => "batch_too_large",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::InvalidQuery => "invalid_query",
            ErrorCode::NoDataForRange => "no_data_for_range",
            ErrorCode::IntegrityViolation => "integrity_violation",
            ErrorCode::SchemaMismatch => "schema_mismatch",
            ErrorCode::TimeOutOfEpoch => "time_out_of_epoch",
            ErrorCode::CorruptMetadata => "corrupt_metadata",
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::Crypto => "crypto",
            ErrorCode::Storage => "storage",
            ErrorCode::Enclave => "enclave",
            ErrorCode::Internal => "internal",
            ErrorCode::ShardUnavailable => "shard_unavailable",
            ErrorCode::NotWriter => "not_writer",
            ErrorCode::AttestationFailed => "attestation_failed",
        }
    }
}

/// The error payload of a `Response::Error` reply (and of failed entries
/// in a batch reply).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-matchable category.
    pub code: ErrorCode,
    /// Human-readable context.
    pub message: String,
}

impl WireError {
    /// Build an error from a code and message.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for WireError {}

impl From<&CoreError> for WireError {
    /// Map an execution error onto its wire category. Authentication and
    /// authorization failures get their own codes (clients handle them
    /// differently from data errors); the remaining enclave/storage/crypto
    /// errors map to coarse substrate codes with the display text as
    /// context.
    fn from(e: &CoreError) -> Self {
        use concealer_core::EnclaveError;
        let code = match e {
            CoreError::SchemaMismatch { .. } => ErrorCode::SchemaMismatch,
            CoreError::TimeOutOfEpoch { .. } => ErrorCode::TimeOutOfEpoch,
            CoreError::NoDataForRange => ErrorCode::NoDataForRange,
            CoreError::IntegrityViolation { .. } => ErrorCode::IntegrityViolation,
            CoreError::InvalidQuery { .. } => ErrorCode::InvalidQuery,
            CoreError::CorruptMetadata => ErrorCode::CorruptMetadata,
            CoreError::InvalidConfig { .. } => ErrorCode::InvalidConfig,
            CoreError::Crypto(_) => ErrorCode::Crypto,
            CoreError::Storage(_) => ErrorCode::Storage,
            CoreError::Enclave(EnclaveError::UnknownUser | EnclaveError::AuthenticationFailed) => {
                ErrorCode::AuthFailed
            }
            CoreError::Enclave(EnclaveError::Unauthorized { .. }) => ErrorCode::Unauthorized,
            CoreError::Enclave(_) => ErrorCode::Enclave,
        };
        WireError::new(code, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_errors_map_to_stable_codes() {
        let cases: Vec<(CoreError, ErrorCode)> = vec![
            (CoreError::NoDataForRange, ErrorCode::NoDataForRange),
            (
                CoreError::IntegrityViolation { cell_id: 3 },
                ErrorCode::IntegrityViolation,
            ),
            (
                CoreError::InvalidQuery { reason: "bad" },
                ErrorCode::InvalidQuery,
            ),
            (CoreError::CorruptMetadata, ErrorCode::CorruptMetadata),
        ];
        for (core, code) in cases {
            let wire = WireError::from(&core);
            assert_eq!(wire.code, code);
            assert_eq!(wire.message, core.to_string());
        }
    }

    #[test]
    fn auth_errors_get_their_own_codes() {
        use concealer_core::EnclaveError;
        let auth: CoreError = EnclaveError::AuthenticationFailed.into();
        assert_eq!(WireError::from(&auth).code, ErrorCode::AuthFailed);
        let unknown: CoreError = EnclaveError::UnknownUser.into();
        assert_eq!(WireError::from(&unknown).code, ErrorCode::AuthFailed);
        let scope: CoreError = EnclaveError::Unauthorized {
            reason: "not your device",
        }
        .into();
        assert_eq!(WireError::from(&scope).code, ErrorCode::Unauthorized);
    }

    #[test]
    fn display_includes_code_name() {
        let e = WireError::new(ErrorCode::Busy, "cap reached");
        assert_eq!(e.to_string(), "busy: cap reached");
        assert_eq!(ErrorCode::Busy.name(), "busy");
    }
}
