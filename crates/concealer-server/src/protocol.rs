//! The Concealer wire protocol: versioned handshake, request/response
//! message enums, and the frame limits both sides agree on.
//!
//! Every message is one length-prefixed frame (see `serde::frame`): a
//! 4-byte little-endian payload length followed by the payload in the
//! positional `serde::bin` LEB128 format. The message enums below *are*
//! the wire format — variants are tagged by declaration index, fields are
//! written in declaration order — so **their declaration order is part of
//! the protocol**: append new variants/fields, never reorder, and bump
//! [`PROTOCOL_VERSION`] on any incompatible change.
//!
//! A connection's lifecycle:
//!
//! ```text
//! client                                server
//!   │  Request::Hello{version,user,cred}  │
//!   ├────────────────────────────────────▶│  authenticate credential
//!   │      Response::HelloOk(ServerInfo)  │  (or Error{AuthFailed} + close)
//!   │◀────────────────────────────────────┤
//!   │  Request::Execute{id,query,opts}    │
//!   ├────────────────────────────────────▶│  Session::execute_with
//!   │        Response::Answer{id,answer}  │
//!   │◀────────────────────────────────────┤
//!   │  …ExecuteBatch / IngestEpoch /      │  requests may be pipelined;
//!   │    Stats / Shutdown, any order…     │  replies come back in request
//!   │  Request::Goodbye                   │  order per connection
//!   ├────────────────────────────────────▶│
//!   │                      Response::Bye  │
//!   │◀────────────────────────────────────┤ close
//! ```
//!
//! The wire sits in the **untrusted zone** of Concealer's threat model:
//! it connects analysts to the service provider's front-end, exactly like
//! the DBMS connection the paper assumes. Nothing the protocol carries
//! extends the trusted base — queries and answers are the same values the
//! enclave exchanges in-process, answers keep their `verified` metadata,
//! and credentials are the HMAC capabilities the data provider issued out
//! of band (an eavesdropper learns what the untrusted service provider
//! already sees; deploy TLS underneath for channel privacy).

use concealer_core::{ExecOptions, Query, QueryAnswer, Record};
use serde::{Deserialize, Serialize};

use crate::error::WireError;

/// Version of the message set defined in this module. Sent in
/// `Request::Hello`; the server refuses mismatches with
/// [`crate::error::ErrorCode::UnsupportedVersion`].
///
/// History: version 1 was the single-process message set (PR 5–7);
/// version 2 appended the multi-node shard/router messages
/// ([`Request::ShardInfo`], [`Request::ExecutePartial`],
/// [`Request::ExecuteBatchPartial`], [`Request::RouterStats`] and their
/// replies) plus the `shard_unavailable` error code; version 3 appended
/// the replica-set extensions — [`ShardDescriptor`] grew `role` and
/// `store_generation`, [`ShardLoad`] grew `member` and `writer`,
/// [`Request::Promote`] / [`Response::PromoteOk`] and the `not_writer`
/// error code were added; version 4 appended the attestation pre-auth
/// exchange — [`Request::Attest`] / [`Response::AttestOk`] carrying
/// [`WireQuote`]s, the `attestation_failed` error code — and made a
/// successful `Attest` a precondition for `Hello`. The canonical
/// field-by-field layout of every message lives in `PROTOCOL.md` at the
/// repository root.
pub const PROTOCOL_VERSION: u32 = 4;

/// Request id used for connection-level errors that cannot be attributed
/// to a request (malformed frame, handshake refusal, admission rejection).
/// Clients must not issue this id themselves.
pub const CONNECTION_LEVEL_ID: u64 = 0;

/// Default cap on one frame's payload size (4 MiB): large enough for a
/// maximal batch of `CollectRows` answers, small enough that a malicious
/// length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_LEN: usize = 4 << 20;

/// Default cap on the number of queries in one `ExecuteBatch`.
pub const DEFAULT_MAX_BATCH: usize = 256;

/// Client → server messages.
///
/// The first request on a connection must be [`Request::Hello`]; the
/// server answers everything else before it with a
/// [`crate::error::ErrorCode::NotAuthenticated`] error and closes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Versioned hello + authentication, the mandatory first frame.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
        /// The registered user executing on this connection.
        user_id: u64,
        /// The HMAC credential the data provider issued for `user_id`.
        credential: [u8; 32],
        /// Free-form client identification (for server logs only).
        client_name: String,
    },
    /// Execute one query.
    Execute {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
        /// The query.
        query: Query,
        /// Execution options; `None` uses the server's defaults. The
        /// server caps `parallelism` at its configured maximum.
        options: Option<ExecOptions>,
    },
    /// Execute a batch of queries ([`concealer_core::Session::execute_batch`]
    /// semantics: cross-query bin dedup under BPB, per-query fallback
    /// otherwise).
    ExecuteBatch {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
        /// The queries, answered positionally in
        /// [`Response::BatchAnswer::results`].
        queries: Vec<Query>,
        /// Execution options; `None` uses the server's defaults.
        options: Option<ExecOptions>,
    },
    /// Ingest one epoch of cleartext records. This simulates the data
    /// provider's channel: in a real deployment it is a separate,
    /// DP-authenticated endpoint, so servers may refuse it
    /// ([`crate::server::ServerConfig::allow_ingest`]).
    IngestEpoch {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
        /// Epoch start (seconds; also the epoch id).
        epoch_start: u64,
        /// The cleartext readings of the epoch.
        records: Vec<Record>,
    },
    /// Ask for the backend's [`concealer_core::IndexStats`] profile.
    Stats {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
    },
    /// Request a graceful server-wide shutdown: the server acknowledges,
    /// stops accepting connections, drains in-flight requests and exits.
    Shutdown {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
    },
    /// Close this connection cleanly; the server answers [`Response::Bye`].
    Goodbye,
    /// Ask for the *serving layer's* live profile ([`ServeStats`]):
    /// connection counts, dispatch backlog, loop metrics. Complements
    /// [`Request::Stats`], which profiles the storage backend.
    ServeStats {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
    },
    /// Ask which epoch slice this server owns ([`ShardDescriptor`]).
    ///
    /// Unlike every other non-`Hello` request, this is answerable
    /// **before** authentication: it carries deployment metadata only (no
    /// query results), and the router probes it at startup to validate the
    /// shard map before any user credential exists on the connection.
    ShardInfo {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
    },
    /// Execute one query over only the epochs this server owns, answering
    /// with per-epoch partials ([`Response::PartialAnswer`]) instead of a
    /// finished answer. The shard half of routed execution; see
    /// [`concealer_core::QueryEngine::execute_partials`].
    ExecutePartial {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
        /// The query.
        query: Query,
        /// Execution options; `None` uses the server's defaults.
        options: Option<ExecOptions>,
    },
    /// Partial-execution batch: like [`Request::ExecuteBatch`] but each
    /// query answers with its per-epoch partials over this server's slice
    /// ([`Response::BatchPartialAnswer`]), with `(epoch, bin)` fetches
    /// deduplicated across the batch within the slice.
    ExecuteBatchPartial {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
        /// The queries, answered positionally.
        queries: Vec<Query>,
        /// Execution options; `None` uses the server's defaults.
        options: Option<ExecOptions>,
    },
    /// Ask a `concealer-router` for its per-shard forwarding counters
    /// ([`RouterStats`]). Shard servers are not routers and refuse this
    /// with [`crate::error::ErrorCode::ProtocolViolation`].
    RouterStats {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
    },
    /// Promote this server's read-only replica store to writer (a reopen
    /// of the shared durable root — no key material moves). The failover
    /// half of replica sets: the router issues this to a surviving member
    /// when the writer dies. Idempotent on a server that is already the
    /// writer.
    Promote {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
    },
    /// Ask the serving enclave(s) to prove their identity before any
    /// credential is sent (v4). Like [`Request::ShardInfo`], this is
    /// answerable **before** authentication — it must be, because clients
    /// refuse to send `Hello` until the quotes verify. Servers in turn
    /// refuse `Hello` on a connection that has not completed a successful
    /// `Attest` ([`crate::error::ErrorCode::AttestationFailed`]), so the
    /// exchange is mandatory in both directions.
    Attest {
        /// Caller-chosen request id echoed in the reply (must be nonzero).
        id: u64,
        /// Client-chosen freshness challenge, echoed inside every quote's
        /// signature so a captured quote cannot be replayed.
        nonce: [u8; 32],
    },
}

impl Request {
    /// The request id a reply to this request will carry
    /// ([`CONNECTION_LEVEL_ID`] for `Hello` / `Goodbye`).
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Request::Hello { .. } | Request::Goodbye => CONNECTION_LEVEL_ID,
            Request::Execute { id, .. }
            | Request::ExecuteBatch { id, .. }
            | Request::IngestEpoch { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::ServeStats { id }
            | Request::ShardInfo { id }
            | Request::ExecutePartial { id, .. }
            | Request::ExecuteBatchPartial { id, .. }
            | Request::RouterStats { id }
            | Request::Promote { id }
            | Request::Attest { id, .. } => *id,
        }
    }
}

/// What the server tells a client about itself in [`Response::HelloOk`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// The server's [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
    /// Human-readable server identification.
    pub server_name: String,
    /// Storage backend the sealed epochs live on (`"memory"` / `"disk"`).
    pub backend: String,
    /// Largest accepted `ExecuteBatch` size.
    pub max_batch: u64,
    /// Largest accepted frame payload, in bytes.
    pub max_frame_len: u64,
    /// Whether this server accepts [`Request::IngestEpoch`].
    pub ingest_allowed: bool,
}

/// The backend profile reported by [`Response::StatsOk`] — the wire form
/// of [`concealer_core::IndexStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Short backend identifier (`"concealer"`).
    pub backend: String,
    /// Epochs ingested so far.
    pub epochs: u64,
    /// Rows stored, including volume-hiding fakes.
    pub rows_stored: u64,
    /// Whether per-query fetch volumes are data-independent.
    pub volume_hiding: bool,
    /// Whether fetched data is integrity-verified.
    pub verifiable: bool,
}

impl From<concealer_core::IndexStats> for WireStats {
    fn from(stats: concealer_core::IndexStats) -> Self {
        WireStats {
            backend: stats.backend.to_string(),
            epochs: stats.epochs as u64,
            rows_stored: stats.rows_stored as u64,
            volume_hiding: stats.volume_hiding,
            verifiable: stats.verifiable,
        }
    }
}

/// The serving layer's live profile, reported by
/// [`Response::ServeStatsOk`]. Event-mode servers fill every field from
/// the loop's own counters; threaded-mode servers report `backlog` and
/// `loop_iterations` as zero (there is no readiness loop).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Serving mode: `"threaded"` or `"event"`.
    pub mode: String,
    /// Connections live right now (the replying one included).
    pub connections: u64,
    /// High-water mark of concurrently live connections.
    pub peak_connections: u64,
    /// Connections accepted and served so far (busy-rejects excluded).
    pub connections_served: u64,
    /// Engine requests dispatched but not yet answered (executing or
    /// queued for a worker).
    pub in_flight: u64,
    /// Dispatched requests still waiting for a worker (a subset of
    /// `in_flight`; always zero in threaded mode, where the connection
    /// thread itself blocks on the admission gate).
    pub backlog: u64,
    /// Readiness-loop iterations so far (zero in threaded mode).
    pub loop_iterations: u64,
    /// Replies written so far, error replies included.
    pub requests_served: u64,
}

/// One per-query outcome inside [`Response::BatchAnswer`] (the shim serde
/// derive has no `Result` impl, and the error side must be the wire error
/// anyway).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireResult {
    /// The query succeeded.
    Ok(QueryAnswer),
    /// The query failed; the batch's other queries are unaffected.
    Err(WireError),
}

impl WireResult {
    /// Convert into a std `Result`.
    pub fn into_result(self) -> Result<QueryAnswer, WireError> {
        match self {
            WireResult::Ok(answer) => Ok(answer),
            WireResult::Err(e) => Err(e),
        }
    }
}

impl From<Result<QueryAnswer, concealer_core::CoreError>> for WireResult {
    fn from(result: Result<QueryAnswer, concealer_core::CoreError>) -> Self {
        match result {
            Ok(answer) => WireResult::Ok(answer),
            Err(e) => WireResult::Err(WireError::from(&e)),
        }
    }
}

/// A server's role within its shard's replica set (v3). Tagged by
/// declaration index on the wire, like every protocol enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardRole {
    /// Owns the durable store root: accepts ingest and §6 rewrites.
    /// Single-process deployments and servers without a durable root are
    /// writers too — a replica set of one.
    Writer,
    /// Follows the writer's store root read-only, absorbing committed
    /// epochs on a refresh tick; refuses ingest with
    /// [`crate::error::ErrorCode::NotWriter`] until promoted.
    Replica,
}

/// The epoch slice one shard server owns, reported by
/// [`Response::ShardInfoOk`]. The router probes every upstream at startup
/// and refuses to serve when the shard map is inconsistent (index/total
/// mismatch, missing slices, diverging epoch durations, replica sets
/// without exactly one writer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardDescriptor {
    /// This server's shard index (0-based), or `0` when unsharded.
    pub shard_index: u32,
    /// Total shard count of the deployment (`1` when unsharded).
    pub shard_total: u32,
    /// The deployment's epoch duration in seconds — every shard must
    /// agree, or time-range routing is meaningless.
    pub epoch_duration: u64,
    /// The epoch ids (start times) this server currently holds, ascending.
    pub epochs: Vec<u64>,
    /// This server's role in the shard's replica set (v3).
    pub role: ShardRole,
    /// The durable store's monotonic commit-point version (v3); `0` on
    /// backends without one. Replica lag is the writer's value minus the
    /// replica's.
    pub store_generation: u64,
}

/// One epoch's contribution to a query answer on the wire — the
/// serializable form of [`concealer_core::EpochPartial`], carried by
/// [`Response::PartialAnswer`] / [`Response::BatchPartialAnswer`]. The
/// accumulator fields are flattened (`per_location` as ascending pairs)
/// because partials cross the wire between shard and router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePartial {
    /// The epoch this partial covers (its start time).
    pub epoch_id: u64,
    /// Matching-tuple count.
    pub count: u64,
    /// Sum of the aggregated payload attribute.
    pub sum: u64,
    /// Minimum seen, if any tuple matched.
    pub min: Option<u64>,
    /// Maximum seen, if any tuple matched.
    pub max: Option<u64>,
    /// Per-first-dimension counts, ascending by dimension value.
    pub per_location: Vec<(u64, u64)>,
    /// Collected cleartext records (row-collection queries).
    pub rows: Vec<Record>,
    /// Encrypted rows fetched from this epoch's segments.
    pub rows_fetched: u64,
    /// Rows decrypted while filtering this epoch.
    pub rows_decrypted: u64,
    /// Whether hash-chain verification ran for this epoch's fetches.
    pub verified: bool,
}

impl From<concealer_core::EpochPartial> for WirePartial {
    fn from(partial: concealer_core::EpochPartial) -> Self {
        WirePartial {
            epoch_id: partial.epoch_id,
            count: partial.acc.count,
            sum: partial.acc.sum,
            min: partial.acc.min,
            max: partial.acc.max,
            per_location: partial.acc.per_location.into_iter().collect(),
            rows: partial.acc.rows,
            rows_fetched: partial.rows_fetched as u64,
            rows_decrypted: partial.rows_decrypted as u64,
            verified: partial.verified,
        }
    }
}

impl WirePartial {
    /// Convert back into the engine-side partial for
    /// [`concealer_core::merge_partials`].
    #[must_use]
    pub fn into_partial(self) -> concealer_core::EpochPartial {
        concealer_core::EpochPartial {
            epoch_id: self.epoch_id,
            acc: concealer_core::query::Accumulator {
                count: self.count,
                sum: self.sum,
                min: self.min,
                max: self.max,
                per_location: self.per_location.into_iter().collect(),
                rows: self.rows,
            },
            rows_fetched: self.rows_fetched as usize,
            rows_decrypted: self.rows_decrypted as usize,
            verified: self.verified,
        }
    }
}

/// One per-query outcome of a partial execution
/// ([`Response::PartialAnswer`] / [`Response::BatchPartialAnswer`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WirePartialResult {
    /// The query's per-epoch partials over this server's slice (possibly
    /// empty — other shards may own the query's epochs).
    Ok(Vec<WirePartial>),
    /// The query failed on this server's slice.
    Err(WireError),
}

impl WirePartialResult {
    /// Convert into a std `Result`.
    pub fn into_result(self) -> Result<Vec<WirePartial>, WireError> {
        match self {
            WirePartialResult::Ok(partials) => Ok(partials),
            WirePartialResult::Err(e) => Err(e),
        }
    }
}

impl From<Result<Vec<concealer_core::EpochPartial>, concealer_core::CoreError>>
    for WirePartialResult
{
    fn from(result: Result<Vec<concealer_core::EpochPartial>, concealer_core::CoreError>) -> Self {
        match result {
            Ok(partials) => {
                WirePartialResult::Ok(partials.into_iter().map(WirePartial::from).collect())
            }
            Err(e) => WirePartialResult::Err(WireError::from(&e)),
        }
    }
}

/// A router's per-shard forwarding counters, reported by
/// [`Response::RouterStatsOk`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// One entry per configured upstream shard, ascending by index.
    pub shards: Vec<ShardLoad>,
}

/// One replica-set member's load counters inside [`RouterStats`]. Before
/// v3 a shard had exactly one member; a v3 router reports one entry per
/// member, ascending by `(shard_index, member)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoad {
    /// The shard's index in the deployment.
    pub shard_index: u32,
    /// The member's upstream address, as configured on the router.
    pub addr: String,
    /// Requests forwarded to this member (auth probes included).
    pub requests_forwarded: u64,
    /// Forwards that failed (timeout, refused connection, wire error).
    pub errors: u64,
    /// Times the router re-established this member's connections.
    pub reconnects: u64,
    /// Whether the member was reachable at snapshot time (false while the
    /// router is backing off from a failed reconnect).
    pub available: bool,
    /// The member's position within its shard's replica set (v3; 0-based,
    /// configuration order).
    pub member: u32,
    /// Whether the router currently routes this shard's ingest to this
    /// member (v3; moves on promotion).
    pub writer: bool,
}

/// One enclave's attestation evidence inside [`Response::AttestOk`] (v4):
/// the wire form of [`concealer_enclave::Quote`], tagged with which shard
/// member produced it. A single server reports one quote; a router reports
/// one per reachable upstream member, so the client sees every enclave its
/// queries may touch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireQuote {
    /// The shard index of the member that produced this quote (`0` when
    /// unsharded).
    pub shard_index: u32,
    /// The member's position within its shard's replica set (0-based).
    pub member: u32,
    /// The enclave's deterministic measurement (hash over code version and
    /// configuration).
    pub measurement: [u8; 32],
    /// The enclave code version baked into the measurement.
    pub code_version: u32,
    /// When the quote was produced (seconds since the Unix epoch); clients
    /// bound its age via their trust policy.
    pub timestamp: u64,
    /// The client nonce this quote answers (echoed from the request).
    pub nonce: [u8; 32],
    /// Signature binding measurement, code version, timestamp and nonce
    /// under the simulated attestation root key.
    pub signature: [u8; 32],
}

/// Server → client messages. Replies echo the request id. The threaded
/// server answers in request order per connection; the event server
/// completes pipelined requests out of order — clients must match replies
/// by id (the `concealer-client` crate parks out-of-order replies, so
/// both behaviours look identical through it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The handshake succeeded; the connection may now issue requests.
    HelloOk(ServerInfo),
    /// Reply to [`Request::Execute`].
    Answer {
        /// The echoed request id.
        id: u64,
        /// The answer, metadata included.
        answer: QueryAnswer,
    },
    /// Reply to [`Request::ExecuteBatch`], positionally aligned with the
    /// request's `queries`.
    BatchAnswer {
        /// The echoed request id.
        id: u64,
        /// Per-query outcomes.
        results: Vec<WireResult>,
    },
    /// Reply to [`Request::IngestEpoch`].
    IngestOk {
        /// The echoed request id.
        id: u64,
        /// The epoch id ingested (its start time).
        epoch_id: u64,
        /// Rows now stored for the epoch (reals plus volume-hiding fakes).
        rows_stored: u64,
    },
    /// Reply to [`Request::Stats`].
    StatsOk {
        /// The echoed request id.
        id: u64,
        /// The backend profile.
        stats: WireStats,
    },
    /// Reply to [`Request::Shutdown`]: acknowledged; the server exits
    /// after draining.
    ShutdownOk {
        /// The echoed request id.
        id: u64,
    },
    /// A structured error reply. `id` is the failed request's id, or
    /// [`CONNECTION_LEVEL_ID`] for connection-level failures.
    Error {
        /// The request id, or [`CONNECTION_LEVEL_ID`].
        id: u64,
        /// What went wrong.
        error: WireError,
    },
    /// Reply to [`Request::Goodbye`]; the server closes afterwards.
    Bye,
    /// Reply to [`Request::ServeStats`].
    ServeStatsOk {
        /// The echoed request id.
        id: u64,
        /// The serving layer's live profile.
        stats: ServeStats,
    },
    /// Reply to [`Request::ShardInfo`].
    ShardInfoOk {
        /// The echoed request id.
        id: u64,
        /// The epoch slice this server owns.
        shard: ShardDescriptor,
    },
    /// Reply to [`Request::ExecutePartial`].
    PartialAnswer {
        /// The echoed request id.
        id: u64,
        /// The query's per-epoch partials over this server's slice.
        result: WirePartialResult,
    },
    /// Reply to [`Request::ExecuteBatchPartial`], positionally aligned
    /// with the request's `queries`.
    BatchPartialAnswer {
        /// The echoed request id.
        id: u64,
        /// Per-query outcomes.
        results: Vec<WirePartialResult>,
    },
    /// Reply to [`Request::RouterStats`].
    RouterStatsOk {
        /// The echoed request id.
        id: u64,
        /// The router's per-shard forwarding counters.
        stats: RouterStats,
    },
    /// Reply to [`Request::Promote`]: this server now owns its store root.
    PromoteOk {
        /// The echoed request id.
        id: u64,
        /// Epochs newly registered by the promotion's recovery pass (zero
        /// when the refresh loop had already absorbed everything, or the
        /// server was already the writer).
        epochs_registered: u64,
    },
    /// Reply to [`Request::Attest`] (v4): the enclave quote(s) answering
    /// the request's nonce. A failed attestation is a
    /// [`Response::Error`] with
    /// [`crate::error::ErrorCode::AttestationFailed`] instead.
    AttestOk {
        /// The echoed request id.
        id: u64,
        /// One quote per serving enclave: a single entry from a shard
        /// server, one per reachable replica-set member from a router.
        quotes: Vec<WireQuote>,
    },
}

impl Response {
    /// The request id this response answers ([`CONNECTION_LEVEL_ID`] for
    /// handshake/close frames).
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Response::HelloOk(_) | Response::Bye => CONNECTION_LEVEL_ID,
            Response::Answer { id, .. }
            | Response::BatchAnswer { id, .. }
            | Response::IngestOk { id, .. }
            | Response::StatsOk { id, .. }
            | Response::ShutdownOk { id }
            | Response::Error { id, .. }
            | Response::ServeStatsOk { id, .. }
            | Response::ShardInfoOk { id, .. }
            | Response::PartialAnswer { id, .. }
            | Response::BatchPartialAnswer { id, .. }
            | Response::RouterStatsOk { id, .. }
            | Response::PromoteOk { id, .. }
            | Response::AttestOk { id, .. } => *id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorCode;
    use serde::bin::{from_bytes, to_bytes};

    fn roundtrip<T>(value: &T) -> T
    where
        T: Serialize + serde::DeserializeOwned,
    {
        from_bytes(&to_bytes(value)).expect("round-trip decode")
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Hello {
                version: PROTOCOL_VERSION,
                user_id: 7,
                credential: [9u8; 32],
                client_name: "test".into(),
            },
            Request::Execute {
                id: 1,
                query: Query::count().at_dims([3]).between(0, 1799),
                options: Some(ExecOptions::default()),
            },
            Request::ExecuteBatch {
                id: 2,
                queries: vec![
                    Query::count().at_dims([3]).at(60),
                    Query::top_k_locations(4).between(0, 3599),
                ],
                options: None,
            },
            Request::IngestEpoch {
                id: 3,
                epoch_start: 7200,
                records: vec![Record::spatial(1, 7260, 1001)],
            },
            Request::Stats { id: 4 },
            Request::Shutdown { id: 5 },
            Request::Goodbye,
            Request::ServeStats { id: 6 },
            Request::ShardInfo { id: 7 },
            Request::ExecutePartial {
                id: 8,
                query: Query::average(0).between(0, 7199),
                options: None,
            },
            Request::ExecuteBatchPartial {
                id: 9,
                queries: vec![Query::count().at_dims([1]).at(60)],
                options: Some(ExecOptions::default()),
            },
            Request::RouterStats { id: 10 },
            Request::Promote { id: 11 },
            Request::Attest {
                id: 12,
                nonce: [0xA5u8; 32],
            },
        ];
        for request in requests {
            assert_eq!(roundtrip(&request), request);
        }
    }

    #[test]
    fn responses_round_trip() {
        use concealer_core::query::AnswerValue;
        let answer = QueryAnswer {
            value: AnswerValue::Count(17),
            rows_fetched: 120,
            rows_decrypted: 0,
            verified: true,
            epochs_touched: 1,
        };
        let responses = [
            Response::HelloOk(ServerInfo {
                protocol_version: PROTOCOL_VERSION,
                server_name: "s".into(),
                backend: "memory".into(),
                max_batch: 256,
                max_frame_len: 4 << 20,
                ingest_allowed: true,
            }),
            Response::Answer {
                id: 1,
                answer: answer.clone(),
            },
            Response::BatchAnswer {
                id: 2,
                results: vec![
                    WireResult::Ok(answer),
                    WireResult::Err(WireError {
                        code: ErrorCode::NoDataForRange,
                        message: "no ingested epoch overlaps".into(),
                    }),
                ],
            },
            Response::IngestOk {
                id: 3,
                epoch_id: 7200,
                rows_stored: 640,
            },
            Response::StatsOk {
                id: 4,
                stats: WireStats {
                    backend: "concealer".into(),
                    epochs: 2,
                    rows_stored: 1280,
                    volume_hiding: true,
                    verifiable: true,
                },
            },
            Response::ShutdownOk { id: 5 },
            Response::Error {
                id: CONNECTION_LEVEL_ID,
                error: WireError {
                    code: ErrorCode::Busy,
                    message: "connection cap reached".into(),
                },
            },
            Response::Bye,
            Response::ServeStatsOk {
                id: 6,
                stats: ServeStats {
                    mode: "event".into(),
                    connections: 3,
                    peak_connections: 11,
                    connections_served: 40,
                    in_flight: 2,
                    backlog: 1,
                    loop_iterations: 12345,
                    requests_served: 678,
                },
            },
            Response::ShardInfoOk {
                id: 7,
                shard: ShardDescriptor {
                    shard_index: 1,
                    shard_total: 3,
                    epoch_duration: 7200,
                    epochs: vec![0, 14_400],
                    role: ShardRole::Replica,
                    store_generation: 12,
                },
            },
            Response::PartialAnswer {
                id: 8,
                result: WirePartialResult::Ok(vec![WirePartial {
                    epoch_id: 7200,
                    count: 5,
                    sum: 90,
                    min: Some(3),
                    max: Some(40),
                    per_location: vec![(1, 2), (4, 3)],
                    rows: vec![Record::spatial(1, 7260, 1001)],
                    rows_fetched: 64,
                    rows_decrypted: 64,
                    verified: true,
                }]),
            },
            Response::BatchPartialAnswer {
                id: 9,
                results: vec![
                    WirePartialResult::Ok(Vec::new()),
                    WirePartialResult::Err(WireError {
                        code: ErrorCode::ShardUnavailable,
                        message: "shard 2 unreachable".into(),
                    }),
                ],
            },
            Response::RouterStatsOk {
                id: 10,
                stats: RouterStats {
                    shards: vec![ShardLoad {
                        shard_index: 0,
                        addr: "127.0.0.1:9100".into(),
                        requests_forwarded: 42,
                        errors: 1,
                        reconnects: 2,
                        available: true,
                        member: 1,
                        writer: false,
                    }],
                },
            },
            Response::PromoteOk {
                id: 11,
                epochs_registered: 3,
            },
            Response::AttestOk {
                id: 12,
                quotes: vec![WireQuote {
                    shard_index: 2,
                    member: 1,
                    measurement: [7u8; 32],
                    code_version: 1,
                    timestamp: 1_700_000_000,
                    nonce: [0xA5u8; 32],
                    signature: [9u8; 32],
                }],
            },
        ];
        for response in responses {
            assert_eq!(roundtrip(&response), response);
        }
    }

    #[test]
    fn wire_partial_round_trips_through_engine_form() {
        let wire = WirePartial {
            epoch_id: 3600,
            count: 7,
            sum: 120,
            min: Some(2),
            max: Some(60),
            per_location: vec![(0, 4), (5, 3)],
            rows: vec![Record::spatial(2, 3660, 1002)],
            rows_fetched: 128,
            rows_decrypted: 96,
            verified: true,
        };
        let back = WirePartial::from(wire.clone().into_partial());
        assert_eq!(back, wire);
    }

    #[test]
    fn ids_are_extracted() {
        assert_eq!(Request::Stats { id: 9 }.id(), 9);
        assert_eq!(Request::Goodbye.id(), CONNECTION_LEVEL_ID);
        assert_eq!(Request::ServeStats { id: 9 }.id(), 9);
        assert_eq!(Response::ShutdownOk { id: 9 }.id(), 9);
        assert_eq!(Response::Bye.id(), CONNECTION_LEVEL_ID);
        assert_eq!(
            Response::ServeStatsOk {
                id: 9,
                stats: ServeStats {
                    mode: "threaded".into(),
                    connections: 0,
                    peak_connections: 0,
                    connections_served: 0,
                    in_flight: 0,
                    backlog: 0,
                    loop_iterations: 0,
                    requests_served: 0,
                },
            }
            .id(),
            9
        );
    }
}
