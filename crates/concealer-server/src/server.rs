//! The multi-client TCP front-end: thread-per-connection on the scoped
//! thread pool, with a connection cap, engine admission control, and
//! graceful drain on shutdown.
//!
//! Concurrency model:
//!
//! * One acceptor loop (the serve thread) polls a non-blocking listener
//!   and hands each accepted socket to a task on the rayon-shim scoped
//!   pool — one worker per allowed connection, so the pool size *is* the
//!   connection cap. Connections beyond [`ServerConfig::max_connections`]
//!   are refused eagerly with a [`ErrorCode::Busy`] error frame.
//! * Each connection task owns its socket and processes requests
//!   serially, so one connection has at most one request executing — a
//!   pipelining client queues further frames in the socket buffer, which
//!   is the per-session in-flight bound.
//! * Across connections, execution dispatches into the engine through an
//!   admission gate bounding concurrently executing requests
//!   ([`ServerConfig::max_in_flight`]). A connection waiting on the gate
//!   stops reading its socket, so TCP flow control propagates the
//!   backpressure all the way to the client.
//! * Queries run on the shared [`ConcealerSystem`] through ordinary
//!   [`Session`](concealer_core::Session) handles; ingest takes `&self`
//!   on the sharded store, so epochs land concurrently with live query
//!   traffic.
//!
//! Shutdown (via [`ServerHandle::signal_shutdown`] or a wire
//! `Request::Shutdown`) is graceful: the acceptor stops, every
//! connection's read half is shut down so blocked reads wake, in-flight
//! requests still write their replies, and the serve thread joins all
//! connection tasks before reporting.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use concealer_core::{
    shard_of_epoch, ConcealerSystem, Credential, ExecOptions, QueryScope, SecureIndex, UserHandle,
    UserId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::frame::{read_frame, write_frame, FrameError};

use crate::error::{ErrorCode, WireError};
use crate::protocol::{
    Request, Response, ServeStats, ServerInfo, ShardDescriptor, WirePartialResult, WireResult,
    CONNECTION_LEVEL_ID, DEFAULT_MAX_BATCH, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// Which serving core handles connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// Thread-per-connection on the scoped pool (the PR 5 reference
    /// implementation): simple, strictly ordered replies, concurrency
    /// capped at the pool size.
    #[default]
    Threaded,
    /// Readiness-driven non-blocking core (`crate::event`): one event
    /// loop multiplexing every socket, a small worker pool executing
    /// engine requests, connection count decoupled from thread count.
    /// Unix-only (the readiness shim is epoll/poll-based).
    Event,
}

impl ServerMode {
    /// Stable lowercase name (`"threaded"` / `"event"`), as reported in
    /// [`ServeStats::mode`] and the binary's READY line.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServerMode::Threaded => "threaded",
            ServerMode::Event => "event",
        }
    }

    /// Parse the CLI/env spelling.
    pub fn parse(s: &str) -> Result<ServerMode, String> {
        match s {
            "threaded" => Ok(ServerMode::Threaded),
            "event" => Ok(ServerMode::Event),
            other => Err(format!("unknown server mode {other:?} (threaded|event)")),
        }
    }

    /// The default mode, honoring the `CONCEALER_TEST_SERVER_MODE`
    /// harness hook (same pattern as `CONCEALER_TEST_BACKEND`): it lets
    /// CI re-run the unchanged loopback suite against the event core.
    /// Unrecognized values fall back to [`ServerMode::Threaded`].
    #[must_use]
    pub fn from_env_default() -> ServerMode {
        std::env::var("CONCEALER_TEST_SERVER_MODE")
            .ok()
            .and_then(|v| ServerMode::parse(&v).ok())
            .unwrap_or(ServerMode::Threaded)
    }
}

/// Everything that tunes a [`Server`] deployment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port `0` picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub bind: SocketAddr,
    /// Name reported in the handshake.
    pub server_name: String,
    /// Maximum concurrently served connections (also the thread-pool
    /// size). Further connections receive a `Busy` error frame.
    pub max_connections: usize,
    /// Maximum queries per `ExecuteBatch` request.
    pub max_batch: usize,
    /// Maximum frame payload size accepted (and advertised).
    pub max_frame_len: usize,
    /// Maximum requests executing concurrently inside the engine; excess
    /// requests wait, which backpressures their connections.
    pub max_in_flight: usize,
    /// Cap applied to client-supplied `ExecOptions::parallelism`.
    pub max_parallelism: usize,
    /// Whether `IngestEpoch` requests are accepted (the simulated data
    /// provider channel; disable on query-only deployments).
    pub allow_ingest: bool,
    /// Seed for the per-ingest RNG: the RNG for epoch `e` is derived as
    /// `ingest_seed ^ mix(e)`, so a server restarted with the same seed
    /// ingests identically (what lets soak oracles predict post-ingest
    /// state).
    pub ingest_seed: u64,
    /// Which serving core runs the deployment (see [`ServerMode`]).
    pub mode: ServerMode,
    /// Event mode only: maximum requests one connection may have
    /// dispatched but unanswered. At the cap the loop stops reading that
    /// connection's socket, so TCP flow control backpressures the client
    /// exactly as the threaded core's one-at-a-time reads do.
    pub max_pipeline: usize,
    /// Multi-node serving: `Some((index, total))` makes this process own
    /// the epoch-hash slice `index` of `total` (the
    /// [`concealer_core::shard_of_epoch`] discipline). The slice is
    /// reported via `Request::ShardInfo`, and wire ingest of unowned
    /// epochs is refused so a misrouted ingest can never split an epoch
    /// across processes. `None` (the default) serves every epoch.
    pub shard: Option<(u32, u32)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            server_name: "concealer-server".to_string(),
            max_connections: 16,
            max_batch: DEFAULT_MAX_BATCH,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_in_flight: 8,
            max_parallelism: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            allow_ingest: true,
            ingest_seed: 0xC0CE_A1E5_0000_0001,
            mode: ServerMode::from_env_default(),
            max_pipeline: 64,
            shard: None,
        }
    }
}

/// What a serving core asks of the deployment behind it. Both cores
/// (threaded and event) speak the wire protocol themselves — framing,
/// connection state machine, pipelining, drain — and delegate everything
/// that needs the deployment to a handler:
///
/// * [`EngineHandler`] (what [`Server::new`] installs) answers against a
///   local [`ConcealerSystem`] — the single-process and shard-server
///   deployments;
/// * the `concealer-router` crate's handler answers by fanning out to
///   shard servers and merging their per-epoch partials.
///
/// `handshake` and `execute` may block; the event core always calls them
/// on a worker thread, the threaded core on the connection's own thread.
/// `shard_info` and `router_stats` must be cheap — the event core answers
/// them on the loop itself.
pub trait ServeHandler: Send + Sync + 'static {
    /// Validate a `Hello`: protocol version, then credential. `Err` is
    /// the refusal reply to send before closing.
    fn handshake(
        &self,
        version: u32,
        user_id: u64,
        credential: [u8; 32],
    ) -> Result<(UserHandle, ServerInfo), Response>;

    /// Execute one authenticated engine-bound request
    /// (`Execute`/`ExecuteBatch`/`ExecutePartial`/`ExecuteBatchPartial`/
    /// `IngestEpoch`/`Stats`) to completion. The core has already
    /// rejected reserved ids.
    fn execute(&self, user: &UserHandle, request: Request) -> Response;

    /// Answer pre-auth topology discovery (`Request::ShardInfo`).
    fn shard_info(&self, id: u64) -> Response;

    /// Answer the pre-auth attestation challenge (`Request::Attest`, v4):
    /// produce the serving enclave's quote(s) over `nonce`. May block —
    /// a router dials every upstream member for its quote — so the event
    /// core always calls this on a worker thread.
    fn attest(&self, id: u64, nonce: [u8; 32]) -> Response;

    /// Answer `Request::RouterStats` (shard servers refuse it).
    fn router_stats(&self, id: u64) -> Response;

    /// A wire `Shutdown` was accepted on behalf of `user`; a router
    /// forwards the shutdown to its upstreams here. Called before the
    /// core acknowledges, and may block briefly.
    fn on_wire_shutdown(&self, user: &UserHandle) {
        let _ = user;
    }
}

/// The [`ServeHandler`] answering against a local [`ConcealerSystem`] —
/// what every non-router deployment uses.
#[derive(Debug)]
pub struct EngineHandler {
    system: Arc<ConcealerSystem>,
    config: ServerConfig,
}

impl EngineHandler {
    /// Wrap a local deployment.
    #[must_use]
    pub fn new(system: Arc<ConcealerSystem>, config: ServerConfig) -> Self {
        EngineHandler { system, config }
    }
}

impl ServeHandler for EngineHandler {
    fn handshake(
        &self,
        version: u32,
        user_id: u64,
        credential: [u8; 32],
    ) -> Result<(UserHandle, ServerInfo), Response> {
        handshake(&self.system, &self.config, version, user_id, credential)
    }

    fn execute(&self, user: &UserHandle, request: Request) -> Response {
        execute_engine_request(&self.system, &self.config, user, request)
    }

    fn shard_info(&self, id: u64) -> Response {
        Response::ShardInfoOk {
            id,
            shard: shard_descriptor(&self.system, &self.config),
        }
    }

    fn attest(&self, id: u64, nonce: [u8; 32]) -> Response {
        Response::AttestOk {
            id,
            quotes: vec![local_quote(&self.system, &self.config, nonce)],
        }
    }

    fn router_stats(&self, id: u64) -> Response {
        router_stats_refusal(id)
    }
}

/// Produce this process's own enclave quote as a wire quote. Shared by
/// [`EngineHandler`] and any deployment that reports its local enclave
/// (member `0` — the member index is a replica-set notion only a router
/// knows; it rewrites the tag when forwarding).
pub(crate) fn local_quote(
    system: &ConcealerSystem,
    config: &ServerConfig,
    nonce: [u8; 32],
) -> crate::protocol::WireQuote {
    let (shard_index, _total) = config.shard.unwrap_or((0, 1));
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let quote = system.engine().enclave().quote(nonce, timestamp);
    crate::protocol::WireQuote {
        shard_index,
        member: 0,
        measurement: quote.measurement,
        code_version: quote.code_version,
        timestamp: quote.timestamp,
        nonce: quote.nonce,
        signature: quote.signature,
    }
}

/// Totals the serve loop reports after draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Connections accepted and served (not counting busy-rejects).
    pub connections_served: u64,
    /// Requests answered (any reply, including error replies).
    pub requests_served: u64,
    /// Connections refused at the cap.
    pub rejected_busy: u64,
    /// Whether the loop exited via a shutdown signal (as opposed to a
    /// listener error).
    pub graceful: bool,
}

/// A deployment handler plus the serving configuration; [`Server::spawn`]
/// turns it into a running listener.
pub struct Server {
    handler: Arc<dyn ServeHandler>,
    config: ServerConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Wrap a deployment for serving. The system is shared — the caller
    /// may keep using its own [`Session`](concealer_core::Session) handles
    /// (the loopback tests use exactly that as the oracle).
    #[must_use]
    pub fn new(system: Arc<ConcealerSystem>, config: ServerConfig) -> Self {
        let handler = Arc::new(EngineHandler::new(system, config.clone()));
        Server { handler, config }
    }

    /// Serve an arbitrary [`ServeHandler`] — how `concealer-router` reuses
    /// both serving cores (frame handling, connection state machine,
    /// pipelining, drain) with fan-out execution instead of a local
    /// engine.
    #[must_use]
    pub fn with_handler(handler: Arc<dyn ServeHandler>, config: ServerConfig) -> Self {
        Server { handler, config }
    }

    /// Bind the configured address and start serving on a background
    /// thread. Returns once the listener is bound, so
    /// [`ServerHandle::local_addr`] is immediately connectable.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(self.config.bind)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_shutdown = Arc::clone(&shutdown);
        let (thread, waker) = match self.config.mode {
            ServerMode::Threaded => {
                let thread = std::thread::Builder::new()
                    .name("concealer-serve".to_string())
                    .spawn(move || {
                        serve(&*self.handler, &self.config, &listener, &thread_shutdown)
                    })?;
                (thread, None)
            }
            #[cfg(unix)]
            ServerMode::Event => crate::event::spawn(
                Arc::clone(&self.handler),
                self.config.clone(),
                listener,
                thread_shutdown,
            )?,
            #[cfg(not(unix))]
            ServerMode::Event => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "event mode requires a Unix readiness backend; use ServerMode::Threaded",
                ))
            }
        };
        Ok(ServerHandle {
            local_addr,
            shutdown,
            thread,
            waker,
        })
    }
}

/// A running server: the bound address, the shutdown signal, and the serve
/// thread to join.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<ServeReport>,
    /// Event mode only: pokes the readiness loop so a locally signalled
    /// shutdown is noticed immediately instead of at the next poll
    /// timeout. The threaded acceptor polls on a short interval and needs
    /// no wake-up.
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .field("shutdown", &self.shutdown)
            .field("has_waker", &self.waker.is_some())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port
    /// resolved).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Ask the server to shut down gracefully; returns immediately. The
    /// acceptor notices within its poll interval, wakes every connection,
    /// and drains in-flight requests.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(waker) = &self.waker {
            waker();
        }
    }

    /// Whether a shutdown has been signalled (locally or over the wire).
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Wait for the serve loop to finish and return its report. Panics if
    /// the serve thread panicked.
    pub fn join(self) -> ServeReport {
        self.thread.join().expect("serve thread panicked")
    }

    /// [`ServerHandle::signal_shutdown`] then [`ServerHandle::join`].
    pub fn shutdown_and_join(self) -> ServeReport {
        self.signal_shutdown();
        self.join()
    }
}

/// Counting admission gate: at most `max` holders at a time; `acquire`
/// blocks (backpressure) until a slot frees.
struct Admission {
    max: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    fn new(max: usize) -> Self {
        Admission {
            max: max.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) -> AdmissionPermit<'_> {
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *in_flight >= self.max {
            in_flight = self
                .freed
                .wait(in_flight)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *in_flight += 1;
        AdmissionPermit { gate: self }
    }
}

struct AdmissionPermit<'a> {
    gate: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut in_flight = self
            .gate
            .in_flight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *in_flight -= 1;
        drop(in_flight);
        self.gate.freed.notify_one();
    }
}

/// Read-half handles of live connections, so shutdown can wake blocked
/// reads without tearing down in-flight replies (writes stay open).
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    fn register(&self, conn_id: u64, stream: TcpStream) {
        self.streams
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(conn_id, stream);
    }

    fn deregister(&self, conn_id: u64) {
        self.streams
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&conn_id);
    }

    fn wake_all(&self) {
        let streams = self
            .streams
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// State shared between the acceptor and every connection task.
struct ServeShared<'a> {
    handler: &'a dyn ServeHandler,
    config: &'a ServerConfig,
    shutdown: &'a AtomicBool,
    admission: Admission,
    registry: ConnRegistry,
    active: AtomicUsize,
    peak: AtomicUsize,
    connections_served: AtomicU64,
    requests_served: AtomicU64,
}

/// How often the acceptor polls the non-blocking listener (and thus the
/// worst-case latency of noticing a shutdown signal).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// The serve loop: accept until shutdown, then drain.
fn serve(
    handler: &dyn ServeHandler,
    config: &ServerConfig,
    listener: &TcpListener,
    shutdown: &AtomicBool,
) -> ServeReport {
    let shared = ServeShared {
        handler,
        config,
        shutdown,
        admission: Admission::new(config.max_in_flight),
        registry: ConnRegistry::default(),
        active: AtomicUsize::new(0),
        peak: AtomicUsize::new(0),
        connections_served: AtomicU64::new(0),
        requests_served: AtomicU64::new(0),
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.max_connections.max(1))
        .build()
        .expect("the shim thread pool builder is infallible");

    let mut report = ServeReport::default();
    pool.scope(|scope| {
        let mut next_conn_id: u64 = 1;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                report.graceful = true;
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if shared.active.load(Ordering::Acquire) >= config.max_connections {
                        report.rejected_busy += 1;
                        refuse_busy(stream);
                        continue;
                    }
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    report.connections_served += 1;
                    shared.connections_served.fetch_add(1, Ordering::AcqRel);
                    if let Ok(read_half) = stream.try_clone() {
                        shared.registry.register(conn_id, read_half);
                    }
                    let live = shared.active.fetch_add(1, Ordering::AcqRel) + 1;
                    shared.peak.fetch_max(live, Ordering::AcqRel);
                    let shared_ref = &shared;
                    scope.spawn(move |_| {
                        handle_connection(shared_ref, stream);
                        shared_ref.registry.deregister(conn_id);
                        shared_ref.active.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Wake every blocked read so connection tasks can drain; their
        // in-flight replies still go out on the intact write halves.
        shared.registry.wake_all();
    });
    report.requests_served = shared.requests_served.load(Ordering::Acquire);
    report
}

/// Refuse a connection over the cap with a structured `Busy` error frame.
///
/// The client has typically already written its `Hello`; closing the
/// socket with those bytes unread can emit an RST that discards the Busy
/// frame from the client's receive queue. So after writing the frame,
/// signal end-of-stream (write-half shutdown) and briefly drain the
/// client's pending bytes until it closes, so the reply is reliably
/// delivered before the socket goes away.
fn refuse_busy(mut stream: TcpStream) {
    use std::io::Read as _;
    let reply = Response::Error {
        id: CONNECTION_LEVEL_ID,
        error: WireError::new(ErrorCode::Busy, "connection cap reached; retry later"),
    };
    let _ = write_frame(&mut stream, &reply);
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 512];
    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
}

/// Per-connection protocol state.
enum ConnState {
    AwaitingHello,
    Ready(UserHandle),
}

/// Serve one connection until it closes, errors, or the server drains.
fn handle_connection(shared: &ServeShared<'_>, mut stream: TcpStream) {
    let mut state = ConnState::AwaitingHello;
    // Whether this connection has completed a successful `Attest` (v4).
    // `Hello` is refused until it has, so a client can never hand its
    // credential to an enclave that failed (or skipped) measurement.
    let mut attested = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            // Drain mode: tell a client that is still talking, then leave.
            let _ = send(
                shared,
                &mut stream,
                &error_reply(
                    CONNECTION_LEVEL_ID,
                    ErrorCode::ShuttingDown,
                    "server is draining",
                ),
            );
            return;
        }
        let request: Request = match read_frame(&mut stream, shared.config.max_frame_len) {
            Ok(request) => request,
            Err(FrameError::Closed) => return,
            Err(FrameError::TooLarge { len, max }) => {
                // The oversized payload was drained; the stream is still
                // frame-aligned, so the connection survives.
                let reply = error_reply(
                    CONNECTION_LEVEL_ID,
                    ErrorCode::FrameTooLarge,
                    format!("frame of {len} bytes exceeds the {max}-byte limit"),
                );
                if send(shared, &mut stream, &reply).is_err() {
                    return;
                }
                continue;
            }
            Err(FrameError::Decode(e)) => {
                // A malformed payload means the peer speaks a different
                // dialect; reply structurally, then close.
                let reply = error_reply(
                    CONNECTION_LEVEL_ID,
                    ErrorCode::MalformedFrame,
                    format!("payload did not decode as a request: {e}"),
                );
                let _ = send(shared, &mut stream, &reply);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };

        let outcome = match (&state, request) {
            (
                ConnState::AwaitingHello,
                Request::Hello {
                    version,
                    user_id,
                    credential,
                    client_name,
                },
            ) => {
                let _ = client_name;
                if !attested {
                    Outcome::Fatal(error_reply(
                        CONNECTION_LEVEL_ID,
                        ErrorCode::AttestationFailed,
                        "Hello before a successful Attest; complete the \
                         attestation exchange first",
                    ))
                } else {
                    match shared.handler.handshake(version, user_id, credential) {
                        Ok((user, info)) => {
                            state = ConnState::Ready(user);
                            Outcome::Reply(Response::HelloOk(info))
                        }
                        Err(reply) => Outcome::Fatal(reply),
                    }
                }
            }
            // The pre-authentication surface is exactly {Attest, ShardInfo}.
            // Topology discovery is answerable before authentication: a
            // router probes every shard's slice at startup, before it has
            // any client credential to forward. The descriptor only names
            // which epochs this process serves — data never moves without
            // an authenticated session.
            (_, Request::ShardInfo { id }) => {
                if id == CONNECTION_LEVEL_ID {
                    reserved_id()
                } else {
                    Outcome::Reply(shared.handler.shard_info(id))
                }
            }
            // Attestation is the other pre-auth request — necessarily so,
            // because clients refuse to send Hello until quotes verify.
            // After authentication it is a protocol violation (the
            // connection's trust decision was already made).
            (ConnState::AwaitingHello, Request::Attest { id, nonce }) => {
                if id == CONNECTION_LEVEL_ID {
                    reserved_id()
                } else {
                    let reply = shared.handler.attest(id, nonce);
                    if matches!(reply, Response::AttestOk { .. }) {
                        attested = true;
                    }
                    Outcome::Reply(reply)
                }
            }
            (ConnState::Ready(_), Request::Attest { .. }) => Outcome::Fatal(error_reply(
                CONNECTION_LEVEL_ID,
                ErrorCode::ProtocolViolation,
                "Attest must precede authentication",
            )),
            (ConnState::AwaitingHello, _) => Outcome::Fatal(error_reply(
                CONNECTION_LEVEL_ID,
                ErrorCode::NotAuthenticated,
                "the first request must be Hello",
            )),
            (ConnState::Ready(_), Request::Hello { .. }) => Outcome::Fatal(error_reply(
                CONNECTION_LEVEL_ID,
                ErrorCode::ProtocolViolation,
                "connection is already authenticated",
            )),
            (ConnState::Ready(user), request) => dispatch(shared, user, request),
        };

        match outcome {
            Outcome::Reply(reply) => {
                if send(shared, &mut stream, &reply).is_err() {
                    return;
                }
            }
            Outcome::Fatal(reply) => {
                let _ = send(shared, &mut stream, &reply);
                return;
            }
            Outcome::Close(reply) => {
                let _ = send(shared, &mut stream, &reply);
                return;
            }
        }
    }
}

/// What a handled request means for the connection.
enum Outcome {
    /// Send and keep serving.
    Reply(Response),
    /// Send and close because the connection is unrecoverable.
    Fatal(Response),
    /// Send and close cleanly (Goodbye).
    Close(Response),
}

/// Validate the hello frame: protocol version, then credential. Shared
/// by both serving cores.
pub(crate) fn handshake(
    system: &ConcealerSystem,
    config: &ServerConfig,
    version: u32,
    user_id: u64,
    credential: [u8; 32],
) -> Result<(UserHandle, ServerInfo), Response> {
    if version != PROTOCOL_VERSION {
        return Err(error_reply(
            CONNECTION_LEVEL_ID,
            ErrorCode::UnsupportedVersion,
            format!("server speaks protocol {PROTOCOL_VERSION}, client sent {version}"),
        ));
    }
    let user_id = UserId(user_id);
    let credential = Credential(credential);
    // The handshake authenticates the credential only; scope authorization
    // stays per-query. `open_session` checks both, so a credential-valid
    // but aggregate-unauthorized user comes back `Unauthorized` — accept
    // those here and let each query's own scope check decide.
    match system
        .engine()
        .enclave()
        .open_session(user_id, &credential, QueryScope::Aggregate)
    {
        Ok(_) => {}
        Err(concealer_core::EnclaveError::Unauthorized { .. }) => {}
        Err(e) => {
            return Err(error_reply(
                CONNECTION_LEVEL_ID,
                ErrorCode::AuthFailed,
                format!("credential rejected: {e}"),
            ))
        }
    }
    let info = ServerInfo {
        protocol_version: PROTOCOL_VERSION,
        server_name: config.server_name.clone(),
        backend: system.store().backend_kind().to_string(),
        max_batch: config.max_batch as u64,
        max_frame_len: config.max_frame_len as u64,
        ingest_allowed: config.allow_ingest,
    };
    Ok((
        UserHandle {
            user_id,
            credential,
        },
        info,
    ))
}

/// Execute one authenticated request.
fn dispatch(shared: &ServeShared<'_>, user: &UserHandle, request: Request) -> Outcome {
    match request {
        Request::Hello { .. } => unreachable!("handled by the connection state machine"),
        Request::Goodbye => Outcome::Close(Response::Bye),
        Request::ShardInfo { .. } | Request::Attest { .. } => {
            unreachable!("handled pre-dispatch by the connection state machine")
        }
        Request::RouterStats { id } => {
            if id == CONNECTION_LEVEL_ID {
                return reserved_id();
            }
            Outcome::Reply(shared.handler.router_stats(id))
        }
        Request::Execute { id, .. }
        | Request::ExecuteBatch { id, .. }
        | Request::ExecutePartial { id, .. }
        | Request::ExecuteBatchPartial { id, .. }
        | Request::IngestEpoch { id, .. }
        | Request::Promote { id }
        | Request::Stats { id } => {
            if id == CONNECTION_LEVEL_ID {
                return reserved_id();
            }
            // The admission gate bounds engine concurrency across
            // connections; in event mode the worker-pool size plays this
            // role instead, so the gate lives here and not in
            // `ServeHandler::execute`.
            let _permit = shared.admission.acquire();
            Outcome::Reply(shared.handler.execute(user, request))
        }
        Request::ServeStats { id } => {
            if id == CONNECTION_LEVEL_ID {
                return reserved_id();
            }
            Outcome::Reply(Response::ServeStatsOk {
                id,
                stats: ServeStats {
                    mode: ServerMode::Threaded.name().to_string(),
                    connections: shared.active.load(Ordering::Acquire) as u64,
                    peak_connections: shared.peak.load(Ordering::Acquire) as u64,
                    connections_served: shared.connections_served.load(Ordering::Acquire),
                    in_flight: 0,
                    backlog: 0,
                    loop_iterations: 0,
                    requests_served: shared.requests_served.load(Ordering::Acquire),
                },
            })
        }
        Request::Shutdown { id } => {
            if id == CONNECTION_LEVEL_ID {
                return reserved_id();
            }
            shared.handler.on_wire_shutdown(user);
            shared.shutdown.store(true, Ordering::Release);
            // Close after acknowledging: the acceptor wakes the remaining
            // connections within its poll interval.
            Outcome::Close(Response::ShutdownOk { id })
        }
    }
}

/// Run one engine-bound request to completion and produce its reply.
/// Shared by both serving cores: the threaded core calls it on the
/// connection thread (under an admission permit), the event core on a
/// worker thread (the pool size is the concurrency bound). The caller
/// has already rejected reserved ids.
pub(crate) fn execute_engine_request(
    system: &ConcealerSystem,
    config: &ServerConfig,
    user: &UserHandle,
    request: Request,
) -> Response {
    match request {
        Request::Execute { id, query, options } => {
            let options = clamp_options(config, options);
            match system.session(user).execute_with(&query, options) {
                Ok(answer) => Response::Answer { id, answer },
                Err(e) => Response::Error {
                    id,
                    error: WireError::from(&e),
                },
            }
        }
        Request::ExecuteBatch {
            id,
            queries,
            options,
        } => {
            if queries.len() > config.max_batch {
                return error_reply(
                    id,
                    ErrorCode::BatchTooLarge,
                    format!(
                        "batch of {} queries exceeds the {}-query limit",
                        queries.len(),
                        config.max_batch
                    ),
                );
            }
            let options = clamp_options(config, options);
            let results: Vec<WireResult> = system
                .session(user)
                .with_options(options)
                .execute_batch(&queries)
                .into_iter()
                .map(WireResult::from)
                .collect();
            Response::BatchAnswer { id, results }
        }
        Request::ExecutePartial { id, query, options } => {
            let options = clamp_options(config, options);
            let result = system.session(user).execute_partials(&query, options);
            Response::PartialAnswer {
                id,
                result: WirePartialResult::from(result),
            }
        }
        Request::ExecuteBatchPartial {
            id,
            queries,
            options,
        } => {
            if queries.len() > config.max_batch {
                return error_reply(
                    id,
                    ErrorCode::BatchTooLarge,
                    format!(
                        "batch of {} queries exceeds the {}-query limit",
                        queries.len(),
                        config.max_batch
                    ),
                );
            }
            let options = clamp_options(config, options);
            let results: Vec<WirePartialResult> = system
                .session(user)
                .with_options(options)
                .execute_batch_partials(&queries)
                .into_iter()
                .map(WirePartialResult::from)
                .collect();
            Response::BatchPartialAnswer { id, results }
        }
        Request::IngestEpoch {
            id,
            epoch_start,
            records,
        } => {
            // The replica check comes first: "you are talking to the wrong
            // member" is more actionable than this server's ingest policy,
            // and it is what the router keys failover on.
            if system.store_read_only() {
                return error_reply(
                    id,
                    ErrorCode::NotWriter,
                    "this server is a read-only replica; ingest goes to the \
                     shard's writer (or promote this member first)",
                );
            }
            if !config.allow_ingest {
                return error_reply(
                    id,
                    ErrorCode::Unauthorized,
                    "this server does not accept wire ingest",
                );
            }
            // A sharded process only ingests the epochs its slice owns;
            // accepting a misrouted epoch would split ownership and break
            // the disjoint-union merge at the router.
            if let Some((index, total)) = config.shard {
                let owner = shard_of_epoch(epoch_start, total as usize);
                if owner != index as usize {
                    return error_reply(
                        id,
                        ErrorCode::InvalidConfig,
                        format!(
                            "shard {index}/{total} does not own epoch {epoch_start} \
                             (owner is shard {owner})"
                        ),
                    );
                }
            }
            // Deterministic per-epoch RNG (see `ServerConfig::ingest_seed`).
            let mut rng = StdRng::seed_from_u64(
                config.ingest_seed ^ epoch_start.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            match system.ingest_epoch(epoch_start, &records, &mut rng) {
                Ok(stats) => Response::IngestOk {
                    id,
                    epoch_id: epoch_start,
                    rows_stored: (stats.real_rows + stats.fake_rows) as u64,
                },
                Err(e) => Response::Error {
                    id,
                    error: WireError::from(&e),
                },
            }
        }
        Request::Stats { id } => Response::StatsOk {
            id,
            stats: system.answer_stats().into(),
        },
        Request::Promote { id } => match system.promote_to_writer() {
            Ok(registered) => Response::PromoteOk {
                id,
                epochs_registered: registered.len() as u64,
            },
            Err(e) => Response::Error {
                id,
                error: WireError::from(&e),
            },
        },
        Request::Hello { .. }
        | Request::Goodbye
        | Request::Shutdown { .. }
        | Request::ServeStats { .. }
        | Request::ShardInfo { .. }
        | Request::RouterStats { .. }
        | Request::Attest { .. } => {
            unreachable!("connection-level requests never reach the engine executor")
        }
    }
}

/// Describe this process's epoch slice for topology discovery. Shared by
/// both serving cores; an unsharded deployment reports itself as the
/// whole map (`0/1`).
pub(crate) fn shard_descriptor(system: &ConcealerSystem, config: &ServerConfig) -> ShardDescriptor {
    let (shard_index, shard_total) = config.shard.unwrap_or((0, 1));
    let role = if system.store_read_only() {
        crate::protocol::ShardRole::Replica
    } else {
        crate::protocol::ShardRole::Writer
    };
    ShardDescriptor {
        shard_index,
        shard_total,
        epoch_duration: system.engine().config().epoch_duration,
        epochs: system.engine().registered_epochs(),
        role,
        store_generation: system.store().store_generation(),
    }
}

/// The reply a shard server gives to `Request::RouterStats`: per-shard
/// load accounting only exists at a router, so asking a shard directly is
/// a protocol violation (the connection survives — the request was
/// well-formed, just aimed at the wrong tier).
pub(crate) fn router_stats_refusal(id: u64) -> Response {
    error_reply(
        id,
        ErrorCode::ProtocolViolation,
        "router_stats is a router endpoint; this is a shard server",
    )
}

fn reserved_id() -> Outcome {
    Outcome::Fatal(reserved_id_reply())
}

/// The error reply both cores answer (and then close) when a client uses
/// the reserved connection-level request id.
pub(crate) fn reserved_id_reply() -> Response {
    error_reply(
        CONNECTION_LEVEL_ID,
        ErrorCode::ProtocolViolation,
        "request id 0 is reserved for connection-level errors",
    )
}

/// Apply server policy to client-supplied options.
fn clamp_options(config: &ServerConfig, options: Option<ExecOptions>) -> ExecOptions {
    let mut options = options.unwrap_or_default();
    options.parallelism = options.parallelism.min(config.max_parallelism.max(1));
    options
}

pub(crate) fn error_reply(id: u64, code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        id,
        error: WireError::new(code, message),
    }
}

/// Write one reply frame, counting it.
fn send(
    shared: &ServeShared<'_>,
    stream: &mut TcpStream,
    reply: &Response,
) -> Result<(), FrameError> {
    shared.requests_served.fetch_add(1, Ordering::AcqRel);
    write_frame(stream, reply)
}
