//! Network serving layer for the Concealer reproduction.
//!
//! Turns an in-process [`ConcealerSystem`](concealer_core::ConcealerSystem)
//! into a multi-client TCP service speaking a length-prefixed
//! `serde::bin` frame protocol:
//!
//! * [`protocol`] — the versioned message set (hello/auth handshake,
//!   request-id'd execute/batch/ingest/stats/shutdown, structured error
//!   replies) and the frame limits;
//! * [`error`] — the wire-facing [`ErrorCode`] mapping of
//!   [`concealer_core::CoreError`];
//! * [`server`] — serving in one of two modes behind the same wire
//!   protocol ([`ServerConfig::mode`](server::ServerConfig)): the
//!   thread-per-connection core (connection cap, admission
//!   backpressure, graceful drain), or the readiness-driven `event`
//!   core (one poller loop + a worker pool; connections cost file
//!   descriptors, not threads — see `ARCHITECTURE.md` § "Event-driven
//!   serving").
//!
//! The blocking client side lives in the sibling `concealer-client`
//! crate; `concealer-load` drives many clients for the CI soak job;
//! `concealer-router` fronts epoch-sharded deployments with the same
//! protocol. The canonical field-by-field wire specification is
//! `PROTOCOL.md` at the repository root; see `ARCHITECTURE.md`
//! § "Serving layer" for the trust-boundary argument (the wire is part
//! of the untrusted zone).
//!
//! ```no_run
//! use std::sync::Arc;
//! use concealer_examples::demo_system;
//! use concealer_server::{Server, ServerConfig};
//!
//! let (system, _user, _records) = demo_system(2, 42);
//! let handle = Server::new(Arc::new(system), ServerConfig::default())
//!     .spawn()
//!     .expect("bind loopback");
//! println!("serving on {}", handle.local_addr());
//! # handle.shutdown_and_join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
#[cfg(unix)]
mod event;
pub mod protocol;
pub mod server;

pub use error::{ErrorCode, WireError};
pub use protocol::{
    Request, Response, ServeStats, ServerInfo, WireResult, WireStats, CONNECTION_LEVEL_ID,
    DEFAULT_MAX_BATCH, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{
    EngineHandler, ServeHandler, ServeReport, Server, ServerConfig, ServerHandle, ServerMode,
};
