//! The `concealer-server` binary: build the deterministic demo deployment
//! and serve it over TCP until a graceful shutdown.
//!
//! ```text
//! concealer-server [--mode threaded|event] [--port N] [--hours H] [--seed S]
//!                  [--max-connections N] [--max-in-flight N] [--no-ingest]
//!                  [--shard INDEX/TOTAL] [--store PATH [--replica] [--refresh-ms N]]
//! ```
//!
//! The deployment is `concealer_examples::demo_system(hours, seed)` —
//! fully determined by `(hours, seed)`, including the master key, so a
//! load generator given the same pair derives the same user credential
//! and the same oracle answers. The storage backend honors the
//! `CONCEALER_TEST_BACKEND` harness hook (`memory` default, `disk` for
//! the durable store), which is how the CI soak matrix runs both.
//!
//! `--store PATH` places the sealed epochs in a durable store rooted at
//! `PATH` instead; with `--replica` the process joins `PATH`'s replica set
//! read-only, absorbing the writer's committed epochs every `--refresh-ms`
//! (default 200) until promoted over the wire.
//!
//! Prints exactly one `READY addr=… backend=… protocol=… mode=…` line on
//! stdout once the listener is bound (what `ci/server-soak.sh` waits
//! for), and a `SHUTDOWN graceful …` line when a wire shutdown drained
//! cleanly.
//!
//! `--mode` selects the serving core: `threaded` (the default;
//! thread-per-connection) or `event` (one readiness loop plus a worker
//! pool — use it with `--max-connections` in the thousands).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use concealer_server::{Server, ServerConfig, ServerMode, PROTOCOL_VERSION};

struct Args {
    mode: ServerMode,
    port: u16,
    hours: u64,
    seed: u64,
    max_connections: usize,
    max_in_flight: usize,
    allow_ingest: bool,
    shard: Option<(u32, u32)>,
    store: Option<std::path::PathBuf>,
    replica: bool,
    refresh_ms: u64,
}

/// Parse `--shard i/t` (e.g. `1/4`): this process owns epoch-hash slice
/// `i` of `t`.
fn parse_shard(s: &str) -> Result<(u32, u32), String> {
    let (index, total) = s
        .split_once('/')
        .ok_or_else(|| format!("invalid shard spec {s:?} (expected INDEX/TOTAL, e.g. 0/2)"))?;
    let index: u32 = parse(index)?;
    let total: u32 = parse(total)?;
    if total == 0 || index >= total {
        return Err(format!(
            "shard index {index} out of range for total {total}"
        ));
    }
    Ok((index, total))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: ServerMode::Threaded,
        port: 0,
        hours: 2,
        seed: 42,
        max_connections: 16,
        max_in_flight: 8,
        allow_ingest: true,
        shard: None,
        store: None,
        replica: false,
        refresh_ms: 200,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--mode" => args.mode = ServerMode::parse(&value("--mode")?)?,
            "--port" => args.port = parse(&value("--port")?)?,
            "--hours" => args.hours = parse(&value("--hours")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--max-connections" => args.max_connections = parse(&value("--max-connections")?)?,
            "--max-in-flight" => args.max_in_flight = parse(&value("--max-in-flight")?)?,
            "--no-ingest" => args.allow_ingest = false,
            "--shard" => args.shard = Some(parse_shard(&value("--shard")?)?),
            "--store" => args.store = Some(std::path::PathBuf::from(value("--store")?)),
            "--replica" => args.replica = true,
            "--refresh-ms" => args.refresh_ms = parse(&value("--refresh-ms")?)?,
            "--help" | "-h" => {
                return Err(
                    "usage: concealer-server [--mode threaded|event] [--port N] [--hours H] \
                     [--seed S] [--max-connections N] [--max-in-flight N] [--no-ingest] \
                     [--shard INDEX/TOTAL] [--store PATH [--replica] [--refresh-ms N]]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if args.hours == 0 {
        return Err("--hours must be at least 1".to_string());
    }
    if args.replica && args.store.is_none() {
        return Err("--replica requires --store PATH (the writer's store root)".to_string());
    }
    if args.refresh_ms == 0 {
        return Err("--refresh-ms must be at least 1".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("invalid numeric value {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "concealer-server: building demo deployment (hours={}, seed={})",
        args.hours, args.seed
    );
    let (system, user, records) = match (&args.store, args.shard) {
        (Some(root), shard) => concealer_examples::demo_system_replica(
            args.hours,
            args.seed,
            shard,
            root,
            !args.replica,
        ),
        (None, Some((index, total))) => {
            concealer_examples::demo_system_sharded(args.hours, args.seed, index, total)
        }
        (None, None) => concealer_examples::demo_system(args.hours, args.seed),
    };
    let backend = system.store().backend_kind();
    eprintln!(
        "concealer-server: {} rows ingested, backend={backend}, serving user {}",
        records.len(),
        user.user_id.0
    );

    let config = ServerConfig {
        bind: SocketAddr::from(([127, 0, 0, 1], args.port)),
        mode: args.mode,
        max_connections: args.max_connections,
        max_in_flight: args.max_in_flight,
        allow_ingest: args.allow_ingest,
        shard: args.shard,
        ..ServerConfig::default()
    };
    let system = Arc::new(system);
    let handle = match Server::new(Arc::clone(&system), config).spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("concealer-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // A replica's refresh loop: absorb the writer's newly committed epochs
    // every tick. Runs until shutdown; after a wire promotion each tick is
    // a cheap no-op (the store is no longer read-only).
    let refresh_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let refresh_thread = args.replica.then(|| {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&refresh_stop);
        let tick = std::time::Duration::from_millis(args.refresh_ms);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                match system.refresh_epochs() {
                    Ok(new_epochs) if !new_epochs.is_empty() => {
                        eprintln!("concealer-server: replica absorbed epochs {new_epochs:?}");
                    }
                    Ok(_) => {}
                    Err(e) => eprintln!("concealer-server: replica refresh failed: {e}"),
                }
                std::thread::sleep(tick);
            }
        })
    });

    // The READY line is the machine-readable contract with ci/server-soak.sh
    // and any other launcher: one line, stdout, flushed before serving.
    let shard_suffix = args
        .shard
        .map(|(i, t)| format!(" shard={i}/{t}"))
        .unwrap_or_default();
    let role_suffix = match (&args.store, args.replica) {
        (None, _) => String::new(),
        (Some(_), false) => " role=writer".to_string(),
        (Some(_), true) => " role=replica".to_string(),
    };
    println!(
        "READY addr={} backend={backend} protocol={PROTOCOL_VERSION} mode={}{shard_suffix}{role_suffix}",
        handle.local_addr(),
        args.mode.name()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let report = handle.join();
    refresh_stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(thread) = refresh_thread {
        let _ = thread.join();
    }
    if report.graceful {
        println!(
            "SHUTDOWN graceful connections={} requests={} busy_rejected={}",
            report.connections_served, report.requests_served, report.rejected_busy
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("concealer-server: listener failed; exiting non-gracefully");
        ExitCode::FAILURE
    }
}
