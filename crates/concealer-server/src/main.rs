//! The `concealer-server` binary: build the deterministic demo deployment
//! and serve it over TCP until a graceful shutdown.
//!
//! ```text
//! concealer-server [--mode threaded|event] [--port N] [--hours H] [--seed S]
//!                  [--max-connections N] [--max-in-flight N] [--no-ingest]
//!                  [--shard INDEX/TOTAL] [--store PATH [--replica] [--refresh-ms N]]
//!                  [--rotate-after-ms N]
//! ```
//!
//! Flags accept both `--flag value` and `--flag=value` (parsing shared
//! with the other binaries via `concealer-cli`).
//!
//! The deployment is `concealer_examples::demo_system(hours, seed)` —
//! fully determined by `(hours, seed)`, including the master key, so a
//! load generator given the same pair derives the same user credential
//! and the same oracle answers. The storage backend honors the
//! `CONCEALER_TEST_BACKEND` harness hook (`memory` default, `disk` for
//! the durable store), which is how the CI soak matrix runs both.
//!
//! `--store PATH` places the sealed epochs in a durable store rooted at
//! `PATH` instead; with `--replica` the process joins `PATH`'s replica set
//! read-only, absorbing the writer's committed epochs every `--refresh-ms`
//! (default 200) until promoted over the wire.
//!
//! `--rotate-after-ms N` rotates the master-key generation online N
//! milliseconds after the listener binds, printing one
//! `ROTATION generation=… epochs=…` line on stdout when the re-wrap
//! completes — the hook `ci/server-soak.sh` uses to drive a rotation
//! under live query load (see `OPERATIONS.md` § "Master-key rotation").
//!
//! Prints exactly one `READY addr=… backend=… protocol=… mode=…` line on
//! stdout once the listener is bound (what `ci/server-soak.sh` waits
//! for), and a `SHUTDOWN graceful …` line when a wire shutdown drained
//! cleanly.
//!
//! `--mode` selects the serving core: `threaded` (the default;
//! thread-per-connection) or `event` (one readiness loop plus a worker
//! pool — use it with `--max-connections` in the thousands).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use concealer_server::{Server, ServerConfig, ServerMode, PROTOCOL_VERSION};

const USAGE: &str = "concealer-server [--mode threaded|event] [--port N] [--hours H] \
                     [--seed S] [--max-connections N] [--max-in-flight N] [--no-ingest] \
                     [--shard INDEX/TOTAL] [--store PATH [--replica] [--refresh-ms N]] \
                     [--rotate-after-ms N]";

struct Args {
    mode: ServerMode,
    port: u16,
    hours: u64,
    seed: u64,
    max_connections: usize,
    max_in_flight: usize,
    allow_ingest: bool,
    shard: Option<(u32, u32)>,
    store: Option<std::path::PathBuf>,
    replica: bool,
    refresh_ms: u64,
    rotate_after_ms: Option<u64>,
}

/// Parse `--shard i/t` (e.g. `1/4`): this process owns epoch-hash slice
/// `i` of `t`.
fn parse_shard(s: &str) -> Result<(u32, u32), String> {
    let (index, total) = s
        .split_once('/')
        .ok_or_else(|| format!("invalid shard spec {s:?} (expected INDEX/TOTAL, e.g. 0/2)"))?;
    let index: u32 = index
        .parse()
        .map_err(|_| format!("invalid shard index {index:?}"))?;
    let total: u32 = total
        .parse()
        .map_err(|_| format!("invalid shard total {total:?}"))?;
    if total == 0 || index >= total {
        return Err(format!(
            "shard index {index} out of range for total {total}"
        ));
    }
    Ok((index, total))
}

fn parse_args() -> Args {
    let mut cli = concealer_cli::Args::new("concealer-server", USAGE);
    let mut args = Args {
        mode: ServerMode::Threaded,
        port: 0,
        hours: 2,
        seed: 42,
        max_connections: 16,
        max_in_flight: 8,
        allow_ingest: true,
        shard: None,
        store: None,
        replica: false,
        refresh_ms: 200,
        rotate_after_ms: None,
    };
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--mode" => args.mode = cli.parse_with("--mode", ServerMode::parse),
            "--port" => args.port = cli.parse("--port"),
            "--hours" => args.hours = cli.parse("--hours"),
            "--seed" => args.seed = cli.parse("--seed"),
            "--max-connections" => args.max_connections = cli.parse("--max-connections"),
            "--max-in-flight" => args.max_in_flight = cli.parse("--max-in-flight"),
            "--no-ingest" => args.allow_ingest = false,
            "--shard" => args.shard = Some(cli.parse_with("--shard", parse_shard)),
            "--store" => args.store = Some(std::path::PathBuf::from(cli.value("--store"))),
            "--replica" => args.replica = true,
            "--refresh-ms" => args.refresh_ms = cli.parse("--refresh-ms"),
            "--rotate-after-ms" => args.rotate_after_ms = Some(cli.parse("--rotate-after-ms")),
            "--help" | "-h" => cli.help(),
            other => cli.unknown(other),
        }
    }
    if args.hours == 0 {
        cli.fail("--hours must be at least 1");
    }
    if args.replica && args.store.is_none() {
        cli.fail("--replica requires --store PATH (the writer's store root)");
    }
    if args.refresh_ms == 0 {
        cli.fail("--refresh-ms must be at least 1");
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    eprintln!(
        "concealer-server: building demo deployment (hours={}, seed={})",
        args.hours, args.seed
    );
    let (system, user, records) = match (&args.store, args.shard) {
        (Some(root), shard) => concealer_examples::demo_system_replica(
            args.hours,
            args.seed,
            shard,
            root,
            !args.replica,
        ),
        (None, Some((index, total))) => {
            concealer_examples::demo_system_sharded(args.hours, args.seed, index, total)
        }
        (None, None) => concealer_examples::demo_system(args.hours, args.seed),
    };
    let backend = system.store().backend_kind();
    eprintln!(
        "concealer-server: {} rows ingested, backend={backend}, serving user {}",
        records.len(),
        user.user_id.0
    );

    let config = ServerConfig {
        bind: SocketAddr::from(([127, 0, 0, 1], args.port)),
        mode: args.mode,
        max_connections: args.max_connections,
        max_in_flight: args.max_in_flight,
        allow_ingest: args.allow_ingest,
        shard: args.shard,
        ..ServerConfig::default()
    };
    let system = Arc::new(system);
    let handle = match Server::new(Arc::clone(&system), config).spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("concealer-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // A replica's refresh loop: absorb the writer's newly committed epochs
    // every tick. Runs until shutdown; after a wire promotion each tick is
    // a cheap no-op (the store is no longer read-only).
    let refresh_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let refresh_thread = args.replica.then(|| {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&refresh_stop);
        let tick = std::time::Duration::from_millis(args.refresh_ms);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                match system.refresh_epochs() {
                    Ok(new_epochs) if !new_epochs.is_empty() => {
                        eprintln!("concealer-server: replica absorbed epochs {new_epochs:?}");
                    }
                    Ok(_) => {}
                    Err(e) => eprintln!("concealer-server: replica refresh failed: {e}"),
                }
                std::thread::sleep(tick);
            }
        })
    });

    // The online-rotation hook: bump the master-key generation mid-serve,
    // while queries keep flowing. The ROTATION line is the machine-readable
    // signal ci/server-soak.sh greps for.
    let rotate_thread = args.rotate_after_ms.map(|ms| {
        let system = Arc::clone(&system);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            match system.rotate_master_generation() {
                Ok((generation, epochs)) => {
                    println!("ROTATION generation={generation} epochs={epochs}");
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
                Err(e) => eprintln!("concealer-server: online key rotation failed: {e}"),
            }
        })
    });

    // The READY line is the machine-readable contract with ci/server-soak.sh
    // and any other launcher: one line, stdout, flushed before serving.
    let shard_suffix = args
        .shard
        .map(|(i, t)| format!(" shard={i}/{t}"))
        .unwrap_or_default();
    let role_suffix = match (&args.store, args.replica) {
        (None, _) => String::new(),
        (Some(_), false) => " role=writer".to_string(),
        (Some(_), true) => " role=replica".to_string(),
    };
    println!(
        "READY addr={} backend={backend} protocol={PROTOCOL_VERSION} mode={}{shard_suffix}{role_suffix}",
        handle.local_addr(),
        args.mode.name()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let report = handle.join();
    refresh_stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(thread) = refresh_thread {
        let _ = thread.join();
    }
    if let Some(thread) = rotate_thread {
        let _ = thread.join();
    }
    if report.graceful {
        println!(
            "SHUTDOWN graceful connections={} requests={} busy_rejected={}",
            report.connections_served, report.requests_served, report.rejected_busy
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("concealer-server: listener failed; exiting non-gracefully");
        ExitCode::FAILURE
    }
}
