//! `concealer-load`: drive a running Concealer server with N concurrent
//! clients of mixed point/range/batch workloads, check every answer
//! bit-for-bit against a local oracle, and emit a `BENCH_server.json`
//! summary (schema `concealer-server-load/v2`: serving mode, connection
//! counts, qps, p50/p95/p99 latency).
//!
//! ```text
//! concealer-load --addr HOST:PORT [--clients N] [--requests N]
//!                [--batch-len N] [--hours H] [--seed S]
//!                [--idle-connections N] [--ingest-epochs N]
//!                [--router] [--no-check] [--shutdown]
//!                [--out BENCH_server.json]
//! ```
//!
//! Flags accept both `--flag value` and `--flag=value` (parsing shared
//! with the other binaries via `concealer-cli`).
//!
//! `--router` points `--addr` at a `concealer-router` instead of a single
//! server; the scenario runs **unchanged** (the routed deployment is
//! supposed to be indistinguishable). Two differences in accounting:
//! structured `shard_unavailable` replies are tolerated — counted
//! (`shard_unavailable` in the summary), never compared against the
//! oracle, and not run-fatal, because the routed soak kills a shard
//! mid-load on purpose — and the summary gains a `router_shards` array
//! with each upstream **member**'s forwarded/error/reconnect counters
//! (plus its replica-set position and writer flag) from the router's
//! `RouterStats` endpoint. Divergences and unstructured
//! (transport-level) errors still fail the run: a dying shard must never
//! tear the client-facing connection or shrink an answer.
//!
//! `--idle-connections N` targets the event server: open N authenticated
//! connections and *hold* them for the run while the regular clients
//! supply query traffic, plus a trickle of oracle-checked queries through
//! every [`IDLE_TRICKLE_STRIDE`]th held connection — mostly-idle sockets
//! must still answer correctly mid-run. The summary records how many were
//! achieved (`connections`) and the server's own high-water mark
//! (`max_concurrent_connections`, from the `ServeStats` endpoint), so a
//! CI gate can assert a concurrency floor.
//!
//! `(hours, seed)` must match the server's: the oracle rebuilds the same
//! deterministic demo deployment in-process (same master key, data, and
//! credential — the harness stand-in for the data provider distributing
//! credentials out of band), regenerates each client's request stream
//! from its seed, and compares the `serde::bin` encoding of every wire
//! answer against local execution. Any mismatch is a divergence and fails
//! the run — this is what the CI `server-soak` job gates on.
//!
//! With `--ingest-epochs N`, one extra connection ingests follow-up
//! epochs *while query traffic is live*; checked queries all lie in the
//! first epoch's window, whose answers ingest must not disturb.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use concealer_bench::{server_request_mix, ServerRequest};
use concealer_client::{ClientBuilder, ClientError, Session};
use concealer_examples::{demo_epoch_records, demo_system, demo_workload};

const USAGE: &str = "concealer-load --addr HOST:PORT [--clients N] [--requests N] \
                     [--batch-len N] [--hours H] [--seed S] [--idle-connections N] \
                     [--ingest-epochs N] [--router] [--no-check] [--shutdown] \
                     [--out BENCH_server.json]";

/// One authenticated session to the target deployment. The load
/// generator trusts the demo enclave by default (the default
/// [`concealer_client::TrustPolicy`] verifies signatures and freshness);
/// what it *checks* is the answers, bit-for-bit against the oracle.
fn connect(
    args: &Args,
    user: &concealer_core::UserHandle,
    name: &str,
) -> Result<Session, ClientError> {
    ClientBuilder::new(args.addr.as_str())
        .user(user)
        .client_name(name)
        .connect()
}

/// Every stride-th held idle connection carries one checked query.
const IDLE_TRICKLE_STRIDE: usize = 97;

struct Args {
    addr: String,
    clients: usize,
    requests: usize,
    batch_len: usize,
    hours: u64,
    seed: u64,
    idle_connections: usize,
    ingest_epochs: u64,
    router: bool,
    check: bool,
    shutdown: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut cli = concealer_cli::Args::new("concealer-load", USAGE);
    let mut args = Args {
        addr: String::new(),
        clients: 8,
        requests: 36,
        batch_len: 8,
        hours: 2,
        seed: 42,
        idle_connections: 0,
        ingest_epochs: 0,
        router: false,
        check: true,
        shutdown: false,
        out: "BENCH_server.json".to_string(),
    };
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--addr" => args.addr = cli.value("--addr"),
            "--clients" => args.clients = cli.parse("--clients"),
            "--requests" => args.requests = cli.parse("--requests"),
            "--batch-len" => args.batch_len = cli.parse("--batch-len"),
            "--hours" => args.hours = cli.parse("--hours"),
            "--seed" => args.seed = cli.parse("--seed"),
            "--idle-connections" => args.idle_connections = cli.parse("--idle-connections"),
            "--ingest-epochs" => args.ingest_epochs = cli.parse("--ingest-epochs"),
            "--router" => args.router = true,
            "--no-check" => args.check = false,
            "--shutdown" => args.shutdown = true,
            "--out" => args.out = cli.value("--out"),
            "--help" | "-h" => cli.help(),
            other => cli.unknown(other),
        }
    }
    if args.addr.is_empty() {
        cli.fail("--addr HOST:PORT is required");
    }
    if args.clients == 0 || args.requests == 0 {
        cli.fail("--clients and --requests must be at least 1");
    }
    args
}

/// Per-client outcome.
#[derive(Debug, Default)]
struct ClientReport {
    latencies: Vec<Duration>,
    queries: u64,
    divergences: u64,
    /// Structured `shard_unavailable` replies tolerated in `--router`
    /// mode (a shard was killed mid-load; the answer was refused, not
    /// shrunk). Never counted as divergences or run-fatal errors.
    shard_unavailable: u64,
    errors: Vec<String>,
}

/// In `--router` mode, a structured `shard_unavailable` reply is an
/// expected mid-failover outcome: count it, skip the oracle compare for
/// that request, keep the connection (the reply was frame-aligned).
fn tolerated_by_router(args: &Args, err: &concealer_client::ClientError) -> bool {
    args.router
        && matches!(
            err,
            concealer_client::ClientError::Server(ref e)
                if e.code == concealer_server::ErrorCode::ShardUnavailable
        )
}

/// Run one client's deterministic request stream, checking wire answers
/// against the oracle system in-process.
fn run_client(
    args: &Args,
    client_idx: usize,
    oracle: Option<&concealer_core::ConcealerSystem>,
    user: &concealer_core::UserHandle,
) -> ClientReport {
    let mut report = ClientReport::default();
    let workload = demo_workload(args.hours);
    let mix = server_request_mix(
        &workload,
        args.seed.wrapping_add(1_000 + client_idx as u64),
        args.requests,
        args.batch_len,
    );
    let mut conn = match connect(args, user, &format!("load-client-{client_idx}")) {
        Ok(conn) => conn,
        Err(e) => {
            report.errors.push(format!("connect: {e}"));
            return report;
        }
    };
    let oracle_session = oracle.map(|system| system.session(user));

    for (request_idx, request) in mix.iter().enumerate() {
        let label = format!("client {client_idx} request {request_idx}");
        if !run_request(
            args,
            &mut conn,
            request,
            oracle_session.as_ref(),
            &mut report,
            &label,
        ) {
            return report;
        }
    }
    if let Err(e) = conn.close() {
        report
            .errors
            .push(format!("client {client_idx} close: {e}"));
    }
    report
}

/// Send one request, time it, and (when checking) compare every answer's
/// wire encoding against local oracle execution. Returns `false` when the
/// connection died and the caller should stop using it.
fn run_request(
    args: &Args,
    conn: &mut Session,
    request: &ServerRequest,
    oracle_session: Option<&concealer_core::Session<'_>>,
    report: &mut ClientReport,
    label: &str,
) -> bool {
    let started = Instant::now();
    let outcome = match request {
        ServerRequest::Query(query, options) => conn
            .execute_with(query, *options)
            .map(|answer| vec![answer]),
        ServerRequest::Batch(queries, options) => conn
            .execute_batch_with(queries, *options)
            .and_then(|results| {
                results
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(concealer_client::ClientError::Server)
            }),
    };
    let elapsed = started.elapsed();
    let answers = match outcome {
        Ok(answers) => answers,
        Err(e) if tolerated_by_router(args, &e) => {
            report.shard_unavailable += 1;
            return true;
        }
        Err(e) => {
            report.errors.push(format!("{label}: {e}"));
            return false;
        }
    };
    report.latencies.push(elapsed);
    report.queries += answers.len() as u64;

    if let Some(session) = oracle_session {
        let expected: Vec<_> = match request {
            ServerRequest::Query(query, options) => {
                vec![session.execute_with(query, *options).expect("oracle query")]
            }
            ServerRequest::Batch(queries, options) => session
                .clone()
                .with_options(*options)
                .execute_batch(queries)
                .into_iter()
                .map(|r| r.expect("oracle batch query"))
                .collect(),
        };
        // A short (or long) reply is itself a divergence — zip below
        // would silently compare only the common prefix.
        if answers.len() != expected.len() {
            report.divergences += 1;
            report.errors.push(format!(
                "{label}: wire returned {} answer(s), oracle expected {}",
                answers.len(),
                expected.len()
            ));
            return true;
        }
        // Bit-identical: compare the wire encodings, not just equality.
        for (got, want) in answers.iter().zip(&expected) {
            if serde::bin::to_bytes(got) != serde::bin::to_bytes(want) {
                report.divergences += 1;
                report.errors.push(format!(
                    "{label}: wire answer {got:?} diverges from oracle {want:?}"
                ));
            }
        }
    }
    true
}

/// Open `target` authenticated connections and hold them. Stops early
/// (with a note) on the first failure — typically the process's fd limit
/// or the server's connection cap — so the caller reports what was
/// actually achieved rather than dying.
fn open_idle_pool(
    args: &Args,
    user: &concealer_core::UserHandle,
    errors: &mut Vec<String>,
) -> Vec<Session> {
    let target = args.idle_connections;
    let mut pool = Vec::with_capacity(target);
    for k in 0..target {
        match connect(args, user, &format!("load-idle-{k}")) {
            Ok(conn) => pool.push(conn),
            Err(e) => {
                errors.push(format!(
                    "idle connection {k}/{target} failed ({e}); holding {} — raise the fd \
                     limit (ulimit -n) and the server's --max-connections to go higher",
                    pool.len()
                ));
                break;
            }
        }
        if (k + 1) % 2000 == 0 {
            eprintln!("concealer-load: {} idle connections open", k + 1);
        }
    }
    pool
}

/// The idle pool's trickle: one checked query through every
/// [`IDLE_TRICKLE_STRIDE`]th held connection while the main clients load
/// the server. Takes ownership of the trickle connections and returns
/// them so they stay open until the pool is torn down.
fn run_trickle(
    args: &Args,
    mut conns: Vec<Session>,
    oracle: Option<&concealer_core::ConcealerSystem>,
    user: &concealer_core::UserHandle,
) -> (ClientReport, Vec<Session>) {
    let mut report = ClientReport::default();
    if conns.is_empty() {
        return (report, conns);
    }
    let workload = demo_workload(args.hours);
    let mix = server_request_mix(
        &workload,
        args.seed.wrapping_add(500_000),
        conns.len(),
        args.batch_len.max(1),
    );
    let oracle_session = oracle.map(|system| system.session(user));
    for (idx, (conn, request)) in conns.iter_mut().zip(mix.iter()).enumerate() {
        let label = format!("idle trickle {idx}");
        run_request(
            args,
            conn,
            request,
            oracle_session.as_ref(),
            &mut report,
            &label,
        );
        // Space the trickle out so the pool stays mostly idle.
        std::thread::sleep(Duration::from_millis(5));
    }
    (report, conns)
}

/// Latency percentile in milliseconds over sorted samples.
fn percentile_ms(sorted: &[Duration], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1].as_secs_f64() * 1e3
}

fn main() -> ExitCode {
    let args = parse_args();

    eprintln!(
        "concealer-load: building oracle deployment (hours={}, seed={})",
        args.hours, args.seed
    );
    // The oracle is always built (it owns the credential); --no-check only
    // skips the per-answer comparison.
    let (oracle_system, user, _records) = demo_system(args.hours, args.seed);
    let oracle = args.check.then_some(&oracle_system);

    // The idle pool opens before the query phase so its connections are
    // concurrent with the workload; every stride-th one is pulled aside
    // to carry the trickle.
    let mut pool_errors: Vec<String> = Vec::new();
    let mut idle_pool: Vec<Session> = Vec::new();
    let mut trickle_conns: Vec<Session> = Vec::new();
    if args.idle_connections > 0 {
        eprintln!(
            "concealer-load: opening {} idle connections",
            args.idle_connections
        );
        let mut opened = open_idle_pool(&args, &user, &mut pool_errors);
        for (k, conn) in opened.drain(..).enumerate() {
            if k % IDLE_TRICKLE_STRIDE == 0 {
                trickle_conns.push(conn);
            } else {
                idle_pool.push(conn);
            }
        }
        eprintln!(
            "concealer-load: holding {} idle + {} trickle connections",
            idle_pool.len(),
            trickle_conns.len()
        );
    }
    let idle_achieved = idle_pool.len() + trickle_conns.len();

    eprintln!(
        "concealer-load: {} client(s) x {} request(s) (batch-len {}) against {}",
        args.clients, args.requests, args.batch_len, args.addr
    );
    let ingested = AtomicU64::new(0);
    let unavailable_ingests = AtomicU64::new(0);
    let started = Instant::now();
    let (reports, trickle_conns): (Vec<ClientReport>, Vec<Session>) = std::thread::scope(|scope| {
        let trickle_handle = (!trickle_conns.is_empty()).then(|| {
            let args = &args;
            let user = &user;
            let conns = std::mem::take(&mut trickle_conns);
            scope.spawn(move || run_trickle(args, conns, oracle, user))
        });
        let ingest_handle = (args.ingest_epochs > 0).then(|| {
            let args = &args;
            let user = &user;
            let ingested = &ingested;
            let unavailable_ingests = &unavailable_ingests;
            scope.spawn(move || -> Result<(), String> {
                let mut conn = connect(args, user, "load-ingest")
                    .map_err(|e| format!("ingest connect: {e}"))?;
                for k in 1..=args.ingest_epochs {
                    let epoch_start = k * args.hours * 3600;
                    let records = demo_epoch_records(args.hours, args.seed, epoch_start);
                    match conn.ingest_epoch(epoch_start, &records) {
                        Ok(_) => {
                            ingested.fetch_add(1, Ordering::Relaxed);
                        }
                        // An epoch whose owning shard is down is
                        // refused structurally; the next epoch may
                        // hash to a live shard, so keep going.
                        Err(e) if tolerated_by_router(args, &e) => {
                            unavailable_ingests.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(format!("ingest epoch {epoch_start}: {e}")),
                    }
                    // Spread the ingests across the query phase.
                    std::thread::sleep(Duration::from_millis(20));
                }
                conn.close().map_err(|e| format!("ingest close: {e}"))
            })
        });
        let handles: Vec<_> = (0..args.clients)
            .map(|client_idx| {
                let args = &args;
                let user = &user;
                scope.spawn(move || run_client(args, client_idx, oracle, user))
            })
            .collect();
        let mut reports: Vec<ClientReport> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        if let Some(handle) = ingest_handle {
            if let Err(e) = handle.join().expect("ingest thread panicked") {
                reports.push(ClientReport {
                    errors: vec![e],
                    ..ClientReport::default()
                });
            }
        }
        let mut returned = Vec::new();
        if let Some(handle) = trickle_handle {
            let (report, conns) = handle.join().expect("trickle thread panicked");
            reports.push(report);
            returned = conns;
        }
        (reports, returned)
    });
    let elapsed = started.elapsed();

    // Ask the server for its own view — serving mode and the concurrent
    // connection high-water mark — while the idle pool is still open.
    // Probe over a held connection when there is one: a fresh connect
    // could be refused if the pool sits at the server's connection cap.
    let mut trickle_conns = trickle_conns;
    let probe_result = match trickle_conns.last_mut() {
        Some(conn) => conn.serve_stats(),
        None => connect(&args, &user, "load-stats").and_then(|mut conn| {
            let stats = conn.serve_stats()?;
            conn.close()?;
            Ok(stats)
        }),
    };
    let (server_mode, max_concurrent) = match probe_result {
        Ok(stats) => (stats.mode, stats.peak_connections),
        Err(e) => {
            eprintln!("concealer-load: serve-stats probe failed: {e}");
            ("unknown".to_string(), 0)
        }
    };
    // FIN-close the pool (no Goodbye round-trips — 10k of them would
    // serialize); the server treats EOF on an idle connection as a clean
    // close either way.
    drop(trickle_conns);
    drop(idle_pool);

    // In router mode, pull the per-shard forwarding counters for the
    // summary — the routed soak gates on the deployment having actually
    // fanned out (and, after a kill, reconnected).
    let router_shards = if args.router {
        match connect(&args, &user, "load-router-stats").and_then(|mut conn| {
            let stats = conn.router_stats()?;
            conn.close()?;
            Ok(stats)
        }) {
            Ok(stats) => stats.shards,
            Err(e) => {
                eprintln!("concealer-load: router-stats probe failed: {e}");
                Vec::new()
            }
        }
    } else {
        Vec::new()
    };

    let mut latencies: Vec<Duration> = reports.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort_unstable();
    let queries: u64 = reports.iter().map(|r| r.queries).sum();
    let requests: usize = reports.iter().map(|r| r.latencies.len()).sum();
    let divergences: u64 = reports.iter().map(|r| r.divergences).sum();
    let shard_unavailable: u64 = reports.iter().map(|r| r.shard_unavailable).sum::<u64>()
        + unavailable_ingests.load(Ordering::Relaxed);
    let errors: Vec<&String> = reports.iter().flat_map(|r| r.errors.iter()).collect();
    let qps = queries as f64 / elapsed.as_secs_f64().max(1e-9);
    let backend = oracle_system.store().backend_kind();

    for warning in &pool_errors {
        eprintln!("concealer-load: idle pool: {warning}");
    }

    let router_shards_json = router_shards
        .iter()
        .map(|s| {
            format!(
                "{{\"shard_index\": {}, \"member\": {}, \"writer\": {}, \"addr\": \"{}\", \
                 \"requests_forwarded\": {}, \"errors\": {}, \"reconnects\": {}, \
                 \"available\": {}}}",
                s.shard_index,
                s.member,
                s.writer,
                s.addr,
                s.requests_forwarded,
                s.errors,
                s.reconnects,
                s.available
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"schema\": \"concealer-server-load/v2\",\n  \"addr\": \"{}\",\n  \"backend\": \"{backend}\",\n  \"mode\": \"{server_mode}\",\n  \"router\": {},\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \"batch_len\": {},\n  \"idle_connections_target\": {},\n  \"connections\": {idle_achieved},\n  \"max_concurrent_connections\": {max_concurrent},\n  \"requests\": {requests},\n  \"queries\": {queries},\n  \"ingest_epochs\": {},\n  \"elapsed_s\": {:.3},\n  \"qps\": {qps:.2},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},\n  \"checked\": {},\n  \"divergences\": {divergences},\n  \"shard_unavailable\": {shard_unavailable},\n  \"router_shards\": [{router_shards_json}],\n  \"client_errors\": {}\n}}\n",
        args.addr,
        args.router,
        args.clients,
        args.requests,
        args.batch_len,
        args.idle_connections,
        ingested.load(Ordering::Relaxed),
        elapsed.as_secs_f64(),
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 95.0),
        percentile_ms(&latencies, 99.0),
        latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
        args.check,
        errors.len(),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("concealer-load: writing {} failed: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "concealer-load: [{server_mode}] {queries} queries in {:.2}s ({qps:.0} q/s), \
         p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms; {idle_achieved} held connection(s), \
         server peak {max_concurrent}; {divergences} divergence(s), {} client error(s), \
         {shard_unavailable} shard-unavailable (tolerated); wrote {}",
        elapsed.as_secs_f64(),
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 95.0),
        percentile_ms(&latencies, 99.0),
        errors.len(),
        args.out
    );
    for shard in &router_shards {
        eprintln!(
            "concealer-load: shard {} member {} [{}] ({}): {} forwarded, {} error(s), \
             {} reconnect(s), available={}",
            shard.shard_index,
            shard.member,
            if shard.writer { "writer" } else { "replica" },
            shard.addr,
            shard.requests_forwarded,
            shard.errors,
            shard.reconnects,
            shard.available
        );
    }
    for error in &errors {
        eprintln!("concealer-load: error: {error}");
    }

    if args.shutdown {
        eprintln!("concealer-load: requesting graceful server shutdown");
        match connect(&args, &user, "load-shutdown").and_then(|mut conn| conn.shutdown_server()) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("concealer-load: shutdown request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if divergences > 0 || !errors.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
