//! The simulated trusted region.
//!
//! [`Enclave`] owns the sealed master secret and the user registry, hands
//! out per-epoch cryptographic material *only to code running "inside"*
//! (i.e. to callers holding the enclave value — the untrusted side of the
//! simulation only ever sees what explicitly crosses the boundary), and
//! exposes an authenticated [`Session`] from which the query-execution code
//! in `concealer-core` derives trapdoors.

use concealer_crypto::{EpochId, EpochKey, MasterKey};
use parking_lot::RwLock;
use std::sync::Arc;

use crate::meter::SideChannelMeter;
use crate::registry::{Credential, QueryScope, RegisteredUser, UserId, UserRegistry};
use crate::Result;

/// Configuration for the simulated enclave.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// Whether the oblivious (Concealer+) code paths should be used.
    /// When `false`, the enclave behaves like the paper's baseline
    /// "Concealer" variant that assumes SGX is side-channel free.
    pub oblivious: bool,
    /// Enclave page-cache budget in tuples: above this the in-enclave sort
    /// switches from bitonic sort to column sort (footnote 5 of the paper).
    pub epc_tuple_budget: usize,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            oblivious: false,
            epc_tuple_budget: 64 * 1024,
        }
    }
}

impl EnclaveConfig {
    /// Configuration for the oblivious Concealer+ variant.
    #[must_use]
    pub fn oblivious() -> Self {
        EnclaveConfig {
            oblivious: true,
            ..Self::default()
        }
    }
}

/// Derived epoch keys, memoized by `(epoch, round)` and shared across
/// enclave clones.
type KeyCache = Arc<parking_lot::Mutex<std::collections::HashMap<(u64, u64), Arc<EpochKey>>>>;

/// The simulated SGX enclave provisioned by the data provider.
#[derive(Clone)]
pub struct Enclave {
    master: MasterKey,
    registry: Arc<RwLock<UserRegistry>>,
    config: EnclaveConfig,
    meter: SideChannelMeter,
    /// Derived epoch keys, memoized by `(epoch, round)`. Key derivation is
    /// seven HMAC invocations plus three AES key schedules; the query path
    /// needs the same handful of keys for every bin it touches, so the
    /// cache turns a per-fetch KDF into a map lookup. Enclave-resident
    /// state only — nothing the adversary observes depends on it. Shared
    /// across clones (like the registry and the meter).
    key_cache: KeyCache,
}

/// Cap on memoized epoch keys; reaching it clears the map (keys re-derive
/// on demand, so eviction is only a memory bound, never a correctness one).
const KEY_CACHE_CAP: usize = 512;

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enclave")
            .field("config", &self.config)
            .field("registered_users", &self.registry.read().len())
            .finish_non_exhaustive()
    }
}

impl Enclave {
    /// Provision an enclave with the shared secret and the (already
    /// decrypted) registry. In the real system the registry arrives
    /// encrypted and is unsealed inside the enclave; the simulation elides
    /// the transport encryption but keeps the authorization semantics.
    #[must_use]
    pub fn provision(master: MasterKey, registry: UserRegistry, config: EnclaveConfig) -> Self {
        Enclave {
            master,
            registry: Arc::new(RwLock::new(registry)),
            config,
            meter: SideChannelMeter::new(),
            key_cache: Arc::new(parking_lot::Mutex::new(std::collections::HashMap::new())),
        }
    }

    /// The enclave's side-channel meter (shared with all sessions).
    #[must_use]
    pub fn meter(&self) -> &SideChannelMeter {
        &self.meter
    }

    /// Whether this enclave runs the oblivious (Concealer+) code paths.
    #[must_use]
    pub fn is_oblivious(&self) -> bool {
        self.config.oblivious
    }

    /// The enclave configuration.
    #[must_use]
    pub fn config(&self) -> &EnclaveConfig {
        &self.config
    }

    /// Replace the registry (DP pushes an updated registry).
    pub fn update_registry(&self, registry: UserRegistry) {
        *self.registry.write() = registry;
    }

    /// Derive the key material for an epoch at a given re-encryption round.
    /// Only meaningful inside the trusted region; `concealer-core` calls
    /// this to build trapdoors and to decrypt fetched tuples. Derivations
    /// are memoized per `(epoch, round)`, so repeated calls on the query
    /// path cost a map lookup, not a KDF run.
    #[must_use]
    pub fn epoch_key(&self, epoch: EpochId, round_counter: u64) -> Arc<EpochKey> {
        let mut cache = self.key_cache.lock();
        if let Some(key) = cache.get(&(epoch.0, round_counter)) {
            return Arc::clone(key);
        }
        if cache.len() >= KEY_CACHE_CAP {
            cache.clear();
        }
        let key = Arc::new(self.master.epoch_key(epoch, round_counter));
        cache.insert((epoch.0, round_counter), Arc::clone(&key));
        key
    }

    /// Access the master key for DP-side simulation code (the data provider
    /// legitimately owns `sk`). Marked with a long name to discourage use
    /// from query-path code.
    #[must_use]
    pub fn master_key_for_data_provider(&self) -> &MasterKey {
        &self.master
    }

    /// Authenticate a user and open a query session.
    pub fn open_session(
        &self,
        user_id: UserId,
        credential: &Credential,
        scope: QueryScope,
    ) -> Result<Session> {
        let registry = self.registry.read();
        let entry = registry.authenticate(&self.master, user_id, credential, scope)?;
        Ok(Session {
            user: entry.clone(),
            scope,
            enclave: self.clone(),
        })
    }
}

/// An authenticated query session.
#[derive(Debug, Clone)]
pub struct Session {
    user: RegisteredUser,
    scope: QueryScope,
    enclave: Enclave,
}

impl Session {
    /// The authenticated user.
    #[must_use]
    pub fn user(&self) -> &RegisteredUser {
        &self.user
    }

    /// The scope this session was authorized for.
    #[must_use]
    pub fn scope(&self) -> QueryScope {
        self.scope
    }

    /// The enclave this session runs in.
    #[must_use]
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnclaveError;

    fn setup() -> (Enclave, Credential) {
        let master = MasterKey::from_bytes([7u8; 32]);
        let mut registry = UserRegistry::new();
        let cred = registry.register(&master, UserId(1), vec![55], true);
        let enclave = Enclave::provision(master, registry, EnclaveConfig::default());
        (enclave, cred)
    }

    #[test]
    fn session_opens_for_valid_user() {
        let (enclave, cred) = setup();
        let session = enclave
            .open_session(UserId(1), &cred, QueryScope::Aggregate)
            .unwrap();
        assert_eq!(session.user().user_id, UserId(1));
        assert_eq!(session.scope(), QueryScope::Aggregate);
    }

    #[test]
    fn session_rejected_for_wrong_credential() {
        let (enclave, _) = setup();
        let err = enclave
            .open_session(UserId(1), &Credential([9u8; 32]), QueryScope::Aggregate)
            .unwrap_err();
        assert_eq!(err, EnclaveError::AuthenticationFailed);
    }

    #[test]
    fn session_rejected_for_foreign_device() {
        let (enclave, cred) = setup();
        let err = enclave
            .open_session(
                UserId(1),
                &cred,
                QueryScope::Individualized { device_id: 999 },
            )
            .unwrap_err();
        assert!(matches!(err, EnclaveError::Unauthorized { .. }));
    }

    #[test]
    fn epoch_keys_match_data_provider_derivation() {
        let (enclave, _) = setup();
        let dp_master = MasterKey::from_bytes([7u8; 32]);
        let dp_key = dp_master.epoch_key(EpochId(3), 0);
        let enclave_key = enclave.epoch_key(EpochId(3), 0);
        assert_eq!(dp_key.det.encrypt(b"v"), enclave_key.det.encrypt(b"v"));
    }

    #[test]
    fn registry_update_takes_effect() {
        let (enclave, cred) = setup();
        // Push an empty registry: previously valid user is now rejected.
        enclave.update_registry(UserRegistry::new());
        assert_eq!(
            enclave
                .open_session(UserId(1), &cred, QueryScope::Aggregate)
                .unwrap_err(),
            EnclaveError::UnknownUser
        );
    }

    #[test]
    fn oblivious_config() {
        let e = Enclave::provision(
            MasterKey::from_bytes([1u8; 32]),
            UserRegistry::new(),
            EnclaveConfig::oblivious(),
        );
        assert!(e.is_oblivious());
        assert!(!format!("{e:?}").contains("master"));
    }
}
