//! Side-channel meter: records the *shape* of in-enclave computation.
//!
//! Real SGX side-channel attacks (cache-line probing, branch shadowing,
//! page-fault sequences) observe which code paths and memory locations an
//! enclave touches. The simulation cannot reproduce micro-architectural
//! state, so it instead exposes an explicit, countable abstraction of that
//! observable surface: every oblivious-path operation reports the number of
//! comparisons, conditional moves, element touches and sort steps it
//! performed. Two query executions are "indistinguishable" in this model
//! when their [`MeterSnapshot`]s are identical — which is exactly what the
//! security tests assert for Concealer+ across different query predicates
//! that map to the same bin.

use parking_lot::Mutex;
use std::sync::Arc;

/// A snapshot of the meter's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Branch-free comparisons executed.
    pub comparisons: u64,
    /// Conditional (oblivious) moves / swaps executed.
    pub cmoves: u64,
    /// Elements touched by oblivious scans / filters.
    pub element_touches: u64,
    /// Compare-exchange steps executed by data-independent sorts.
    pub sort_steps: u64,
    /// Tuples decrypted inside the enclave.
    pub decryptions: u64,
    /// Trapdoors generated (real + dummy).
    pub trapdoors_generated: u64,
}

impl MeterSnapshot {
    /// Total operations (useful for coarse comparisons in benchmarks).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.comparisons
            + self.cmoves
            + self.element_touches
            + self.sort_steps
            + self.decryptions
            + self.trapdoors_generated
    }
}

/// Thread-safe counter bundle. Cloning shares the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct SideChannelMeter {
    inner: Arc<Mutex<MeterSnapshot>>,
}

impl SideChannelMeter {
    /// Create a meter with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` branch-free comparisons.
    pub fn add_comparisons(&self, n: u64) {
        self.inner.lock().comparisons += n;
    }

    /// Record `n` oblivious moves / swaps.
    pub fn add_cmoves(&self, n: u64) {
        self.inner.lock().cmoves += n;
    }

    /// Record `n` element touches (oblivious scans, filter passes).
    pub fn add_element_touches(&self, n: u64) {
        self.inner.lock().element_touches += n;
    }

    /// Record `n` compare-exchange steps of a data-independent sort.
    pub fn add_sort_steps(&self, n: u64) {
        self.inner.lock().sort_steps += n;
    }

    /// Record `n` in-enclave decryptions.
    pub fn add_decryptions(&self, n: u64) {
        self.inner.lock().decryptions += n;
    }

    /// Record `n` generated trapdoors.
    pub fn add_trapdoors(&self, n: u64) {
        self.inner.lock().trapdoors_generated += n;
    }

    /// Fold a whole counter delta in under a single lock acquisition.
    ///
    /// The per-row filtering loops accumulate into a local
    /// [`MeterSnapshot`] and flush once per call: the recorded totals are
    /// identical, but the shared mutex is taken O(1) times per bin instead
    /// of O(rows × tokens) — which also keeps parallel batch workers from
    /// serializing on the meter. (Trapdoor generation already recorded
    /// once per bin via the `add_*` methods.)
    pub fn add_snapshot(&self, delta: MeterSnapshot) {
        let mut inner = self.inner.lock();
        inner.comparisons += delta.comparisons;
        inner.cmoves += delta.cmoves;
        inner.element_touches += delta.element_touches;
        inner.sort_steps += delta.sort_steps;
        inner.decryptions += delta.decryptions;
        inner.trapdoors_generated += delta.trapdoors_generated;
    }

    /// Read the current counters.
    #[must_use]
    pub fn snapshot(&self) -> MeterSnapshot {
        *self.inner.lock()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = MeterSnapshot::default();
    }

    /// Run `f` and return its result together with the counter delta it
    /// caused on this meter.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, MeterSnapshot) {
        let before = self.snapshot();
        let out = f();
        let after = self.snapshot();
        (
            out,
            MeterSnapshot {
                comparisons: after.comparisons - before.comparisons,
                cmoves: after.cmoves - before.cmoves,
                element_touches: after.element_touches - before.element_touches,
                sort_steps: after.sort_steps - before.sort_steps,
                decryptions: after.decryptions - before.decryptions,
                trapdoors_generated: after.trapdoors_generated - before.trapdoors_generated,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = SideChannelMeter::new();
        m.add_comparisons(3);
        m.add_cmoves(2);
        m.add_element_touches(10);
        m.add_sort_steps(7);
        m.add_decryptions(1);
        m.add_trapdoors(4);
        let s = m.snapshot();
        assert_eq!(s.comparisons, 3);
        assert_eq!(s.cmoves, 2);
        assert_eq!(s.element_touches, 10);
        assert_eq!(s.sort_steps, 7);
        assert_eq!(s.decryptions, 1);
        assert_eq!(s.trapdoors_generated, 4);
        assert_eq!(s.total_ops(), 27);
    }

    #[test]
    fn reset_zeroes() {
        let m = SideChannelMeter::new();
        m.add_comparisons(5);
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let m = SideChannelMeter::new();
        let h = m.clone();
        h.add_cmoves(9);
        assert_eq!(m.snapshot().cmoves, 9);
    }

    #[test]
    fn measure_returns_delta() {
        let m = SideChannelMeter::new();
        m.add_comparisons(100);
        let (value, delta) = m.measure(|| {
            m.add_comparisons(5);
            m.add_sort_steps(2);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(delta.comparisons, 5);
        assert_eq!(delta.sort_steps, 2);
        assert_eq!(m.snapshot().comparisons, 105);
    }
}
