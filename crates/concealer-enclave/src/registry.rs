//! User registry and authentication (requirement R2 of the paper).
//!
//! The data provider keeps a per-service-provider registry of users who are
//! allowed to query, ships it to the service provider in encrypted form, and
//! the enclave authenticates every query against it before generating any
//! trapdoor. The registry also records *which device ids* a user owns so
//! that individualized queries (Q4/Q5 style, "my own past movements") can
//! only be asked about the requester's own devices — this is how the paper
//! prevents the service provider from masquerading as a user and prevents
//! users from mining each other's trajectories.
//!
//! Credentials are modelled as HMAC capabilities: DP derives
//! `cred = HMAC(registry_key, user_id)` and hands it to the user out of
//! band; the enclave, which knows `registry_key` (it is derived from `sk`),
//! recomputes and compares in constant time. This stands in for the
//! public/private key pairs of the paper without pulling an asymmetric
//! primitive into the dependency-free crypto substrate.

use concealer_crypto::hmac::hmac_sha256;
use concealer_crypto::{ct_eq, MasterKey};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::{EnclaveError, Result};

/// Identifier of a registered user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u64);

/// The capability a user presents when querying.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Credential(pub [u8; 32]);

/// What a user is allowed to ask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryScope {
    /// Aggregate applications: occupancy counts, heat maps, top-k locations.
    /// Never reveals an individual's identity, so any registered user may
    /// run them.
    Aggregate,
    /// Individualized applications over a specific device/observation id.
    /// Only permitted when the device belongs to the requesting user.
    Individualized {
        /// The device / observation identifier being queried.
        device_id: u64,
    },
}

/// A registry entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisteredUser {
    /// The user's identifier.
    pub user_id: UserId,
    /// Device ids (observation values) owned by the user.
    pub devices: Vec<u64>,
    /// Whether DP has authorized the user for aggregate applications.
    pub aggregate_allowed: bool,
}

/// The registry built by the data provider and consumed by the enclave.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserRegistry {
    users: BTreeMap<u64, RegisteredUser>,
}

/// Label used to derive the registry credential key from the master secret.
fn registry_key(master: &MasterKey) -> [u8; 32] {
    // Any fixed epoch/purpose works as long as DP and enclave agree; the
    // registry is not epoch-scoped in the paper.
    master
        .epoch_key(concealer_crypto::EpochId(u64::MAX), u64::MAX)
        .hash_chain_key
}

impl UserRegistry {
    /// Create an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Register a user (DP side). Returns the credential DP hands to the
    /// user out of band. Registering an existing user updates their entry
    /// and re-issues the same credential (it only depends on the user id).
    pub fn register(
        &mut self,
        master: &MasterKey,
        user_id: UserId,
        devices: Vec<u64>,
        aggregate_allowed: bool,
    ) -> Credential {
        self.users.insert(
            user_id.0,
            RegisteredUser {
                user_id,
                devices,
                aggregate_allowed,
            },
        );
        Self::credential_for(master, user_id)
    }

    /// Remove a user (e.g. when they withdraw consent).
    pub fn deregister(&mut self, user_id: UserId) -> bool {
        self.users.remove(&user_id.0).is_some()
    }

    /// The credential DP would issue for `user_id`.
    #[must_use]
    pub fn credential_for(master: &MasterKey, user_id: UserId) -> Credential {
        let key = registry_key(master);
        Credential(hmac_sha256(&key, &user_id.0.to_be_bytes()))
    }

    /// Look up a user entry.
    #[must_use]
    pub fn get(&self, user_id: UserId) -> Option<&RegisteredUser> {
        self.users.get(&user_id.0)
    }

    /// Authenticate a user and authorize the requested scope
    /// (enclave side). Returns the registry entry on success.
    pub fn authenticate(
        &self,
        master: &MasterKey,
        user_id: UserId,
        credential: &Credential,
        scope: QueryScope,
    ) -> Result<&RegisteredUser> {
        let entry = self
            .users
            .get(&user_id.0)
            .ok_or(EnclaveError::UnknownUser)?;
        let expected = Self::credential_for(master, user_id);
        if !ct_eq(&expected.0, &credential.0) {
            return Err(EnclaveError::AuthenticationFailed);
        }
        match scope {
            QueryScope::Aggregate => {
                if !entry.aggregate_allowed {
                    return Err(EnclaveError::Unauthorized {
                        reason: "user is not authorized for aggregate applications",
                    });
                }
            }
            QueryScope::Individualized { device_id } => {
                if !entry.devices.contains(&device_id) {
                    return Err(EnclaveError::Unauthorized {
                        reason: "device does not belong to the requesting user",
                    });
                }
            }
        }
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> MasterKey {
        MasterKey::from_bytes([42u8; 32])
    }

    #[test]
    fn register_and_authenticate_aggregate() {
        let mk = master();
        let mut reg = UserRegistry::new();
        let cred = reg.register(&mk, UserId(1), vec![100, 101], true);
        assert_eq!(reg.len(), 1);
        let entry = reg
            .authenticate(&mk, UserId(1), &cred, QueryScope::Aggregate)
            .unwrap();
        assert_eq!(entry.user_id, UserId(1));
    }

    #[test]
    fn unknown_user_rejected() {
        let mk = master();
        let reg = UserRegistry::new();
        let cred = UserRegistry::credential_for(&mk, UserId(5));
        assert_eq!(
            reg.authenticate(&mk, UserId(5), &cred, QueryScope::Aggregate),
            Err(EnclaveError::UnknownUser)
        );
    }

    #[test]
    fn wrong_credential_rejected() {
        let mk = master();
        let mut reg = UserRegistry::new();
        let _ = reg.register(&mk, UserId(1), vec![], true);
        let forged = Credential([0u8; 32]);
        assert_eq!(
            reg.authenticate(&mk, UserId(1), &forged, QueryScope::Aggregate),
            Err(EnclaveError::AuthenticationFailed)
        );
        // A credential for a *different* user must not work either — this is
        // the "SP must not be able to impersonate a user" requirement.
        let other = UserRegistry::credential_for(&mk, UserId(2));
        assert_eq!(
            reg.authenticate(&mk, UserId(1), &other, QueryScope::Aggregate),
            Err(EnclaveError::AuthenticationFailed)
        );
    }

    #[test]
    fn individualized_scope_enforced() {
        let mk = master();
        let mut reg = UserRegistry::new();
        let cred = reg.register(&mk, UserId(1), vec![500], true);
        assert!(reg
            .authenticate(
                &mk,
                UserId(1),
                &cred,
                QueryScope::Individualized { device_id: 500 }
            )
            .is_ok());
        assert!(matches!(
            reg.authenticate(
                &mk,
                UserId(1),
                &cred,
                QueryScope::Individualized { device_id: 501 }
            ),
            Err(EnclaveError::Unauthorized { .. })
        ));
    }

    #[test]
    fn aggregate_permission_flag_enforced() {
        let mk = master();
        let mut reg = UserRegistry::new();
        let cred = reg.register(&mk, UserId(3), vec![7], false);
        assert!(matches!(
            reg.authenticate(&mk, UserId(3), &cred, QueryScope::Aggregate),
            Err(EnclaveError::Unauthorized { .. })
        ));
        assert!(reg
            .authenticate(
                &mk,
                UserId(3),
                &cred,
                QueryScope::Individualized { device_id: 7 }
            )
            .is_ok());
    }

    #[test]
    fn deregister_removes_access() {
        let mk = master();
        let mut reg = UserRegistry::new();
        let cred = reg.register(&mk, UserId(9), vec![], true);
        assert!(reg.deregister(UserId(9)));
        assert!(!reg.deregister(UserId(9)));
        assert_eq!(
            reg.authenticate(&mk, UserId(9), &cred, QueryScope::Aggregate),
            Err(EnclaveError::UnknownUser)
        );
    }

    #[test]
    fn credentials_differ_across_master_keys() {
        let a = UserRegistry::credential_for(&MasterKey::from_bytes([1; 32]), UserId(1));
        let b = UserRegistry::credential_for(&MasterKey::from_bytes([2; 32]), UserId(1));
        assert_ne!(a, b);
    }
}
