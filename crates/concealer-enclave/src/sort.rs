//! Data-independent (oblivious) sorting.
//!
//! §4.3 of the paper sorts trapdoor lists and fetched tuples with a
//! *data-independent* sorting algorithm so that the enclave's memory-access
//! pattern does not depend on which tuples matched the query: bitonic sort
//! (Batcher 1968) when everything fits in the enclave, and Leighton's
//! column sort when it does not (footnote 5 of the paper). Both are
//! implemented here over a generic element type with a `u64` sort key
//! extracted up front, and both report every compare-exchange step to the
//! [`SideChannelMeter`] so tests can check the step count depends only on
//! the input *length*, never on the key values.

use crate::meter::SideChannelMeter;
use crate::oblivious::{ogreater, oswap_u64};

/// Tag value marking padding / sentinel entries inside the sorting networks.
const SENTINEL_TAG: u64 = u64::MAX;

/// Sort `items` in ascending order of `key(item)` using a bitonic sorting
/// network. The sequence of compare-exchange positions depends only on
/// `items.len()`, never on the key values.
///
/// Inputs whose length is not a power of two are padded with
/// maximal-key sentinels; sentinels are tagged and stripped after the
/// network runs, so duplicate keys (including `u64::MAX`) are handled
/// correctly.
pub fn bitonic_sort_by_key<T, F>(items: &mut [T], meter: &SideChannelMeter, key: F)
where
    F: Fn(&T) -> u64,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    let mut pairs: Vec<(u64, u64)> = items
        .iter()
        .enumerate()
        .map(|(i, item)| (key(item), i as u64))
        .collect();
    bitonic_network(&mut pairs, meter);
    let perm: Vec<u64> = pairs.iter().map(|p| p.1).collect();
    apply_permutation(items, &perm);
}

/// Run the bitonic network over `(key, tag)` pairs. The network pads the
/// working arrays to a power of two with its own marked padding entries and
/// strips them again afterwards, so on return `pairs` holds exactly the
/// caller's entries in non-decreasing key order — even when caller keys tie
/// with the padding key (`u64::MAX`).
fn bitonic_network(pairs: &mut Vec<(u64, u64)>, meter: &SideChannelMeter) {
    let n = pairs.len();
    if n <= 1 {
        return;
    }
    let padded = n.next_power_of_two();

    let mut keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
    let mut tags: Vec<u64> = pairs.iter().map(|p| p.1).collect();
    // 1 for caller entries, 0 for the network's own padding; travels with
    // the entry through every compare-exchange so padding can be stripped
    // without relying on key or tag values.
    let mut real: Vec<u64> = vec![1; n];
    keys.resize(padded, u64::MAX);
    tags.resize(padded, SENTINEL_TAG);
    real.resize(padded, 0);

    let mut steps = 0u64;
    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..padded {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    let out_of_order = if ascending {
                        ogreater(keys[i], keys[l])
                    } else {
                        ogreater(keys[l], keys[i])
                    };
                    {
                        let (lo, hi) = keys.split_at_mut(l);
                        oswap_u64(out_of_order, &mut lo[i], &mut hi[0]);
                    }
                    {
                        let (lo, hi) = tags.split_at_mut(l);
                        oswap_u64(out_of_order, &mut lo[i], &mut hi[0]);
                    }
                    {
                        let (lo, hi) = real.split_at_mut(l);
                        oswap_u64(out_of_order, &mut lo[i], &mut hi[0]);
                    }
                    steps += 1;
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    meter.add_sort_steps(steps);
    meter.add_comparisons(steps);
    meter.add_cmoves(2 * steps);

    pairs.clear();
    pairs.extend(
        (0..padded)
            .filter(|&i| real[i] == 1)
            .map(|i| (keys[i], tags[i])),
    );
    debug_assert_eq!(pairs.len(), n);
}

/// Collect the original indices of the non-sentinel entries, in sorted
/// order. Exactly `n` such entries must exist.
fn extract_permutation(pairs: &[(u64, u64)], n: usize) -> Vec<u64> {
    let perm: Vec<u64> = pairs
        .iter()
        .filter(|p| p.1 != SENTINEL_TAG)
        .map(|p| p.1)
        .collect();
    debug_assert_eq!(perm.len(), n, "sorting network lost elements");
    perm
}

/// Sort `items` with Leighton's column sort, the algorithm the paper uses
/// when the working set exceeds enclave memory (footnote 5). The data is
/// laid out as an `r × s` matrix (`r` divisible by `s`, `r ≥ 2(s-1)²`)
/// stored column-major and sorted with the eight fixed columnsort passes;
/// the access pattern depends only on the length.
///
/// Falls back to a single bitonic sort when the input is too small for a
/// valid column-sort geometry — the fallback is still data-independent.
pub fn column_sort_by_key<T, F>(items: &mut [T], meter: &SideChannelMeter, key: F)
where
    F: Fn(&T) -> u64,
{
    let n = items.len();
    let Some((r, s)) = column_sort_geometry(n) else {
        bitonic_sort_by_key(items, meter, key);
        return;
    };

    // (key, original index) pairs stored column-major, padded to r*s with
    // high sentinels.
    let mut pairs: Vec<(u64, u64)> = items
        .iter()
        .enumerate()
        .map(|(i, item)| (key(item), i as u64))
        .collect();
    pairs.resize(r * s, (u64::MAX, SENTINEL_TAG));

    let sort_columns = |pairs: &mut [(u64, u64)], meter: &SideChannelMeter| {
        for c in 0..pairs.len() / r {
            let col = &mut pairs[c * r..(c + 1) * r];
            let mut col_vec = col.to_vec();
            bitonic_network(&mut col_vec, meter);
            col.copy_from_slice(&col_vec);
        }
    };

    // Steps 1-2: sort columns, transpose.
    sort_columns(&mut pairs, meter);
    pairs = transpose_cm(&pairs, r, s);
    // Steps 3-4: sort columns, untranspose.
    sort_columns(&mut pairs, meter);
    pairs = untranspose_cm(&pairs, r, s);
    // Steps 5-6: sort columns, shift down by r/2 into an r×(s+1) matrix.
    sort_columns(&mut pairs, meter);
    let mut shifted = shift_cm(&pairs, r);
    // Step 7: sort columns of the shifted matrix.
    sort_columns(&mut shifted, meter);
    // Step 8 (unshift) + extraction: the real elements now appear in sorted
    // order; sentinels are stripped by tag.
    let perm = extract_permutation(&shifted, n);
    apply_permutation(items, &perm);
}

/// Pick a valid column-sort geometry `(rows, cols)` for `n` elements:
/// `rows * cols >= n`, `cols >= 2`, `rows % cols == 0`, `rows >= 2*(cols-1)^2`.
fn column_sort_geometry(n: usize) -> Option<(usize, usize)> {
    if n < 8 {
        return None;
    }
    for s in [8usize, 4, 2] {
        let min_r = (2 * (s - 1) * (s - 1)).max(s);
        let mut r = n.div_ceil(s).max(min_r);
        r = r.div_ceil(s) * s;
        if r * s >= n {
            return Some((r, s));
        }
    }
    None
}

/// Columnsort step 2: pick the entries up in column-major order and lay
/// them back down in row-major order (keeping the `r × s` shape, stored
/// column-major).
fn transpose_cm(pairs: &[(u64, u64)], r: usize, s: usize) -> Vec<(u64, u64)> {
    let mut out = vec![(0u64, 0u64); r * s];
    for (j, p) in pairs.iter().enumerate() {
        let row = j / s;
        let col = j % s;
        out[col * r + row] = *p;
    }
    out
}

/// Columnsort step 4: the inverse of [`transpose_cm`] — pick up in
/// row-major order, lay down in column-major order.
fn untranspose_cm(pairs: &[(u64, u64)], r: usize, s: usize) -> Vec<(u64, u64)> {
    let mut out = vec![(0u64, 0u64); r * s];
    for (j, slot) in out.iter_mut().enumerate() {
        let row = j / s;
        let col = j % s;
        *slot = pairs[col * r + row];
    }
    out
}

/// Columnsort step 6: shift every entry down by `r/2` positions in flat
/// column-major order, filling the vacated top half of the first column
/// with minimal sentinels and the bottom half of the new last column with
/// maximal sentinels. The result is an `r × (s+1)` matrix.
fn shift_cm(pairs: &[(u64, u64)], r: usize) -> Vec<(u64, u64)> {
    let half = r / 2;
    let mut out = Vec::with_capacity(pairs.len() + r);
    out.extend(std::iter::repeat_n((0u64, SENTINEL_TAG), half));
    out.extend_from_slice(pairs);
    out.extend(std::iter::repeat_n((u64::MAX, SENTINEL_TAG), r - half));
    out
}

/// Reorder `items` so that output position `i` receives the input element
/// at `perm[i]`. Runs in place via cycle-following on the inverse
/// permutation, so no `Clone` bound is required.
fn apply_permutation<T>(items: &mut [T], perm: &[u64]) {
    let n = items.len();
    debug_assert_eq!(perm.len(), n);
    // inverse[src] = dest
    let mut inverse = vec![0usize; n];
    for (dest, &src) in perm.iter().enumerate() {
        inverse[src as usize] = dest;
    }
    for start in 0..n {
        while inverse[start] != start {
            let dest = inverse[start];
            items.swap(start, dest);
            inverse.swap(start, dest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn bitonic_sorts_various_lengths() {
        let meter = SideChannelMeter::new();
        for n in [0usize, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 100, 255, 256, 1000] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
            let mut v: Vec<u64> = (0..n as u64).collect();
            v.shuffle(&mut rng);
            bitonic_sort_by_key(&mut v, &meter, |x| *x);
            let expect: Vec<u64> = (0..n as u64).collect();
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn bitonic_handles_extreme_keys() {
        let meter = SideChannelMeter::new();
        let mut v = vec![u64::MAX, 0, u64::MAX, 5, 0, u64::MAX - 1];
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort_by_key(&mut v, &meter, |x| *x);
        assert_eq!(v, expect);
    }

    #[test]
    fn bitonic_sort_step_count_depends_only_on_length() {
        let meter = SideChannelMeter::new();
        let mut sorted: Vec<u64> = (0..100).collect();
        let (_, d1) = meter.measure(|| bitonic_sort_by_key(&mut sorted, &meter, |x| *x));

        let mut reversed: Vec<u64> = (0..100).rev().collect();
        let (_, d2) = meter.measure(|| bitonic_sort_by_key(&mut reversed, &meter, |x| *x));

        let mut constant: Vec<u64> = vec![7; 100];
        let (_, d3) = meter.measure(|| bitonic_sort_by_key(&mut constant, &meter, |x| *x));

        assert_eq!(d1.sort_steps, d2.sort_steps);
        assert_eq!(d2.sort_steps, d3.sort_steps);
        assert_eq!(d1.cmoves, d2.cmoves);
        assert!(d1.sort_steps > 0);
    }

    #[test]
    fn bitonic_permutes_attached_payloads() {
        let meter = SideChannelMeter::new();
        let mut v = vec![(3u64, "c"), (1, "a"), (2, "b"), (5, "e"), (4, "d")];
        bitonic_sort_by_key(&mut v, &meter, |x| x.0);
        assert_eq!(
            v.iter().map(|x| x.1).collect::<Vec<_>>(),
            vec!["a", "b", "c", "d", "e"]
        );
    }

    #[test]
    fn bitonic_with_duplicate_keys_preserves_multiset() {
        let meter = SideChannelMeter::new();
        let mut v = vec![(3u64, 'a'), (1, 'b'), (3, 'c'), (1, 'd'), (2, 'e')];
        bitonic_sort_by_key(&mut v, &meter, |x| x.0);
        let keys: Vec<u64> = v.iter().map(|x| x.0).collect();
        assert_eq!(keys, vec![1, 1, 2, 3, 3]);
        let mut chars: Vec<char> = v.iter().map(|x| x.1).collect();
        chars.sort_unstable();
        assert_eq!(chars, vec!['a', 'b', 'c', 'd', 'e']);
    }

    #[test]
    fn column_sort_matches_std_sort() {
        let meter = SideChannelMeter::new();
        for n in [0usize, 5, 16, 64, 100, 500, 1024, 2000] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64 + 7);
            let mut v: Vec<u64> = (0..n as u64).map(|i| i * 37 % 101).collect();
            v.shuffle(&mut rng);
            let mut expect = v.clone();
            expect.sort_unstable();
            column_sort_by_key(&mut v, &meter, |x| *x);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn column_sort_step_count_depends_only_on_length() {
        let meter = SideChannelMeter::new();
        let mut a: Vec<u64> = (0..300).collect();
        let (_, d1) = meter.measure(|| column_sort_by_key(&mut a, &meter, |x| *x));
        let mut b: Vec<u64> = (0..300).rev().collect();
        let (_, d2) = meter.measure(|| column_sort_by_key(&mut b, &meter, |x| *x));
        assert_eq!(d1.sort_steps, d2.sort_steps);
    }

    #[test]
    fn geometry_is_valid_when_some() {
        for n in [8usize, 16, 100, 1000, 5000, 12345] {
            if let Some((r, s)) = column_sort_geometry(n) {
                assert!(r * s >= n, "n={n} r={r} s={s}");
                assert_eq!(r % s, 0, "r={r} s={s}");
                assert!(r >= 2 * (s - 1) * (s - 1), "r={r} s={s}");
            }
        }
    }

    #[test]
    fn apply_permutation_identity_and_reverse() {
        let mut v = vec![10, 20, 30, 40];
        apply_permutation(&mut v, &[0, 1, 2, 3]);
        assert_eq!(v, vec![10, 20, 30, 40]);
        apply_permutation(&mut v, &[3, 2, 1, 0]);
        assert_eq!(v, vec![40, 30, 20, 10]);
        let mut v = vec!['a', 'b', 'c'];
        apply_permutation(&mut v, &[2, 0, 1]);
        assert_eq!(v, vec!['c', 'a', 'b']);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_bitonic_matches_std(mut v in proptest::collection::vec(any::<u64>(), 0..300)) {
            let meter = SideChannelMeter::new();
            let mut expect = v.clone();
            expect.sort_unstable();
            bitonic_sort_by_key(&mut v, &meter, |x| *x);
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn prop_column_matches_std(mut v in proptest::collection::vec(any::<u64>(), 0..400)) {
            let meter = SideChannelMeter::new();
            let mut expect = v.clone();
            expect.sort_unstable();
            column_sort_by_key(&mut v, &meter, |x| *x);
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn prop_apply_permutation_is_bijective(n in 1usize..50) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
            let mut perm: Vec<u64> = (0..n as u64).collect();
            perm.shuffle(&mut rng);
            let mut items: Vec<u64> = (0..n as u64).map(|i| i + 100).collect();
            let original = items.clone();
            apply_permutation(&mut items, &perm);
            for (dest, &src) in perm.iter().enumerate() {
                prop_assert_eq!(items[dest], original[src as usize]);
            }
        }
    }
}
