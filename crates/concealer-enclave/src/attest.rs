//! Simulated remote attestation: deterministic enclave measurements and
//! signed quotes.
//!
//! Real SGX attestation hashes the enclave's initial memory contents into
//! `MRENCLAVE` and has the quoting enclave sign `(measurement, report
//! data)` under a key that chains up to Intel's attestation service. This
//! simulation preserves the *protocol shape* the trust model depends on —
//! a client can bind "the party answering my handshake" to "an enclave
//! build I accept" before sending credentials or trapdoors — while
//! substituting reproducible software stand-ins:
//!
//! * the **measurement** is a SHA-256 over a domain-separation label
//!   ([`MEASUREMENT_DOMAIN`]), the enclave code version
//!   ([`ENCLAVE_CODE_VERSION`]) and the launch-relevant configuration
//!   (oblivious mode, EPC tuple budget). Two enclaves with the same code
//!   and config measure identically; flipping either changes the
//!   measurement, exactly like `MRENCLAVE`;
//! * the **quote** binds the measurement to a client-chosen nonce and a
//!   wall-clock timestamp under [`ATTESTATION_ROOT_KEY`], the simulation's
//!   stand-in for the attestation service's signing key. The key is a
//!   fixed public constant — the simulation models *protocol* security
//!   (nonce freshness, measurement pinning, quote expiry), not the
//!   unforgeability of Intel's PKI.

use concealer_crypto::hmac::HmacSha256;
use concealer_crypto::sha256::Sha256;

use crate::enclave::{Enclave, EnclaveConfig};

/// Version counter over the enclave's *code identity*. Bump whenever a
/// change to the enclave crate would, on real hardware, change
/// `MRENCLAVE` — the measurement folds it in, so clients pinning a
/// measurement automatically refuse enclaves built from different code.
pub const ENCLAVE_CODE_VERSION: u32 = 1;

/// Domain-separation label folded into every measurement. Documented in
/// PROTOCOL.md §Attestation; `ci/check-docs.sh` guards the two against
/// drifting apart.
pub const MEASUREMENT_DOMAIN: &str = "concealer-measure/v1";

/// The simulated attestation service's signing key. A fixed, *public*
/// constant: quotes it signs prove measurement integrity against
/// accidents and protocol confusion, not against an adversary who can
/// read this source tree (see the module docs for the substitution
/// argument).
pub const ATTESTATION_ROOT_KEY: [u8; 32] = [
    0xC0, 0xCE, 0xA1, 0xE5, 0xA7, 0x7E, 0x57, 0xA7, 0x10, 0x4E, 0x2C, 0x0D, 0xE0, 0x00, 0x00, 0x01,
    0x5E, 0x9C, 0x3B, 0x1D, 0x6A, 0x48, 0x27, 0xF3, 0x91, 0x0B, 0xCD, 0x54, 0x78, 0xE6, 0x32, 0x8F,
];

/// A signed attestation statement: "an enclave measuring `measurement`,
/// running code version `code_version`, answered nonce `nonce` at
/// `timestamp`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The enclave's deterministic measurement (see [`measure`]).
    pub measurement: [u8; 32],
    /// [`ENCLAVE_CODE_VERSION`] of the quoting enclave.
    pub code_version: u32,
    /// Seconds since the Unix epoch when the quote was produced. Clients
    /// bound quote age through their trust policy.
    pub timestamp: u64,
    /// The challenger's nonce, echoed back to prevent replay.
    pub nonce: [u8; 32],
    /// HMAC-SHA-256 under [`ATTESTATION_ROOT_KEY`] over the fields above.
    pub signature: [u8; 32],
}

/// The deterministic measurement of an enclave built from this crate at
/// [`ENCLAVE_CODE_VERSION`] with configuration `config`.
#[must_use]
pub fn measure(config: &EnclaveConfig) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(MEASUREMENT_DOMAIN.as_bytes());
    h.update(&ENCLAVE_CODE_VERSION.to_le_bytes());
    h.update(&[u8::from(config.oblivious)]);
    h.update(&(config.epc_tuple_budget as u64).to_le_bytes());
    h.finalize()
}

/// The signed portion of a quote, in signing order.
fn signing_input(
    measurement: &[u8; 32],
    code_version: u32,
    timestamp: u64,
    nonce: &[u8; 32],
) -> [u8; 32] {
    let mut mac = HmacSha256::new(&ATTESTATION_ROOT_KEY);
    mac.update(measurement);
    mac.update(&code_version.to_le_bytes());
    mac.update(&timestamp.to_le_bytes());
    mac.update(nonce);
    mac.finalize()
}

/// Verify a quote's signature (measurement/version/timestamp/nonce binding
/// under [`ATTESTATION_ROOT_KEY`]). Freshness, nonce-echo and measurement
/// pinning are the *caller's* checks — this only answers "did the
/// attestation service sign exactly these fields".
#[must_use]
pub fn verify_signature(quote: &Quote) -> bool {
    let expected = signing_input(
        &quote.measurement,
        quote.code_version,
        quote.timestamp,
        &quote.nonce,
    );
    concealer_crypto::ct_eq(&quote.signature, &expected)
}

impl Enclave {
    /// This enclave's deterministic measurement.
    #[must_use]
    pub fn measurement(&self) -> [u8; 32] {
        measure(self.config())
    }

    /// Produce a signed quote over this enclave's measurement, the
    /// challenger's `nonce`, and `timestamp` (seconds since the Unix
    /// epoch; the serving layer stamps "now").
    #[must_use]
    pub fn quote(&self, nonce: [u8; 32], timestamp: u64) -> Quote {
        let measurement = self.measurement();
        let signature = signing_input(&measurement, ENCLAVE_CODE_VERSION, timestamp, &nonce);
        Quote {
            measurement,
            code_version: ENCLAVE_CODE_VERSION,
            timestamp,
            nonce,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::UserRegistry;
    use concealer_crypto::MasterKey;

    fn enclave(config: EnclaveConfig) -> Enclave {
        Enclave::provision(
            MasterKey::from_bytes([7u8; 32]),
            UserRegistry::new(),
            config,
        )
    }

    #[test]
    fn measurement_depends_on_config_not_master() {
        let plain = enclave(EnclaveConfig::default());
        let oblivious = enclave(EnclaveConfig::oblivious());
        let other_master = Enclave::provision(
            MasterKey::from_bytes([9u8; 32]),
            UserRegistry::new(),
            EnclaveConfig::default(),
        );
        assert_eq!(plain.measurement(), other_master.measurement());
        assert_ne!(plain.measurement(), oblivious.measurement());
        let budget = EnclaveConfig {
            epc_tuple_budget: EnclaveConfig::default().epc_tuple_budget + 1,
            ..EnclaveConfig::default()
        };
        assert_ne!(plain.measurement(), enclave(budget).measurement());
    }

    #[test]
    fn quote_verifies_and_echoes_nonce() {
        let e = enclave(EnclaveConfig::default());
        let nonce = [0xAB; 32];
        let q = e.quote(nonce, 1_000);
        assert!(verify_signature(&q));
        assert_eq!(q.nonce, nonce);
        assert_eq!(q.measurement, e.measurement());
        assert_eq!(q.code_version, ENCLAVE_CODE_VERSION);
        assert_eq!(q.timestamp, 1_000);
    }

    #[test]
    fn tampered_quotes_fail_verification() {
        let e = enclave(EnclaveConfig::default());
        let good = e.quote([1; 32], 5);
        let mut wrong_measure = good.clone();
        wrong_measure.measurement[0] ^= 1;
        let mut wrong_nonce = good.clone();
        wrong_nonce.nonce[0] ^= 1;
        let mut wrong_time = good.clone();
        wrong_time.timestamp += 1;
        let mut wrong_version = good.clone();
        wrong_version.code_version += 1;
        let mut wrong_sig = good.clone();
        wrong_sig.signature[31] ^= 1;
        for bad in [
            wrong_measure,
            wrong_nonce,
            wrong_time,
            wrong_version,
            wrong_sig,
        ] {
            assert!(!verify_signature(&bad));
        }
        assert!(verify_signature(&good));
    }
}
