//! Branch-free ("register-oblivious") primitives.
//!
//! §4.3 of the paper adopts the `ogreater` / `omove` operators of Ohrimenko
//! et al. (USENIX Security 2016): comparisons and conditional moves that
//! compile to `cmp`/`setg`/`cmovz` so that neither the branch predictor nor
//! the cache observes which branch was "taken". In safe Rust we cannot emit
//! specific instructions, but we can express the same computations as
//! straight-line arithmetic over masks — no `if`/`else` on secret data, no
//! secret-dependent indexing — which is the property the rest of the
//! codebase (and the [`crate::meter::SideChannelMeter`] assertions) relies
//! on.

/// Oblivious "greater than" over `u64`: returns 1 if `x > y`, else 0,
/// without branching on the comparison result.
#[inline]
#[must_use]
pub fn ogreater(x: u64, y: u64) -> u64 {
    // (y - x) underflows (wraps) exactly when x > y; bit 63 of the wide
    // difference computed in i128 gives the sign without branching.
    let diff = i128::from(y) - i128::from(x);
    ((diff >> 127) & 1) as u64
}

/// Oblivious "greater or equal": 1 if `x >= y`, else 0.
#[inline]
#[must_use]
pub fn oge(x: u64, y: u64) -> u64 {
    1 - ogreater(y, x)
}

/// Oblivious equality: 1 if `x == y`, else 0.
#[inline]
#[must_use]
pub fn oeq(x: u64, y: u64) -> u64 {
    let z = x ^ y;
    // z == 0  ⇔  (z | -z) has its top bit clear.
    let nz = (z | z.wrapping_neg()) >> 63;
    1 - nz
}

/// Oblivious move (`cmovz` analogue): returns `x` if `cond != 0`, else `y`.
#[inline]
#[must_use]
pub fn omove(cond: u64, x: u64, y: u64) -> u64 {
    // mask = all-ones when cond != 0, all-zeros otherwise.
    let nz = (cond | cond.wrapping_neg()) >> 63;
    let mask = nz.wrapping_neg();
    (x & mask) | (y & !mask)
}

/// Oblivious maximum of two values (Fig. 2a of the paper).
#[inline]
#[must_use]
pub fn omax(x: u64, y: u64) -> u64 {
    omove(ogreater(x, y), x, y)
}

/// Oblivious minimum of two values.
#[inline]
#[must_use]
pub fn omin(x: u64, y: u64) -> u64 {
    omove(ogreater(x, y), y, x)
}

/// Obliviously select between two equal-length byte slices into `out`:
/// copies `a` when `cond != 0`, `b` otherwise. Both inputs are always read
/// in full, so the memory-access pattern is independent of `cond`.
///
/// # Panics
/// Panics if the three slices do not have identical lengths (lengths are
/// public data in Concealer — every bin entry is padded to a fixed width).
pub fn oselect_bytes(cond: u64, a: &[u8], b: &[u8], out: &mut [u8]) {
    assert_eq!(
        a.len(),
        b.len(),
        "oselect_bytes: inputs must be same length"
    );
    assert_eq!(
        a.len(),
        out.len(),
        "oselect_bytes: output must match input length"
    );
    let nz = (cond | cond.wrapping_neg()) >> 63;
    let mask = (nz as u8).wrapping_neg();
    for i in 0..a.len() {
        out[i] = (a[i] & mask) | (b[i] & !mask);
    }
}

/// Obliviously swap two equal-length byte slices when `cond != 0`. Both
/// slices are always rewritten, so the write pattern is data-independent.
pub fn oswap_bytes(cond: u64, a: &mut [u8], b: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "oswap_bytes: inputs must be same length");
    let nz = (cond | cond.wrapping_neg()) >> 63;
    let mask = (nz as u8).wrapping_neg();
    for i in 0..a.len() {
        let x = a[i];
        let y = b[i];
        let t = (x ^ y) & mask;
        a[i] = x ^ t;
        b[i] = y ^ t;
    }
}

/// Obliviously swap two `u64`s when `cond != 0`.
#[inline]
pub fn oswap_u64(cond: u64, a: &mut u64, b: &mut u64) {
    let nz = (cond | cond.wrapping_neg()) >> 63;
    let mask = nz.wrapping_neg();
    let t = (*a ^ *b) & mask;
    *a ^= t;
    *b ^= t;
}

/// Oblivious accumulation used when filtering a fetched bin (§4.3 Step 4):
/// returns `acc + value` if `matched != 0`, else `acc`, touching both
/// operands unconditionally.
#[inline]
#[must_use]
pub fn oadd_if(matched: u64, acc: u64, value: u64) -> u64 {
    acc.wrapping_add(omove(matched, value, 0))
}

/// Oblivious linear scan: returns the value at `target_idx` in `data`
/// while touching every element (no secret-dependent indexing).
#[must_use]
pub fn oscan_select(data: &[u64], target_idx: u64) -> u64 {
    let mut out = 0u64;
    for (i, &v) in data.iter().enumerate() {
        out = omove(oeq(i as u64, target_idx), v, out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ogreater_matches_operator() {
        let cases = [
            (0u64, 0u64),
            (1, 0),
            (0, 1),
            (u64::MAX, 0),
            (0, u64::MAX),
            (u64::MAX, u64::MAX),
            (1 << 63, (1 << 63) - 1),
        ];
        for (x, y) in cases {
            assert_eq!(ogreater(x, y), u64::from(x > y), "x={x}, y={y}");
            assert_eq!(oge(x, y), u64::from(x >= y), "x={x}, y={y}");
            assert_eq!(oeq(x, y), u64::from(x == y), "x={x}, y={y}");
        }
    }

    #[test]
    fn omove_selects() {
        assert_eq!(omove(1, 10, 20), 10);
        assert_eq!(omove(0, 10, 20), 20);
        assert_eq!(omove(u64::MAX, 10, 20), 10, "any non-zero cond selects x");
        assert_eq!(omove(7, 10, 20), 10);
    }

    #[test]
    fn omax_omin() {
        assert_eq!(omax(3, 9), 9);
        assert_eq!(omin(3, 9), 3);
        assert_eq!(omax(9, 9), 9);
        assert_eq!(omax(u64::MAX, 1), u64::MAX);
    }

    #[test]
    fn oselect_bytes_works() {
        let a = [1u8, 2, 3, 4];
        let b = [9u8, 8, 7, 6];
        let mut out = [0u8; 4];
        oselect_bytes(1, &a, &b, &mut out);
        assert_eq!(out, a);
        oselect_bytes(0, &a, &b, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn oselect_bytes_length_mismatch_panics() {
        let mut out = [0u8; 2];
        oselect_bytes(1, &[1, 2, 3], &[1, 2], &mut out);
    }

    #[test]
    fn oswap_bytes_works() {
        let mut a = [1u8, 2, 3];
        let mut b = [7u8, 8, 9];
        oswap_bytes(0, &mut a, &mut b);
        assert_eq!((a, b), ([1, 2, 3], [7, 8, 9]));
        oswap_bytes(1, &mut a, &mut b);
        assert_eq!((a, b), ([7, 8, 9], [1, 2, 3]));
    }

    #[test]
    fn oswap_u64_works() {
        let (mut a, mut b) = (5u64, 11u64);
        oswap_u64(0, &mut a, &mut b);
        assert_eq!((a, b), (5, 11));
        oswap_u64(3, &mut a, &mut b);
        assert_eq!((a, b), (11, 5));
    }

    #[test]
    fn oadd_if_accumulates_conditionally() {
        assert_eq!(oadd_if(1, 10, 5), 15);
        assert_eq!(oadd_if(0, 10, 5), 10);
    }

    #[test]
    fn oscan_select_picks_target() {
        let data = [10u64, 20, 30, 40];
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(oscan_select(&data, i as u64), v);
        }
        // Out-of-range index yields 0 (never matched).
        assert_eq!(oscan_select(&data, 99), 0);
    }

    proptest! {
        #[test]
        fn prop_comparators_match(x in any::<u64>(), y in any::<u64>()) {
            prop_assert_eq!(ogreater(x, y), u64::from(x > y));
            prop_assert_eq!(oge(x, y), u64::from(x >= y));
            prop_assert_eq!(oeq(x, y), u64::from(x == y));
            prop_assert_eq!(omax(x, y), x.max(y));
            prop_assert_eq!(omin(x, y), x.min(y));
        }

        #[test]
        fn prop_omove(cond in any::<u64>(), x in any::<u64>(), y in any::<u64>()) {
            let expect = if cond != 0 { x } else { y };
            prop_assert_eq!(omove(cond, x, y), expect);
        }

        #[test]
        fn prop_oswap_roundtrip(a in any::<u64>(), b in any::<u64>()) {
            let (mut x, mut y) = (a, b);
            oswap_u64(1, &mut x, &mut y);
            oswap_u64(1, &mut x, &mut y);
            prop_assert_eq!((x, y), (a, b));
        }
    }
}
