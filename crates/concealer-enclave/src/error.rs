//! Error type for the enclave simulation.

use std::fmt;

/// Errors raised by the simulated enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// The user is not present in the registry DP provisioned.
    UnknownUser,
    /// The user exists but the presented credential did not verify.
    AuthenticationFailed,
    /// An authenticated user asked for data outside their authorization
    /// scope (e.g. an individualized query over someone else's device).
    Unauthorized {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The registry blob could not be decrypted / parsed.
    CorruptRegistry,
    /// A cryptographic operation failed inside the enclave.
    Crypto(concealer_crypto::CryptoError),
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::UnknownUser => write!(f, "unknown user"),
            EnclaveError::AuthenticationFailed => write!(f, "user authentication failed"),
            EnclaveError::Unauthorized { reason } => write!(f, "unauthorized: {reason}"),
            EnclaveError::CorruptRegistry => write!(f, "registry blob is corrupt"),
            EnclaveError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for EnclaveError {}

impl From<concealer_crypto::CryptoError> for EnclaveError {
    fn from(e: concealer_crypto::CryptoError) -> Self {
        EnclaveError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        assert_eq!(EnclaveError::UnknownUser.to_string(), "unknown user");
        let e: EnclaveError = concealer_crypto::CryptoError::AuthenticationFailed.into();
        assert!(e.to_string().contains("crypto error"));
        assert!(EnclaveError::Unauthorized {
            reason: "not your data"
        }
        .to_string()
        .contains("not your data"));
    }
}
