//! Simulated SGX enclave for the Concealer system.
//!
//! The paper runs its query-execution logic inside an Intel SGX enclave at
//! the untrusted service provider. This crate substitutes a *software
//! simulation* of that trusted region (see ARCHITECTURE.md for the substitution
//! argument). What the simulation preserves — and what the paper's security
//! argument actually depends on — is:
//!
//! * the **boundary**: the only state the untrusted side can read is what
//!   crosses the boundary explicitly (trapdoors, fetched rows); key material
//!   stays inside [`Enclave`];
//! * **user authentication** against the encrypted registry DP provisions
//!   (requirement R2 of the paper), in [`registry`];
//! * **oblivious in-enclave computation** for Concealer+: the branch-free
//!   [`oblivious::omove`] / [`oblivious::ogreater`] operators of
//!   Ohrimenko et al. that the paper adopts (§4.3, Fig. 2), plus
//!   data-independent [`sort::bitonic_sort_by_key`] and
//!   [`sort::column_sort_by_key`];
//! * **remote attestation**, simulated in [`attest`]: a deterministic
//!   measurement over the enclave's code version and configuration, and
//!   signed quotes binding it to a client nonce, so the serving layer's
//!   handshake can refuse un-measured enclaves (requirement R1's "the
//!   client talks to genuine SGX" assumption, made checkable);
//! * a [`meter::SideChannelMeter`] that records the *shape* of in-enclave
//!   computation (comparisons, swaps, memory touches) so tests can assert
//!   that two executions over different query predicates are
//!   indistinguishable — the simulation's stand-in for "no cache-line /
//!   branch-shadow leakage".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod enclave;
pub mod meter;
pub mod oblivious;
pub mod registry;
pub mod sort;

mod error;

pub use attest::{Quote, ATTESTATION_ROOT_KEY, ENCLAVE_CODE_VERSION, MEASUREMENT_DOMAIN};
pub use enclave::{Enclave, EnclaveConfig, Session};
pub use error::EnclaveError;
pub use meter::{MeterSnapshot, SideChannelMeter};
pub use registry::{Credential, QueryScope, RegisteredUser, UserId, UserRegistry};

/// Convenience alias for fallible enclave calls.
pub type Result<T> = std::result::Result<T, EnclaveError>;
